//! A classic **polling server** (Lehoczky, Sha & Strosnider) as a third
//! baseline — the standard pre-dual-priority answer to aperiodic service
//! that the related work the paper cites compares against.
//!
//! One server with budget `C_s` and period `T_s` is bound to processor 0 at
//! a priority above every periodic task there. At each replenishment the
//! budget is refilled — and immediately discarded if no aperiodic work is
//! pending (the defining polling-server property). While the budget lasts,
//! the oldest aperiodic job executes on the server's processor, preempting
//! periodic work; when it is exhausted (or between replenishments with an
//! empty poll), aperiodic jobs wait. Periodic tasks run partitioned
//! fixed-priority (promoted at release).
//!
//! Budget enforcement is event-granular in the simulators (ticks,
//! arrivals, completions, replenishments), so a running aperiodic can
//! overrun its budget by at most one inter-event gap; choose `C_s` at least
//! a tick for faithful accounting.
//!
//! For the hard guarantee, the server must be entered into processor 0's
//! response-time analysis as its highest-priority task; [`polling_server`]
//! does exactly that by admitting a synthetic `(C_s, T_s)` task during
//! partitioning, then removing it from the executed table.

use mpdp_core::error::TaskSetError;
use mpdp_core::ids::{JobId, ProcId, TaskId};
use mpdp_core::policy::{Job, MpdpPolicy, Scheduler};
use mpdp_core::priority::Priority;
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};
use mpdp_core::time::Cycles;

use crate::tool::{prepare, PromotionMode, ToolOptions};

/// The replenishment discipline of a periodic server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerKind {
    /// Classic polling server: at each replenishment the budget is granted
    /// only if aperiodic work is already pending; otherwise it is discarded
    /// for the whole period.
    #[default]
    Polling,
    /// Deferrable server (Strosnider, Lehoczky & Sha): the budget is always
    /// refilled at each period boundary and *retained* — aperiodic work
    /// arriving mid-period is served immediately while budget remains.
    Deferrable,
}

/// The polling/deferrable server scheduling policy.
///
/// Wraps the MPDP machinery with all periodic promotions at release
/// (partitioned fixed-priority) and gates aperiodic service on the server
/// budget.
#[derive(Debug, Clone)]
pub struct PollingServerPolicy {
    base: MpdpPolicy,
    kind: ServerKind,
    capacity: Cycles,
    period: Cycles,
    budget: Cycles,
    next_replenish: Cycles,
    server_proc: ProcId,
}

impl PollingServerPolicy {
    /// Creates the policy over a task table whose promotions are all zero
    /// (see [`polling_server`] for the full construction including
    /// admission analysis).
    ///
    /// # Panics
    ///
    /// Panics if capacity or period is zero, or capacity exceeds period.
    pub fn new(table: TaskTable, capacity: Cycles, period: Cycles) -> Self {
        assert!(
            !capacity.is_zero() && !period.is_zero(),
            "server needs capacity and period"
        );
        assert!(capacity <= period, "server capacity beyond its period");
        PollingServerPolicy {
            base: MpdpPolicy::new(table),
            kind: ServerKind::Polling,
            capacity,
            period,
            budget: Cycles::ZERO,
            next_replenish: Cycles::ZERO,
            server_proc: ProcId::new(0),
        }
    }

    /// Switches the replenishment discipline (builder style).
    pub fn with_kind(mut self, kind: ServerKind) -> Self {
        self.kind = kind;
        self
    }

    /// The replenishment discipline in force.
    pub fn kind(&self) -> ServerKind {
        self.kind
    }

    /// Remaining server budget in the current period.
    pub fn budget(&self) -> Cycles {
        self.budget
    }

    /// The processor the server runs on.
    pub fn server_proc(&self) -> ProcId {
        self.server_proc
    }

    fn has_pending_aperiodic(&self) -> bool {
        self.base.next_aperiodic().is_some()
    }

    fn replenish_due(&mut self, now: Cycles) {
        while self.next_replenish <= now {
            self.budget = match self.kind {
                // The defining polling property: budget is granted only if
                // work is already waiting when the server polls; otherwise
                // it is lost for the whole period.
                ServerKind::Polling => {
                    if self.has_pending_aperiodic() {
                        self.capacity
                    } else {
                        Cycles::ZERO
                    }
                }
                // A deferrable server always holds a full budget at the
                // period boundary, ready for later arrivals.
                ServerKind::Deferrable => self.capacity,
            };
            self.next_replenish += self.period;
        }
    }

    /// The aperiodic job the server would execute right now, if any.
    fn server_job(&self) -> Option<JobId> {
        if self.budget.is_zero() {
            return None;
        }
        self.base.next_aperiodic()
    }
}

impl Scheduler for PollingServerPolicy {
    fn table(&self) -> &TaskTable {
        self.base.table()
    }
    fn n_procs(&self) -> usize {
        self.base.n_procs()
    }
    fn job(&self, id: JobId) -> &Job {
        self.base.job(id)
    }

    fn release_due(&mut self, now: Cycles) -> Vec<JobId> {
        self.replenish_due(now);
        self.base.release_due(now)
    }

    fn release_aperiodic(&mut self, task_index: usize, now: Cycles) -> JobId {
        self.base.release_aperiodic(task_index, now)
    }

    fn promote_due(&mut self, now: Cycles) -> Vec<JobId> {
        self.base.promote_due(now)
    }

    fn next_promotion_time(&self) -> Option<Cycles> {
        self.base.next_promotion_time()
    }

    fn next_release_time(&self) -> Option<Cycles> {
        self.base.next_release_time()
    }

    fn set_running(&mut self, proc: ProcId, job: Option<JobId>) {
        self.base.set_running(proc, job)
    }

    fn running(&self) -> &[Option<JobId>] {
        self.base.running()
    }

    fn complete(&mut self, id: JobId, now: Cycles) -> Job {
        self.base.complete(id, now)
    }

    fn assign(&self) -> Vec<Option<JobId>> {
        let mut desired = self.base.assign();
        // Strip every aperiodic placement the base (background) assignment
        // made: under a pure polling server, aperiodic work runs only inside
        // the server.
        for slot in desired.iter_mut() {
            if slot.is_some_and(|j| !self.base.job(j).is_periodic()) {
                *slot = None;
            }
        }
        // Backfill freed non-server slots with periodic work the base gave
        // to other processors? Promoted jobs are processor-bound and already
        // placed; with promote-at-release there is no global periodic work,
        // so a freed slot simply idles.
        if let Some(job) = self.server_job() {
            desired[self.server_proc.index()] = Some(job);
        }
        desired
    }

    fn pick_for_idle(&self, proc: ProcId) -> Option<JobId> {
        if proc == self.server_proc {
            if let Some(job) = self.server_job() {
                if !self.base.is_running(job) {
                    return Some(job);
                }
            }
        }
        self.base.pick_periodic_for_idle(proc)
    }

    fn on_progress(&mut self, job: JobId, amount: Cycles, _now: Cycles) {
        let is_server_work = !self.base.job(job).is_periodic()
            && self.base.running_on(self.server_proc) == Some(job);
        if is_server_work {
            self.budget = self.budget.saturating_sub(amount);
        }
    }

    fn next_internal_event(&self) -> Option<Cycles> {
        Some(self.next_replenish)
    }
}

/// Builds a polling-server configuration over a workload: partitions the
/// periodic tasks *with the server admitted on processor 0 as its
/// highest-priority task*, then returns the policy.
///
/// # Errors
///
/// Propagates partitioning/analysis failures, including the case where the
/// server itself does not fit.
pub fn polling_server(
    periodic: Vec<PeriodicTask>,
    aperiodic: Vec<AperiodicTask>,
    n_procs: usize,
    capacity: Cycles,
    period: Cycles,
) -> Result<PollingServerPolicy, TaskSetError> {
    // Admission: a synthetic top-priority task (C_s, T_s) pinned to P0.
    let max_prio = periodic
        .iter()
        .map(|t| t.priorities().high.level())
        .max()
        .unwrap_or(0);
    let server_id = periodic
        .iter()
        .map(|t| t.id().as_u32())
        .max()
        .map_or(10_000, |m| m + 10_000);
    let server_task = PeriodicTask::new(TaskId::new(server_id), "polling_server", capacity, period)
        .with_priorities(Priority::new(max_prio + 1), Priority::new(max_prio + 1))
        .with_processor(ProcId::new(0));
    let mut with_server = periodic.clone();
    with_server.push(server_task);
    let admitted = prepare(
        with_server,
        Vec::new(),
        n_procs,
        ToolOptions::new().with_promotion_mode(PromotionMode::Immediate),
    )?;
    // Rebuild the executed table: same assignments, server removed.
    let assignments: std::collections::HashMap<u32, ProcId> = admitted
        .periodic()
        .iter()
        .map(|t| (t.id().as_u32(), t.processor()))
        .collect();
    let assigned: Vec<PeriodicTask> = periodic
        .into_iter()
        .map(|t| {
            let proc = assignments[&t.id().as_u32()];
            t.with_processor(proc)
        })
        .collect();
    let promotions = vec![Cycles::ZERO; assigned.len()];
    let table = TaskTable::new(assigned, aperiodic, promotions, n_procs)?;
    Ok(PollingServerPolicy::new(table, capacity, period))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::time::DEFAULT_TICK;
    use mpdp_workload::automotive_task_set;

    fn policy() -> PollingServerPolicy {
        let set = automotive_task_set(0.4, 2, DEFAULT_TICK);
        polling_server(
            set.periodic,
            set.aperiodic,
            2,
            DEFAULT_TICK * 2,
            DEFAULT_TICK * 10,
        )
        .expect("server fits at 40%")
    }

    #[test]
    fn budget_is_lost_when_poll_finds_no_work() {
        let mut p = policy();
        p.release_due(Cycles::ZERO);
        assert_eq!(p.budget(), Cycles::ZERO, "empty poll discards budget");
        // An aperiodic arriving mid-period waits for the next replenishment.
        p.release_aperiodic(0, DEFAULT_TICK);
        assert_eq!(p.budget(), Cycles::ZERO);
        assert!(p.assign()[0].is_none_or(|j| p.job(j).is_periodic()));
        // At the replenishment the pending work earns a full budget.
        p.release_due(DEFAULT_TICK * 10);
        assert_eq!(p.budget(), DEFAULT_TICK * 2);
        let job = p.server_job().expect("server has work");
        assert!(!p.job(job).is_periodic());
    }

    #[test]
    fn aperiodics_never_run_outside_the_server() {
        let mut p = policy();
        p.release_due(Cycles::ZERO);
        p.release_aperiodic(0, Cycles::ZERO);
        // Budget zero (poll at 0 preceded the arrival): nothing aperiodic
        // anywhere in the assignment.
        for slot in p.assign().iter().flatten() {
            assert!(p.job(*slot).is_periodic());
        }
        for proc in 0..2 {
            if let Some(j) = p.pick_for_idle(ProcId::new(proc)) {
                assert!(p.job(j).is_periodic());
            }
        }
    }

    #[test]
    fn progress_drains_budget_until_exhaustion() {
        let mut p = policy();
        p.release_aperiodic(0, Cycles::ZERO);
        p.release_due(Cycles::ZERO); // poll finds work → full budget
        assert_eq!(p.budget(), DEFAULT_TICK * 2);
        let job = p.server_job().expect("work");
        p.set_running(ProcId::new(0), Some(job));
        p.on_progress(job, DEFAULT_TICK, Cycles::new(1));
        assert_eq!(p.budget(), DEFAULT_TICK);
        p.on_progress(job, DEFAULT_TICK * 3, Cycles::new(2));
        assert_eq!(p.budget(), Cycles::ZERO);
        // Exhausted: the server offers nothing even though the job lives.
        assert!(p.server_job().is_none());
    }

    #[test]
    fn internal_event_is_the_replenishment() {
        let mut p = policy();
        assert_eq!(p.next_internal_event(), Some(Cycles::ZERO));
        p.release_due(Cycles::ZERO);
        assert_eq!(p.next_internal_event(), Some(DEFAULT_TICK * 10));
    }

    #[test]
    fn periodic_work_is_unaffected_by_the_server_gate() {
        let mut p = policy();
        let released = p.release_due(Cycles::ZERO);
        assert_eq!(released.len(), 18);
        let desired = p.assign();
        assert!(desired.iter().flatten().count() > 0);
        for j in desired.iter().flatten() {
            assert!(p.job(*j).is_periodic());
        }
    }

    #[test]
    fn deferrable_server_keeps_budget_for_later_arrivals() {
        let set = automotive_task_set(0.4, 2, DEFAULT_TICK);
        let mut p = polling_server(
            set.periodic,
            set.aperiodic,
            2,
            DEFAULT_TICK * 2,
            DEFAULT_TICK * 10,
        )
        .expect("fits")
        .with_kind(ServerKind::Deferrable);
        // Empty poll at t = 0: the deferrable server KEEPS its budget…
        p.release_due(Cycles::ZERO);
        assert_eq!(p.budget(), DEFAULT_TICK * 2);
        // …so an arrival mid-period is served immediately.
        p.release_aperiodic(0, DEFAULT_TICK);
        let job = p.assign()[0].expect("server slot filled");
        assert!(!p.job(job).is_periodic());
    }

    #[test]
    fn oversized_server_is_rejected_by_admission() {
        let set = automotive_task_set(0.6, 2, DEFAULT_TICK);
        // A server demanding 90% of P0 cannot be admitted at 60% load.
        let result = polling_server(
            set.periodic,
            set.aperiodic,
            2,
            DEFAULT_TICK * 9,
            DEFAULT_TICK * 10,
        );
        assert!(result.is_err());
    }
}

//! The offline configuration tool.
//!
//! "Promotion time and schedulability have been calculated using the
//! recurrent formula through an in-house tool that takes in input worst case
//! execution times, period and deadlines of the tasks and produces the task
//! tables with processor assignments and all the required information for
//! both our target architecture and the simulator" (paper §5).
//!
//! [`prepare`] is that tool: partition → response-time analysis → promotion
//! times → validated [`TaskTable`]. Options cover the realities the paper
//! discusses:
//!
//! * **WCET margin** — the paper determines worst-case responses "taking in
//!   account an overhead for the context switching"; the margin inflates
//!   WCETs *for analysis only* so promotions carry an overhead budget.
//! * **Tick quantization** — the prototype applies releases and promotions
//!   during scheduling cycles; flooring each promotion offset to the tick
//!   grid makes the analysis honest about that (promoting *earlier* than
//!   `U_i` is always deadline-safe, only aperiodic responsiveness pays).
//! * **Promotion mode** — `Computed` is MPDP; `Immediate` and `Never`
//!   degenerate the dual-priority scheme into the ablation baselines (see
//!   [`crate::baselines`]).

use mpdp_core::error::TaskSetError;
use mpdp_core::rta;
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};
use mpdp_core::time::Cycles;

use crate::partition::{partition, PartitionHeuristic};

/// How promotion offsets are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromotionMode {
    /// MPDP: `U_i = D_i − W_i` from the response-time recurrence.
    #[default]
    Computed,
    /// Promote at release (`U_i = 0`): the dual-priority scheme collapses to
    /// partitioned fixed-priority scheduling with aperiodic tasks served in
    /// the background — the classic pre-MPDP design.
    Immediate,
    /// Never promote: aperiodic tasks always outrank periodic ones. No hard
    /// guarantee survives; exists to demonstrate *why* promotion matters.
    Never,
}

/// Options for [`prepare`].
#[derive(Debug, Clone, Copy)]
pub struct ToolOptions {
    /// Partitioning heuristic (default: worst-fit decreasing).
    pub heuristic: PartitionHeuristic,
    /// Analysis-only WCET inflation factor `≥ 1.0` budgeting kernel
    /// overheads and bus contention (default `1.0` — the pure algorithm).
    pub wcet_margin: f64,
    /// Floor promotion offsets to multiples of this tick (default: no
    /// quantization).
    pub quantize_to: Option<Cycles>,
    /// Promotion mode (default: [`PromotionMode::Computed`]).
    pub promotion_mode: PromotionMode,
}

impl Default for ToolOptions {
    fn default() -> Self {
        ToolOptions {
            heuristic: PartitionHeuristic::default(),
            wcet_margin: 1.0,
            quantize_to: None,
            promotion_mode: PromotionMode::default(),
        }
    }
}

impl ToolOptions {
    /// Default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the partitioning heuristic.
    pub fn with_heuristic(mut self, heuristic: PartitionHeuristic) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the analysis-only WCET margin.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 1.0` or not finite.
    pub fn with_wcet_margin(mut self, margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin >= 1.0,
            "margin must be ≥ 1.0, got {margin}"
        );
        self.wcet_margin = margin;
        self
    }

    /// Floors promotion offsets to multiples of `tick`.
    pub fn with_quantization(mut self, tick: Cycles) -> Self {
        self.quantize_to = Some(tick);
        self
    }

    /// Sets the promotion mode.
    pub fn with_promotion_mode(mut self, mode: PromotionMode) -> Self {
        self.promotion_mode = mode;
        self
    }
}

/// Runs the offline tool: partitions `periodic` over `n_procs` processors,
/// computes worst-case responses and promotion offsets (under the margin),
/// applies quantization and the promotion mode, and assembles the validated
/// [`TaskTable`] both simulators consume.
///
/// # Errors
///
/// Partitioning failures, RTA unschedulability (with the margin applied),
/// and table-validation errors, all as [`TaskSetError`].
pub fn prepare(
    periodic: Vec<PeriodicTask>,
    aperiodic: Vec<AperiodicTask>,
    n_procs: usize,
    options: ToolOptions,
) -> Result<TaskTable, TaskSetError> {
    // Inflate for analysis (partition admission + RTA). A task whose
    // inflated WCET exceeds its deadline has no room for the overhead
    // budget and is honestly rejected by the response-time analysis.
    let inflated: Vec<PeriodicTask> = periodic
        .iter()
        .map(|t| {
            let c = t.wcet().scale(options.wcet_margin);
            PeriodicTask::new(t.id(), t.name(), c, t.period())
                .with_deadline(t.deadline())
                .with_offset(t.offset())
                .with_priorities(t.priorities().low, t.priorities().high)
                .with_profile(*t.profile())
                .with_stack_words(t.stack_words())
        })
        .collect();

    let assigned_inflated = partition(inflated, n_procs, options.heuristic)?;
    let results = rta::analyze(&assigned_inflated, n_procs)?;

    let promotions: Vec<Cycles> = results
        .iter()
        .zip(&assigned_inflated)
        .map(|(r, t)| match options.promotion_mode {
            PromotionMode::Immediate => Cycles::ZERO,
            // "Never" is approximated by an offset past the deadline: the
            // job completes or misses before it would ever promote.
            PromotionMode::Never => t.period(),
            PromotionMode::Computed => match options.quantize_to {
                Some(tick) => Cycles::new(r.promotion.as_u64() / tick.as_u64() * tick.as_u64()),
                None => r.promotion,
            },
        })
        .collect();

    // Real table: original WCETs, computed assignments.
    let assigned: Vec<PeriodicTask> = periodic
        .into_iter()
        .zip(&assigned_inflated)
        .map(|(t, a)| t.with_processor(a.processor()))
        .collect();
    TaskTable::new(assigned, aperiodic, promotions, n_procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::ids::TaskId;
    use mpdp_core::priority::Priority;
    use mpdp_core::time::DEFAULT_TICK;
    use mpdp_workload::automotive_task_set;

    fn t(id: u32, c: u64, period: u64) -> PeriodicTask {
        PeriodicTask::new(
            TaskId::new(id),
            format!("t{id}"),
            Cycles::new(c),
            Cycles::new(period),
        )
        .with_priorities(Priority::new(100 - id), Priority::new(100 - id))
    }

    #[test]
    fn prepares_the_automotive_workload() {
        for m in [2usize, 3, 4] {
            for u in [0.4, 0.5, 0.6] {
                let set = automotive_task_set(u, m, DEFAULT_TICK);
                let table = prepare(
                    set.periodic,
                    set.aperiodic,
                    m,
                    ToolOptions::new().with_quantization(DEFAULT_TICK),
                )
                .unwrap_or_else(|e| panic!("m={m} u={u}: {e}"));
                assert_eq!(table.periodic().len(), 18);
                assert_eq!(table.n_procs(), m);
                for (i, _) in table.periodic().iter().enumerate() {
                    assert_eq!(
                        table.promotion(i).as_u64() % DEFAULT_TICK.as_u64(),
                        0,
                        "promotions quantized"
                    );
                }
            }
        }
    }

    #[test]
    fn margin_shrinks_promotions() {
        let tasks = vec![t(0, 20, 100), t(1, 30, 200)];
        let plain = prepare(tasks.clone(), vec![], 1, ToolOptions::new()).unwrap();
        let margined = prepare(tasks, vec![], 1, ToolOptions::new().with_wcet_margin(1.5)).unwrap();
        for i in 0..2 {
            assert!(
                margined.promotion(i) <= plain.promotion(i),
                "margin must promote earlier"
            );
            // Execution demand is untouched.
            assert_eq!(margined.periodic()[i].wcet(), plain.periodic()[i].wcet());
        }
    }

    #[test]
    fn immediate_mode_zeroes_promotions() {
        let table = prepare(
            vec![t(0, 20, 100)],
            vec![],
            1,
            ToolOptions::new().with_promotion_mode(PromotionMode::Immediate),
        )
        .unwrap();
        assert_eq!(table.promotion(0), Cycles::ZERO);
    }

    #[test]
    fn never_mode_pushes_promotions_past_deadline() {
        let table = prepare(
            vec![t(0, 20, 100)],
            vec![],
            1,
            ToolOptions::new().with_promotion_mode(PromotionMode::Never),
        )
        .unwrap();
        assert!(table.promotion(0) >= table.periodic()[0].deadline());
    }

    #[test]
    fn margin_can_reveal_unschedulability() {
        // 70% per task fits alone, but a 1.5× margin makes it 105% > D:
        // there is no room for the overhead budget, so the tool refuses.
        let err = prepare(
            vec![t(0, 70, 100)],
            vec![],
            1,
            ToolOptions::new().with_wcet_margin(1.5),
        );
        assert!(err.is_err());
        // With a margin that still fits, the promotion slack shrinks to
        // exactly the remaining headroom.
        let table = prepare(
            vec![t(0, 70, 100)],
            vec![],
            1,
            ToolOptions::new().with_wcet_margin(1.2),
        )
        .unwrap();
        assert_eq!(table.promotion(0), Cycles::new(16)); // 100 − 84
    }

    #[test]
    fn quantization_floors_not_rounds() {
        let tasks = vec![t(0, 30, 1000)];
        let table = prepare(
            tasks,
            vec![],
            1,
            ToolOptions::new().with_quantization(Cycles::new(400)),
        )
        .unwrap();
        // U = 1000 − 30 = 970 → floor to 800.
        assert_eq!(table.promotion(0), Cycles::new(800));
    }
}

//! # mpdp-analysis — the offline configuration tool and baselines
//!
//! The paper configures its system with "an in-house tool that takes in
//! input worst case execution times, period and deadlines of the tasks and
//! produces the task tables with processor assignments and all the required
//! information for both our target architecture and the simulator". This
//! crate is that tool:
//!
//! * [`partition`](mod@partition) — static distribution of periodic tasks over
//!   processors (first/best/worst-fit decreasing with exact RTA admission);
//! * [`tool`](mod@tool) — partition → response-time analysis → promotion times
//!   → validated [`mpdp_core::task::TaskTable`], with options for WCET
//!   margins, tick quantization, and promotion modes;
//! * [`baselines`](mod@baselines) — the degenerate promotion modes used as
//!   ablation baselines (background service, aperiodic-first);
//! * [`report`](mod@report) — printable task tables.
//!
//! ```
//! use mpdp_analysis::tool::{prepare, ToolOptions};
//! use mpdp_workload::automotive_task_set;
//! use mpdp_core::time::DEFAULT_TICK;
//!
//! # fn main() -> Result<(), mpdp_core::TaskSetError> {
//! let set = automotive_task_set(0.5, 3, DEFAULT_TICK);
//! let table = prepare(set.periodic, set.aperiodic, 3,
//!     ToolOptions::new().with_quantization(DEFAULT_TICK))?;
//! assert_eq!(table.periodic().len(), 18);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod baselines;
pub mod partition;
pub mod polling;
pub mod report;
pub mod sensitivity;
pub mod tool;

pub use admission::{AdmissionOutcome, AdmissionSession, RejectReason};
pub use baselines::{aperiodic_first, background_service};
pub use partition::{partition, per_proc_utilization, PartitionHeuristic};
pub use polling::{polling_server, PollingServerPolicy, ServerKind};
pub use report::{format_report, report_rows, ReportRow};
pub use sensitivity::{breakdown_utilization, is_schedulable_at, scale_load};
pub use tool::{prepare, PromotionMode, ToolOptions};

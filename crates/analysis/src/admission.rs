//! Session-level online admission control — the offline tool chain
//! ([`prepare`], the sensitivity analysis) packaged as an incremental
//! decision procedure a long-lived service can call per request.
//!
//! The paper's dual-priority scheme guarantees the periodic set offline
//! and admits aperiodic work opportunistically at runtime. An
//! [`AdmissionSession`] is the analysis-side mirror of that split: it is
//! created over a *guaranteed* periodic base set (rejected up front if
//! the base itself is unschedulable), and each aperiodic request then
//! arrives with a declared demand window — a minimum inter-arrival time —
//! so its bandwidth `exec / window` is well defined. The admission test
//! folds the aggregate aperiodic bandwidth into the periodic load as a
//! uniform scale factor and re-runs the full partition + response-time
//! analysis ([`is_schedulable_at`]): a request is admitted only if the
//! *guaranteed* set would survive the extra demand, which is exactly the
//! criterion that keeps the dual-priority promise at the service level.
//!
//! Every decision is a pure function of the session's history, so a
//! service that journals its requests and replays them after a crash
//! reaches a byte-identical session state — the property the `mpdpd`
//! daemon's crash recovery is built on.

use mpdp_core::error::TaskSetError;
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};
use mpdp_core::time::Cycles;

use crate::partition::PartitionHeuristic;
use crate::sensitivity::{breakdown_utilization, is_schedulable_at};
use crate::tool::{prepare, ToolOptions};

/// Why an aperiodic request was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The declared demand window (or execution time) was zero — the
    /// request's bandwidth is undefined or infinite.
    InvalidDemand,
    /// Folding the request in would break the periodic guarantee: the
    /// scaled set fails partition + RTA at `factor`.
    Unschedulable {
        /// The uniform load factor the admission test applied.
        factor: f64,
    },
}

/// The outcome of one admission decision. Decisions are deterministic:
/// replaying the same sequence of requests yields the same outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionOutcome {
    /// The request was admitted and is now part of the session.
    Admitted {
        /// The request's own bandwidth (`exec / window`).
        bandwidth: f64,
        /// Aggregate aperiodic bandwidth after this admission.
        total_aperiodic: f64,
    },
    /// The request was refused; the session is unchanged.
    Rejected {
        /// The request's own bandwidth (`exec / window`), when defined.
        bandwidth: f64,
        /// Why it was refused.
        reason: RejectReason,
    },
}

impl AdmissionOutcome {
    /// Whether the request got in.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted { .. })
    }
}

/// One client's admission state: a guaranteed periodic base set plus the
/// aperiodic requests admitted so far.
#[derive(Debug, Clone)]
pub struct AdmissionSession {
    periodic: Vec<PeriodicTask>,
    n_procs: usize,
    heuristic: PartitionHeuristic,
    periodic_utilization: f64,
    admitted: Vec<(AperiodicTask, Cycles)>,
    aperiodic_bandwidth: f64,
}

impl AdmissionSession {
    /// Opens a session over `periodic` on `n_procs` processors.
    ///
    /// # Errors
    ///
    /// The base set must itself be guaranteed: partition + RTA at factor
    /// 1.0 must succeed, otherwise the [`TaskSetError`] is returned and
    /// no session exists (there is no guarantee to protect).
    pub fn new(
        periodic: Vec<PeriodicTask>,
        n_procs: usize,
        heuristic: PartitionHeuristic,
    ) -> Result<Self, TaskSetError> {
        // `prepare` is the authoritative check (it applies RTA); run it
        // once to validate the base and discard the table.
        prepare(
            periodic.clone(),
            Vec::new(),
            n_procs,
            ToolOptions::new().with_heuristic(heuristic),
        )?;
        let periodic_utilization = periodic.iter().map(PeriodicTask::utilization).sum();
        Ok(AdmissionSession {
            periodic,
            n_procs,
            heuristic,
            periodic_utilization,
            admitted: Vec::new(),
            aperiodic_bandwidth: 0.0,
        })
    }

    /// The guaranteed periodic base set.
    pub fn periodic(&self) -> &[PeriodicTask] {
        &self.periodic
    }

    /// The aperiodic requests admitted so far, with their demand windows,
    /// in admission order.
    pub fn admitted(&self) -> &[(AperiodicTask, Cycles)] {
        &self.admitted
    }

    /// Aggregate admitted aperiodic bandwidth (sum of `exec / window`).
    pub fn aperiodic_bandwidth(&self) -> f64 {
        self.aperiodic_bandwidth
    }

    /// Decides one aperiodic request: `task`'s execution demand is
    /// declared to recur no more often than every `window` cycles. On
    /// admission the request joins the session; on rejection the session
    /// is unchanged — rejections are free to retry with a wider window.
    pub fn try_admit(&mut self, task: AperiodicTask, window: Cycles) -> AdmissionOutcome {
        if window.is_zero() || task.exec().is_zero() {
            return AdmissionOutcome::Rejected {
                bandwidth: 0.0,
                reason: RejectReason::InvalidDemand,
            };
        }
        let bandwidth = task.exec().as_u64() as f64 / window.as_u64() as f64;
        let total = self.aperiodic_bandwidth + bandwidth;
        let admitted = if self.periodic_utilization > 0.0 {
            // Fold the aggregate aperiodic bandwidth into the guaranteed
            // load as a uniform scale factor and re-run the analysis: the
            // periodic set must survive carrying the whole bandwidth.
            let factor = (self.periodic_utilization + total) / self.periodic_utilization;
            if is_schedulable_at(&self.periodic, self.n_procs, factor, self.heuristic) {
                true
            } else {
                return AdmissionOutcome::Rejected {
                    bandwidth,
                    reason: RejectReason::Unschedulable { factor },
                };
            }
        } else {
            // No periodic load to scale: bare bandwidth against capacity.
            total < self.n_procs as f64
        };
        if !admitted {
            return AdmissionOutcome::Rejected {
                bandwidth,
                reason: RejectReason::Unschedulable { factor: f64::NAN },
            };
        }
        self.admitted.push((task, window));
        self.aperiodic_bandwidth = total;
        AdmissionOutcome::Admitted {
            bandwidth,
            total_aperiodic: total,
        }
    }

    /// Remaining admissible bandwidth: how much more aperiodic demand the
    /// guaranteed set can absorb before [`try_admit`](Self::try_admit)
    /// starts refusing, measured by the sensitivity breakdown search to
    /// `tolerance`. Zero when the base carries no periodic load headroom
    /// information (empty base sets report capacity minus current load).
    ///
    /// # Errors
    ///
    /// Propagates the [`breakdown_utilization`] search's errors.
    pub fn headroom(&self, tolerance: f64) -> Result<f64, TaskSetError> {
        if self.periodic_utilization <= 0.0 {
            return Ok((self.n_procs as f64 - self.aperiodic_bandwidth).max(0.0));
        }
        // `breakdown_utilization` reports the *system* utilization
        // (Σ C/T / m) at the breakdown point; convert back to load units
        // to compare against the session's absolute demand.
        let breakdown =
            breakdown_utilization(&self.periodic, self.n_procs, self.heuristic, tolerance)?;
        let capacity = breakdown * self.n_procs as f64;
        Ok((capacity - self.periodic_utilization - self.aperiodic_bandwidth).max(0.0))
    }

    /// Builds the validated [`TaskTable`] for the session's current state
    /// — the guaranteed base plus every admitted aperiodic task — ready
    /// for either simulator stack.
    ///
    /// # Errors
    ///
    /// Everything [`prepare`] can reject (the base was validated at open,
    /// so failures indicate option conflicts, e.g. a WCET margin).
    pub fn table(&self, options: ToolOptions) -> Result<TaskTable, TaskSetError> {
        prepare(
            self.periodic.clone(),
            self.admitted.iter().map(|(t, _)| t.clone()).collect(),
            self.n_procs,
            options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::ids::TaskId;
    use mpdp_core::time::DEFAULT_TICK;
    use mpdp_workload::automotive_task_set;

    fn session(util: f64, n_procs: usize) -> AdmissionSession {
        let set = automotive_task_set(util, n_procs, DEFAULT_TICK);
        AdmissionSession::new(
            set.periodic,
            n_procs,
            PartitionHeuristic::FirstFitDecreasing,
        )
        .expect("base set is guaranteed")
    }

    fn request(id: u32, exec_us: u64) -> AperiodicTask {
        AperiodicTask::new(
            TaskId::new(id),
            format!("ap{id}"),
            Cycles::from_micros(exec_us),
        )
    }

    #[test]
    fn light_requests_are_admitted_and_accumulate() {
        let mut s = session(0.4, 3);
        let window = Cycles::from_millis(100);
        let first = s.try_admit(request(100, 200), window);
        assert!(first.is_admitted(), "{first:?}");
        let second = s.try_admit(request(101, 200), window);
        assert!(second.is_admitted(), "{second:?}");
        assert_eq!(s.admitted().len(), 2);
        assert!(s.aperiodic_bandwidth() > 0.0);
    }

    #[test]
    fn overload_is_rejected_and_leaves_the_session_unchanged() {
        let mut s = session(0.7, 2);
        // Demand its own processor's worth of bandwidth every window.
        let heavy = s.try_admit(request(100, 100_000), Cycles::from_micros(100_000));
        assert!(
            matches!(
                heavy,
                AdmissionOutcome::Rejected {
                    reason: RejectReason::Unschedulable { .. },
                    ..
                }
            ),
            "{heavy:?}"
        );
        assert!(s.admitted().is_empty());
        assert_eq!(s.aperiodic_bandwidth(), 0.0);
        // A modest follow-up still gets in: rejections cost nothing.
        assert!(s
            .try_admit(request(100, 50), Cycles::from_millis(50))
            .is_admitted());
    }

    #[test]
    fn zero_window_or_zero_exec_is_invalid_demand() {
        let mut s = session(0.4, 2);
        for (exec, window) in [(0, 1_000), (100, 0)] {
            let out = s.try_admit(request(100, exec), Cycles::from_micros(window));
            assert!(
                matches!(
                    out,
                    AdmissionOutcome::Rejected {
                        reason: RejectReason::InvalidDemand,
                        ..
                    }
                ),
                "{out:?}"
            );
        }
    }

    #[test]
    fn decisions_replay_deterministically() {
        let run = |requests: &[(u32, u64, u64)]| {
            let mut s = session(0.5, 3);
            requests
                .iter()
                .map(|&(id, exec, win)| s.try_admit(request(id, exec), Cycles::from_micros(win)))
                .collect::<Vec<_>>()
        };
        let script = [
            (100, 500, 10_000),
            (101, 90_000, 100_000),
            (102, 200, 5_000),
        ];
        assert_eq!(run(&script), run(&script), "replay is byte-identical");
    }

    #[test]
    fn headroom_shrinks_as_requests_are_admitted() {
        let mut s = session(0.4, 2);
        let before = s.headroom(0.01).expect("headroom computes");
        assert!(before > 0.0);
        assert!(s
            .try_admit(request(100, 5_000), Cycles::from_millis(50))
            .is_admitted());
        let after = s.headroom(0.01).expect("headroom computes");
        assert!(after < before, "{after} < {before}");
    }

    #[test]
    fn session_table_includes_admitted_tasks() {
        let mut s = session(0.4, 2);
        assert!(s
            .try_admit(request(100, 100), Cycles::from_millis(10))
            .is_admitted());
        let table = s.table(ToolOptions::new()).expect("table builds");
        assert_eq!(table.aperiodic().len(), 1);
        assert_eq!(table.periodic().len(), s.periodic().len());
    }
}

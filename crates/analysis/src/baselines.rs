//! Baseline scheduling configurations for ablation studies.
//!
//! The paper motivates MPDP against two simpler designs (§1–2): commercial
//! RTOSes that "adopt simple priority-based preemptive scheduling in
//! multiprocessor solutions" (periodic tasks always at full priority,
//! aperiodics in the background), and purely reactive designs that always
//! favour external events. Both are expressible as degenerate promotion
//! modes of the same MPDP machinery, which makes the comparison honest: the
//! queues, kernel, and overheads are identical, only the promotion policy
//! changes.
//!
//! | Baseline | Promotion | Hard guarantee | Aperiodic service |
//! |---|---|---|---|
//! | [`background_service`] | at release | yes | background only |
//! | [`aperiodic_first`] | never | **no** | immediate |
//! | MPDP ([`crate::tool::prepare`]) | at `U_i = D_i − W_i` | yes | near-immediate |
//!
//! # Examples
//!
//! ```
//! use mpdp_analysis::baselines::background_service;
//! use mpdp_workload::automotive_task_set;
//! use mpdp_core::time::{Cycles, DEFAULT_TICK};
//!
//! # fn main() -> Result<(), mpdp_core::TaskSetError> {
//! let set = automotive_task_set(0.5, 2, DEFAULT_TICK);
//! let table = background_service(set.periodic, set.aperiodic, 2)?;
//! assert!(table.promotions().iter().all(|&p| p == Cycles::ZERO));
//! # Ok(())
//! # }
//! ```

use mpdp_core::error::TaskSetError;
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};

use crate::tool::{prepare, PromotionMode, ToolOptions};

/// Partitioned fixed-priority scheduling with background aperiodic service:
/// every periodic job is promoted at release, so aperiodic tasks only run on
/// processors with no ready periodic work.
///
/// # Errors
///
/// Same failure modes as [`prepare`].
pub fn background_service(
    periodic: Vec<PeriodicTask>,
    aperiodic: Vec<AperiodicTask>,
    n_procs: usize,
) -> Result<TaskTable, TaskSetError> {
    prepare(
        periodic,
        aperiodic,
        n_procs,
        ToolOptions::new().with_promotion_mode(PromotionMode::Immediate),
    )
}

/// The reactive-at-any-cost configuration: periodic tasks are never
/// promoted, so aperiodic work always preempts them. Periodic deadlines can
/// and will be missed under load — this baseline exists to demonstrate why
/// MPDP's promotions are necessary.
///
/// # Errors
///
/// Same failure modes as [`prepare`].
pub fn aperiodic_first(
    periodic: Vec<PeriodicTask>,
    aperiodic: Vec<AperiodicTask>,
    n_procs: usize,
) -> Result<TaskTable, TaskSetError> {
    prepare(
        periodic,
        aperiodic,
        n_procs,
        ToolOptions::new().with_promotion_mode(PromotionMode::Never),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::time::{Cycles, DEFAULT_TICK};
    use mpdp_workload::automotive_task_set;

    #[test]
    fn background_promotes_at_release() {
        let set = automotive_task_set(0.4, 2, DEFAULT_TICK);
        let table = background_service(set.periodic, set.aperiodic, 2).unwrap();
        assert!(table.promotions().iter().all(|&p| p == Cycles::ZERO));
    }

    #[test]
    fn aperiodic_first_never_promotes_within_deadline() {
        let set = automotive_task_set(0.4, 2, DEFAULT_TICK);
        let table = aperiodic_first(set.periodic, set.aperiodic, 2).unwrap();
        for (i, t) in table.periodic().iter().enumerate() {
            assert!(table.promotion(i) >= t.deadline());
        }
    }

    #[test]
    fn mpdp_promotions_sit_between_the_baselines() {
        let set = automotive_task_set(0.5, 2, DEFAULT_TICK);
        let mpdp = prepare(
            set.periodic.clone(),
            set.aperiodic.clone(),
            2,
            ToolOptions::new(),
        )
        .unwrap();
        let bg = background_service(set.periodic.clone(), set.aperiodic.clone(), 2).unwrap();
        let af = aperiodic_first(set.periodic, set.aperiodic, 2).unwrap();
        for i in 0..mpdp.periodic().len() {
            assert!(mpdp.promotion(i) >= bg.promotion(i));
            assert!(mpdp.promotion(i) <= af.promotion(i));
        }
        // And strictly above zero for at least one task (slack exists).
        assert!(mpdp.promotions().iter().any(|&p| p > Cycles::ZERO));
    }
}

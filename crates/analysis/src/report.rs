//! Human-readable schedulability reports — the printed form of the task
//! tables the offline tool produces (useful in examples and experiment
//! logs).

use std::fmt::Write as _;

use mpdp_core::rta;
use mpdp_core::task::TaskTable;

/// A per-task row of the analysis report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Task name.
    pub name: String,
    /// Processor assignment.
    pub proc: usize,
    /// WCET in seconds.
    pub wcet_s: f64,
    /// Period in seconds.
    pub period_s: f64,
    /// Utilization.
    pub utilization: f64,
    /// Worst-case response in seconds (upper band).
    pub response_s: f64,
    /// Promotion offset in seconds.
    pub promotion_s: f64,
}

/// Builds the report rows for a task table (re-running the RTA on the
/// as-assigned tasks so the response column reflects the *uninflated*
/// WCETs).
///
/// # Panics
///
/// Panics if the table's tasks are unschedulable, which cannot happen for a
/// table produced by the offline tool.
pub fn report_rows(table: &TaskTable) -> Vec<ReportRow> {
    let results = rta::analyze(table.periodic(), table.n_procs())
        .expect("a validated task table is schedulable");
    table
        .periodic()
        .iter()
        .zip(results)
        .enumerate()
        .map(|(i, (t, r))| ReportRow {
            name: t.name().to_string(),
            proc: t.processor().index(),
            wcet_s: t.wcet().as_secs_f64(),
            period_s: t.period().as_secs_f64(),
            utilization: t.utilization(),
            response_s: r.response.as_secs_f64(),
            promotion_s: table.promotion(i).as_secs_f64(),
        })
        .collect()
}

/// Formats the full report as an aligned text table.
pub fn format_report(table: &TaskTable) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>9} {:>9} {:>6} {:>9} {:>9}",
        "task", "proc", "C (s)", "T (s)", "U", "W (s)", "prom (s)"
    );
    for row in report_rows(table) {
        let _ = writeln!(
            out,
            "{:<22} {:>4} {:>9.3} {:>9.3} {:>6.3} {:>9.3} {:>9.3}",
            row.name,
            row.proc,
            row.wcet_s,
            row.period_s,
            row.utilization,
            row.response_s,
            row.promotion_s
        );
    }
    let _ = writeln!(
        out,
        "total utilization {:.3} over {} processors (system {:.1}%)",
        table.total_utilization(),
        table.n_procs(),
        100.0 * table.system_utilization()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{prepare, ToolOptions};
    use mpdp_core::time::DEFAULT_TICK;
    use mpdp_workload::automotive_task_set;

    #[test]
    fn report_covers_every_task() {
        let set = automotive_task_set(0.5, 2, DEFAULT_TICK);
        let table = prepare(set.periodic, set.aperiodic, 2, ToolOptions::new()).unwrap();
        let rows = report_rows(&table);
        assert_eq!(rows.len(), 18);
        for row in &rows {
            assert!(row.response_s <= row.period_s, "{}", row.name);
            assert!(row.promotion_s >= 0.0);
            assert!(row.proc < 2);
        }
    }

    #[test]
    fn formatted_report_mentions_names_and_total() {
        let set = automotive_task_set(0.4, 3, DEFAULT_TICK);
        let table = prepare(set.periodic, set.aperiodic, 3, ToolOptions::new()).unwrap();
        let text = format_report(&table);
        assert!(text.contains("qsort_large"));
        assert!(text.contains("total utilization"));
        assert!(text.lines().count() >= 20);
    }
}

//! Sensitivity analysis: how much load can a configuration carry before the
//! guarantees break?
//!
//! The classic measure is the **breakdown utilization** (Lehoczky, Sha &
//! Ding): scale every period down (load up) until the exact schedulability
//! test first fails. The offline tool uses it to answer "how much margin
//! does this partitioning have?" and the experiments use it to position the
//! paper's 40–60% operating range against the workload's actual limit.

use mpdp_core::error::TaskSetError;
use mpdp_core::rta;
use mpdp_core::task::PeriodicTask;
use mpdp_core::time::Cycles;

use crate::partition::{partition, PartitionHeuristic};

/// Scales a task set's utilization by `factor` by dividing every period and
/// deadline (WCETs are untouched, so utilization multiplies by `factor`).
///
/// Periods are floored at each task's WCET, which caps the per-task
/// utilization at 1.
///
/// # Panics
///
/// Panics if `factor` is not finite and positive.
pub fn scale_load(tasks: &[PeriodicTask], factor: f64) -> Vec<PeriodicTask> {
    assert!(
        factor.is_finite() && factor > 0.0,
        "scale factor must be positive"
    );
    tasks
        .iter()
        .map(|t| {
            let period = Cycles::new(((t.period().as_u64() as f64 / factor).round() as u64).max(1))
                .max(t.wcet());
            let deadline =
                Cycles::new(((t.deadline().as_u64() as f64 / factor).round() as u64).max(1))
                    .max(t.wcet())
                    .min(period);
            PeriodicTask::new(t.id(), t.name(), t.wcet(), period)
                .with_deadline(deadline)
                .with_offset(t.offset())
                .with_priorities(t.priorities().low, t.priorities().high)
                .with_processor(t.processor())
                .with_profile(*t.profile())
                .with_stack_words(t.stack_words())
        })
        .collect()
}

/// Whether the set, scaled by `factor`, can still be partitioned and
/// verified schedulable on `n_procs` processors.
pub fn is_schedulable_at(
    tasks: &[PeriodicTask],
    n_procs: usize,
    factor: f64,
    heuristic: PartitionHeuristic,
) -> bool {
    let scaled = scale_load(tasks, factor);
    match partition(scaled, n_procs, heuristic) {
        Ok(assigned) => rta::analyze(&assigned, n_procs).is_ok(),
        Err(_) => false,
    }
}

/// Finds the **breakdown utilization** by binary search on the load
/// factor: the system utilization (`Σ C/T / m`) achieved at the largest
/// factor (within `tolerance`) at which the scaled set is still
/// schedulable. A set whose scaling saturates while still schedulable
/// (every period floored at its WCET) reports the saturated utilization.
///
/// # Errors
///
/// [`TaskSetError::Unschedulable`] if the set is not schedulable even at
/// its given load (factor 1.0).
///
/// # Panics
///
/// Panics if `tasks` is empty or `tolerance` is not positive.
pub fn breakdown_utilization(
    tasks: &[PeriodicTask],
    n_procs: usize,
    heuristic: PartitionHeuristic,
    tolerance: f64,
) -> Result<f64, TaskSetError> {
    assert!(!tasks.is_empty(), "need at least one task");
    assert!(tolerance > 0.0, "tolerance must be positive");
    if !is_schedulable_at(tasks, n_procs, 1.0, heuristic) {
        return Err(TaskSetError::Unschedulable(tasks[0].id()));
    }
    let util_at = |factor: f64| -> f64 {
        scale_load(tasks, factor)
            .iter()
            .map(PeriodicTask::utilization)
            .sum::<f64>()
            / n_procs as f64
    };
    // Exponential probe for an unschedulable upper bound.
    let mut lo = 1.0f64;
    let mut hi = 2.0f64;
    let mut guard = 0;
    while is_schedulable_at(tasks, n_procs, hi, heuristic) {
        lo = hi;
        hi *= 2.0;
        guard += 1;
        if guard > 16 {
            // The period floor saturated every task at U = 1 while the set
            // stayed schedulable: report the saturated utilization.
            return Ok(util_at(lo));
        }
    }
    while hi - lo > tolerance {
        let mid = (lo + hi) / 2.0;
        if is_schedulable_at(tasks, n_procs, mid, heuristic) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(util_at(lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::ids::TaskId;
    use mpdp_core::priority::Priority;
    use mpdp_core::time::DEFAULT_TICK;
    use mpdp_workload::automotive_task_set;

    fn simple(id: u32, c: u64, t: u64) -> PeriodicTask {
        PeriodicTask::new(
            TaskId::new(id),
            format!("t{id}"),
            Cycles::new(c),
            Cycles::new(t),
        )
        .with_priorities(Priority::new(100 - id), Priority::new(100 - id))
    }

    #[test]
    fn scaling_multiplies_utilization() {
        let tasks = vec![simple(0, 10, 100)];
        let scaled = scale_load(&tasks, 2.0);
        assert_eq!(scaled[0].period(), Cycles::new(50));
        assert!((scaled[0].utilization() - 0.2).abs() < 1e-12);
        // WCET floor: scaling cannot push utilization past 1.
        let maxed = scale_load(&tasks, 100.0);
        assert_eq!(maxed[0].period(), Cycles::new(10));
    }

    #[test]
    fn single_task_breaks_down_at_full_processor() {
        let tasks = vec![simple(0, 10, 100)];
        let util = breakdown_utilization(&tasks, 1, PartitionHeuristic::default(), 0.01).unwrap();
        // One task alone saturates at U = 1 and stays schedulable.
        assert!((util - 1.0).abs() < 0.05, "breakdown utilization {util}");
    }

    #[test]
    fn automotive_breakdown_is_above_the_papers_operating_range() {
        let set = automotive_task_set(0.4, 2, DEFAULT_TICK);
        let util =
            breakdown_utilization(&set.periodic, 2, PartitionHeuristic::default(), 0.02).unwrap();
        // The paper operates at 40–60%; the exact test admits well beyond
        // that but at most full capacity.
        assert!(util > 0.6 && util <= 1.0, "breakdown at {util}");
    }

    #[test]
    fn overloaded_input_is_rejected() {
        let tasks = vec![simple(0, 80, 100), simple(1, 80, 100)];
        assert!(breakdown_utilization(&tasks, 1, PartitionHeuristic::default(), 0.01).is_err());
    }

    #[test]
    fn more_processors_do_not_lower_the_breakdown() {
        let set = automotive_task_set(0.3, 2, DEFAULT_TICK);
        let u2 =
            breakdown_utilization(&set.periodic, 2, PartitionHeuristic::default(), 0.05).unwrap();
        let u3 =
            breakdown_utilization(&set.periodic, 3, PartitionHeuristic::default(), 0.05).unwrap();
        assert!(u3 >= u2 * 0.9, "u2={u2} u3={u3}");
    }
}

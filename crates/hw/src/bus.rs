//! Cycle-accurate model of the shared On-chip Peripheral Bus (OPB).
//!
//! All processors, the shared DDR, the boot BRAM, and the peripherals sit on
//! one OPB (paper Figure 1); every instruction-cache miss and every shared
//! data access becomes a bus transaction. The bus serves one transaction at a
//! time; pending requests wait in per-master queues and an arbiter picks the
//! next grant.
//!
//! Two arbitration policies are provided: the fixed-priority scheme of the
//! Xilinx OPB arbiter (lower master index wins) and round-robin. The
//! [`Arbiter`] is exact at cycle granularity and is used directly for short
//! windows (tests, micro-benchmarks) and as the ground truth the scalable
//! analytic model in [`crate::contention`] is validated against.
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::bus::{Arbiter, ArbitrationPolicy};
//! use mpdp_core::ids::ProcId;
//!
//! let mut bus = Arbiter::new(2, ArbitrationPolicy::FixedPriority);
//! bus.push_request(ProcId::new(0), 12, 0);
//! bus.push_request(ProcId::new(1), 12, 1);
//! let mut done = Vec::new();
//! for _ in 0..24 {
//!     done.extend(bus.step());
//! }
//! assert_eq!(done.len(), 2);
//! assert_eq!(done[0].master, ProcId::new(0)); // master 0 outranks master 1
//! ```

use std::collections::VecDeque;

use mpdp_core::ids::ProcId;

/// Service time of one uncontended DDR transaction over the OPB, in cycles.
/// The paper: shared-memory access latency is 12 cycles (1 on cache hit).
pub const DDR_SERVICE_CYCLES: u32 = 12;

/// How the bus arbiter picks among pending masters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbitrationPolicy {
    /// Lowest master index wins (the stock OPB arbiter scheme).
    #[default]
    FixedPriority,
    /// Rotating grant order for long-run fairness.
    RoundRobin,
}

/// A bus request waiting for or holding a grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Request {
    /// Cycle at which the request was issued.
    issued_at: u64,
    /// Cycles of bus occupancy required.
    service: u32,
    /// Caller-chosen tag returned on completion.
    tag: u64,
}

/// A finished bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The master that issued it.
    pub master: ProcId,
    /// Cycle the request was issued.
    pub issued_at: u64,
    /// Cycle the transaction finished (bus freed).
    pub finished_at: u64,
    /// Cycles spent waiting for the grant (queueing delay only).
    pub waited: u64,
    /// Caller tag.
    pub tag: u64,
}

/// Aggregate per-bus statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BusStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Cycles the bus was transferring data.
    pub busy_cycles: u64,
    /// Transactions completed.
    pub completed: u64,
    /// Sum of queueing delays over all completed transactions.
    pub total_wait: u64,
}

impl BusStats {
    /// Fraction of cycles the bus was occupied.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean queueing delay per completed transaction, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.completed as f64
        }
    }
}

/// Per-master statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MasterStats {
    /// Transactions completed by this master.
    pub completed: u64,
    /// Cycles of bus service consumed.
    pub service_cycles: u64,
    /// Total queueing delay suffered.
    pub total_wait: u64,
}

impl MasterStats {
    /// Mean queueing delay per completed transaction, in cycles.
    pub fn mean_wait(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.completed as f64
        }
    }
}

/// Cycle-accurate OPB arbiter.
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: ArbitrationPolicy,
    queues: Vec<VecDeque<Request>>,
    /// Currently granted master and cycles of service remaining.
    current: Option<(usize, u32, Request)>,
    /// Next master to consider first under round-robin.
    rr_next: usize,
    now: u64,
    stats: BusStats,
    master_stats: Vec<MasterStats>,
}

impl Arbiter {
    /// Creates an arbiter for `n_masters` masters.
    ///
    /// # Panics
    ///
    /// Panics if `n_masters` is zero.
    pub fn new(n_masters: usize, policy: ArbitrationPolicy) -> Self {
        assert!(n_masters > 0, "bus needs at least one master");
        Arbiter {
            policy,
            queues: vec![VecDeque::new(); n_masters],
            current: None,
            rr_next: 0,
            now: 0,
            stats: BusStats::default(),
            master_stats: vec![MasterStats::default(); n_masters],
        }
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// Per-master statistics so far.
    pub fn master_stats(&self, master: ProcId) -> MasterStats {
        self.master_stats[master.index()]
    }

    /// Number of requests queued (not yet granted) for `master`.
    pub fn pending(&self, master: ProcId) -> usize {
        self.queues[master.index()].len()
    }

    /// Whether the bus is transferring data this cycle.
    pub fn is_busy(&self) -> bool {
        self.current.is_some()
    }

    /// Enqueues a transaction of `service` cycles for `master`.
    ///
    /// # Panics
    ///
    /// Panics if `master` is out of range or `service` is zero.
    pub fn push_request(&mut self, master: ProcId, service: u32, tag: u64) {
        assert!(service > 0, "zero-length bus transaction");
        self.queues[master.index()].push_back(Request {
            issued_at: self.now,
            service,
            tag,
        });
    }

    fn pick_next(&mut self) -> Option<usize> {
        let n = self.queues.len();
        match self.policy {
            ArbitrationPolicy::FixedPriority => (0..n).find(|&m| !self.queues[m].is_empty()),
            ArbitrationPolicy::RoundRobin => {
                let start = self.rr_next;
                for off in 0..n {
                    let m = (start + off) % n;
                    if !self.queues[m].is_empty() {
                        self.rr_next = (m + 1) % n;
                        return Some(m);
                    }
                }
                None
            }
        }
    }

    /// Advances the bus by one cycle, returning at most one completion.
    ///
    /// A grant issued in the same cycle a previous transaction finishes is
    /// back-to-back (no dead cycle), matching a pipelined OPB arbiter.
    pub fn step(&mut self) -> Option<Completion> {
        // Grant if idle.
        if self.current.is_none() {
            if let Some(m) = self.pick_next() {
                let req = self.queues[m].pop_front().expect("queue checked non-empty");
                self.current = Some((m, req.service, req));
            }
        }
        let mut completion = None;
        if let Some((m, remaining, req)) = self.current.take() {
            self.stats.busy_cycles += 1;
            if remaining == 1 {
                let finished_at = self.now + 1;
                let waited = finished_at - req.issued_at - u64::from(req.service);
                self.stats.completed += 1;
                self.stats.total_wait += waited;
                let ms = &mut self.master_stats[m];
                ms.completed += 1;
                ms.service_cycles += u64::from(req.service);
                ms.total_wait += waited;
                completion = Some(Completion {
                    master: ProcId::new(m as u32),
                    issued_at: req.issued_at,
                    finished_at,
                    waited,
                    tag: req.tag,
                });
            } else {
                self.current = Some((m, remaining - 1, req));
            }
        }
        self.now += 1;
        self.stats.cycles = self.now;
        completion
    }

    /// Runs the bus until every queued transaction has completed, returning
    /// all completions in finish order.
    pub fn drain(&mut self) -> Vec<Completion> {
        let mut out = Vec::new();
        while self.is_busy() || self.queues.iter().any(|q| !q.is_empty()) {
            out.extend(self.step());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_master_no_wait() {
        let mut bus = Arbiter::new(1, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(0), 12, 7);
        let done = bus.drain();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].waited, 0);
        assert_eq!(done[0].finished_at, 12);
        assert_eq!(done[0].tag, 7);
        assert!((bus.stats().utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_priority_prefers_low_index() {
        let mut bus = Arbiter::new(3, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(2), 4, 0);
        bus.push_request(ProcId::new(0), 4, 1);
        bus.push_request(ProcId::new(1), 4, 2);
        let done = bus.drain();
        let order: Vec<u32> = done.iter().map(|c| c.master.as_u32()).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(done[1].waited, 4);
        assert_eq!(done[2].waited, 8);
    }

    #[test]
    fn fixed_priority_can_starve_high_index() {
        let mut bus = Arbiter::new(2, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(1), 2, 99);
        // Master 0 keeps the bus saturated.
        for i in 0..10 {
            bus.push_request(ProcId::new(0), 2, i);
        }
        let done = bus.drain();
        // Master 1 finishes last despite requesting first.
        assert_eq!(done.last().map(|c| c.master), Some(ProcId::new(1)));
    }

    #[test]
    fn round_robin_alternates() {
        let mut bus = Arbiter::new(2, ArbitrationPolicy::RoundRobin);
        for i in 0..4 {
            bus.push_request(ProcId::new(0), 2, i);
            bus.push_request(ProcId::new(1), 2, 10 + i);
        }
        let done = bus.drain();
        let order: Vec<u32> = done.iter().map(|c| c.master.as_u32()).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn work_conservation() {
        let mut bus = Arbiter::new(4, ArbitrationPolicy::RoundRobin);
        let mut total_service = 0u64;
        for m in 0..4 {
            for k in 0..5 {
                let s = 1 + ((m * 7 + k * 3) % 12) as u32;
                total_service += u64::from(s);
                bus.push_request(ProcId::new(m as u32), s, 0);
            }
        }
        let done = bus.drain();
        assert_eq!(done.len(), 20);
        // Requests were all issued at cycle 0, so the bus never idles:
        assert_eq!(bus.stats().busy_cycles, total_service);
        assert_eq!(bus.stats().cycles, total_service);
    }

    #[test]
    fn back_to_back_grants_have_no_dead_cycle() {
        let mut bus = Arbiter::new(1, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(0), 3, 0);
        bus.push_request(ProcId::new(0), 3, 1);
        let done = bus.drain();
        assert_eq!(done[0].finished_at, 3);
        assert_eq!(done[1].finished_at, 6);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_service_rejected() {
        let mut bus = Arbiter::new(1, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(0), 0, 0);
    }

    #[test]
    fn mean_wait_statistic() {
        let mut bus = Arbiter::new(2, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(0), 10, 0);
        bus.push_request(ProcId::new(1), 10, 0);
        bus.drain();
        assert!((bus.stats().mean_wait() - 5.0).abs() < 1e-12); // (0+10)/2
    }

    #[test]
    fn per_master_statistics() {
        let mut bus = Arbiter::new(2, ArbitrationPolicy::FixedPriority);
        bus.push_request(ProcId::new(0), 10, 0);
        bus.push_request(ProcId::new(1), 4, 0);
        bus.drain();
        let m0 = bus.master_stats(ProcId::new(0));
        let m1 = bus.master_stats(ProcId::new(1));
        assert_eq!(m0.completed, 1);
        assert_eq!(m0.service_cycles, 10);
        assert_eq!(m0.total_wait, 0);
        assert_eq!(m1.service_cycles, 4);
        assert_eq!(m1.total_wait, 10, "waited for master 0");
        assert!((m1.mean_wait() - 10.0).abs() < 1e-12);
    }
}

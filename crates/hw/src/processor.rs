//! The processor model: a MicroBlaze-like in-order core's architectural
//! state and execution bookkeeping.
//!
//! The MicroBlaze is a 32-bit single-issue RISC soft core with 32
//! general-purpose registers plus a handful of special registers (program
//! counter, machine status, exception/interrupt return addresses). A task's
//! *context* is exactly this [`RegisterFile`] plus its stack; the kernel
//! moves both through the shared-memory context vector on every switch
//! (paper §4.2).
//!
//! The model is functional: register contents really round-trip through
//! memory, so the simulators can verify that no context is ever lost or
//! mixed up — a class of kernel bug the type system cannot rule out.
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::processor::{Processor, RegisterFile};
//! use mpdp_core::ids::ProcId;
//!
//! let mut cpu = Processor::new(ProcId::new(0));
//! cpu.registers_mut().write(1, 0xDEAD_BEEF); // r1 = stack pointer
//! let saved = cpu.registers().to_words();
//! let restored = RegisterFile::from_words(&saved);
//! assert_eq!(restored.read(1), 0xDEAD_BEEF);
//! ```

use mpdp_core::ids::ProcId;

/// Number of general-purpose registers (MicroBlaze: r0–r31).
pub const GP_REGISTERS: usize = 32;
/// Special registers saved in a context: PC, MSR, and the two return
/// address registers (R14-like interrupt / R15-like subroutine images kept
/// separately from the GP file on save).
pub const SPECIAL_REGISTERS: usize = 4;
/// Total context words for one register file. Matches
/// [`crate::mem::REGFILE_WORDS`].
pub const CONTEXT_WORDS: usize = GP_REGISTERS + SPECIAL_REGISTERS;

/// The architectural register state of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    /// r0–r31; r0 is hardwired to zero.
    gp: [u32; GP_REGISTERS],
    /// Program counter.
    pub pc: u32,
    /// Machine status register (interrupt-enable bit, carry, ...).
    pub msr: u32,
    /// Interrupt return address.
    pub rip: u32,
    /// Subroutine return address image.
    pub rsub: u32,
}

impl RegisterFile {
    /// A zeroed register file (reset state).
    pub fn new() -> Self {
        RegisterFile {
            gp: [0; GP_REGISTERS],
            pc: 0,
            msr: 0,
            rip: 0,
            rsub: 0,
        }
    }

    /// Reads a general-purpose register. `r0` always reads zero.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn read(&self, index: usize) -> u32 {
        assert!(index < GP_REGISTERS, "register index out of range");
        if index == 0 {
            0
        } else {
            self.gp[index]
        }
    }

    /// Writes a general-purpose register. Writes to `r0` are ignored (it is
    /// hardwired to zero, as on the MicroBlaze).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn write(&mut self, index: usize, value: u32) {
        assert!(index < GP_REGISTERS, "register index out of range");
        if index != 0 {
            self.gp[index] = value;
        }
    }

    /// Serializes the context in the layout the kernel's context vector
    /// uses: r0–r31, then PC, MSR, RIP, RSUB.
    pub fn to_words(&self) -> [u32; CONTEXT_WORDS] {
        let mut out = [0u32; CONTEXT_WORDS];
        out[..GP_REGISTERS].copy_from_slice(&self.gp);
        out[GP_REGISTERS] = self.pc;
        out[GP_REGISTERS + 1] = self.msr;
        out[GP_REGISTERS + 2] = self.rip;
        out[GP_REGISTERS + 3] = self.rsub;
        out
    }

    /// Deserializes a context saved by [`RegisterFile::to_words`].
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than [`CONTEXT_WORDS`].
    pub fn from_words(words: &[u32]) -> Self {
        assert!(
            words.len() >= CONTEXT_WORDS,
            "context image too short: {} words",
            words.len()
        );
        let mut gp = [0u32; GP_REGISTERS];
        gp.copy_from_slice(&words[..GP_REGISTERS]);
        gp[0] = 0; // r0 stays hardwired
        RegisterFile {
            gp,
            pc: words[GP_REGISTERS],
            msr: words[GP_REGISTERS + 1],
            rip: words[GP_REGISTERS + 2],
            rsub: words[GP_REGISTERS + 3],
        }
    }

    /// Fills the file with a deterministic per-job pattern — what a real
    /// task's registers would hold is irrelevant, but *distinctness* is what
    /// context-integrity checks need.
    pub fn stamp(&mut self, seed: u32) {
        for i in 1..GP_REGISTERS {
            self.gp[i] = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u32);
        }
        self.pc = seed ^ 0x5555_0000;
        self.msr = 0x2; // interrupts enabled
        self.rip = seed;
        self.rsub = !seed;
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        RegisterFile::new()
    }
}

/// One modeled core: its id, register file, and retirement counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Processor {
    id: ProcId,
    registers: RegisterFile,
    /// Work cycles retired (task execution only).
    retired: u64,
    /// Cycles lost to memory stalls (as charged by the contention model).
    stalled: u64,
}

impl Processor {
    /// A core in reset state.
    pub fn new(id: ProcId) -> Self {
        Processor {
            id,
            registers: RegisterFile::new(),
            retired: 0,
            stalled: 0,
        }
    }

    /// This core's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The live register file.
    pub fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    /// Mutable access to the register file (context restore).
    pub fn registers_mut(&mut self) -> &mut RegisterFile {
        &mut self.registers
    }

    /// Replaces the register file wholesale (context restore), returning
    /// the previous contents (context save).
    pub fn swap_context(&mut self, incoming: RegisterFile) -> RegisterFile {
        std::mem::replace(&mut self.registers, incoming)
    }

    /// Accounts `work` retired cycles and `stall` stall cycles.
    pub fn retire(&mut self, work: u64, stall: u64) {
        self.retired += work;
        self.stalled += stall;
    }

    /// Work cycles retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Stall cycles accumulated so far.
    pub fn stalled(&self) -> u64 {
        self.stalled
    }

    /// Fraction of elapsed activity lost to stalls.
    pub fn stall_fraction(&self) -> f64 {
        let total = self.retired + self.stalled;
        if total == 0 {
            0.0
        } else {
            self.stalled as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_to_zero() {
        let mut rf = RegisterFile::new();
        rf.write(0, 123);
        assert_eq!(rf.read(0), 0);
        rf.write(5, 123);
        assert_eq!(rf.read(5), 123);
    }

    #[test]
    fn context_round_trips_through_words() {
        let mut rf = RegisterFile::new();
        rf.stamp(42);
        let words = rf.to_words();
        assert_eq!(words.len(), CONTEXT_WORDS);
        let back = RegisterFile::from_words(&words);
        assert_eq!(back, rf);
    }

    #[test]
    fn stamps_are_distinct_per_seed() {
        let mut a = RegisterFile::new();
        let mut b = RegisterFile::new();
        a.stamp(1);
        b.stamp(2);
        assert_ne!(a, b);
        assert_ne!(a.to_words(), b.to_words());
    }

    #[test]
    fn context_words_match_memory_layout_constant() {
        assert_eq!(CONTEXT_WORDS as u32, crate::mem::REGFILE_WORDS);
    }

    #[test]
    fn swap_context_returns_previous_state() {
        let mut cpu = Processor::new(ProcId::new(1));
        cpu.registers_mut().stamp(7);
        let old = cpu.registers().clone();
        let mut incoming = RegisterFile::new();
        incoming.stamp(9);
        let saved = cpu.swap_context(incoming.clone());
        assert_eq!(saved, old);
        assert_eq!(cpu.registers(), &incoming);
    }

    #[test]
    fn retirement_accounting() {
        let mut cpu = Processor::new(ProcId::new(0));
        assert_eq!(cpu.stall_fraction(), 0.0);
        cpu.retire(90, 10);
        assert_eq!(cpu.retired(), 90);
        assert_eq!(cpu.stalled(), 10);
        assert!((cpu.stall_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        RegisterFile::new().read(32);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_context_rejected() {
        RegisterFile::from_words(&[0; 10]);
    }
}

//! # mpdp-hw — behavioural models of the FPGA MPSoC substrate
//!
//! Rust substitutes for the hardware the paper's prototype is built from
//! (Virtex-II PRO @ 50 MHz, Xilinx EDK 8.2): the shared [OPB bus](bus) with a
//! cycle-accurate arbiter and a scalable [analytic contention
//! model](contention), the [memory hierarchy](mem) (local BRAMs, shared DDR
//! with the context vector, boot BRAM), the per-processor [instruction
//! cache](cache), the inter-processor [crossbar](mod@crossbar), the lock/barrier
//! [synchronization engine](sync), and the [system timer](timer).
//!
//! See `DESIGN.md` at the workspace root for the substitution rationale:
//! each model reproduces the *observable timing behaviour* the paper
//! measures, not the RTL.
//!
//! ```
//! use mpdp_hw::bus::{Arbiter, ArbitrationPolicy};
//! use mpdp_hw::contention::ContentionModel;
//! use mpdp_core::ids::ProcId;
//!
//! // Exact, per-transaction:
//! let mut bus = Arbiter::new(2, ArbitrationPolicy::FixedPriority);
//! bus.push_request(ProcId::new(0), 12, 0);
//! assert_eq!(bus.drain().len(), 1);
//!
//! // Scalable, steady-state:
//! let speeds = ContentionModel::new().speeds(&[0.02, 0.02]);
//! assert!(speeds[0] < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod contention;
pub mod crossbar;
pub mod mem;
pub mod processor;
pub mod sync;
pub mod timer;

pub use bus::{Arbiter, ArbitrationPolicy, BusStats, Completion, MasterStats, DDR_SERVICE_CYCLES};
pub use cache::{CacheStats, DirectMappedCache};
pub use contention::ContentionModel;
pub use crossbar::{ChannelFullError, Crossbar};
pub use mem::{Memory, MemoryMap, Region, LOCAL_LATENCY, REGFILE_WORDS, SHARED_LATENCY};
pub use processor::{Processor, RegisterFile};
pub use sync::SyncEngine;
pub use timer::SystemTimer;

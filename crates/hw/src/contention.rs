//! Scalable analytic model of OPB bus contention.
//!
//! The paper's experiments span hundreds of millions of cycles; simulating
//! every transaction through [`crate::bus::Arbiter`] would be exact but far
//! too slow at that scale. This module computes, for a *set of concurrently
//! running tasks*, the steady-state execution speed of each processor — work
//! retired per wall-clock cycle — under the shared bus. The prototype
//! simulator advances in piecewise-constant-rate segments using these speeds,
//! recomputing them whenever the set of running tasks changes.
//!
//! ## Model
//!
//! Task `i` issues `a_i` bus transactions per cycle of useful work
//! ([`MemoryProfile::bus_accesses_per_cycle`]), each with deterministic
//! service `S` (12 cycles for DDR). A task's WCET already budgets the
//! *uncontended* `S` per access (that is how WCETs are measured on the real
//! board); contention adds only the queueing delay `W`. With `x_i` the
//! speed of processor `i` (work cycles per wall cycle):
//!
//! ```text
//! ρ  = Σ_j x_j · a_j · S              (bus utilization)
//! W  = ρ · S / (2 · (1 − ρ))          (M/D/1 queueing delay)
//! x_i = 1 / (1 + a_i · W)             (stall per work cycle)
//! ```
//!
//! solved by damped fixed-point iteration. The system self-limits: as offered
//! load approaches capacity, `W` grows, speeds shrink, and `ρ` stays below 1
//! — the saturation behaviour a real bus exhibits. The model is validated
//! against the cycle-accurate arbiter in this crate's tests.

use crate::bus::DDR_SERVICE_CYCLES;
use mpdp_core::task::MemoryProfile;
use mpdp_core::time::Cycles;

/// Maximum fixed-point iterations; deep saturation converges slowly under
/// damping, and beyond this point the capacity normalization dominates the
/// answer anyway.
const MAX_ITERS: usize = 2_000;
/// Convergence threshold on the per-processor speed estimates.
const EPSILON: f64 = 1e-9;
/// Damping factor for the fixed-point update (guards oscillation near
/// saturation).
const DAMPING: f64 = 0.5;

/// Analytic bus-contention model for one shared bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionModel {
    /// Service cycles per transaction (default: [`DDR_SERVICE_CYCLES`]).
    service: f64,
}

impl ContentionModel {
    /// Model with the platform's DDR service time.
    pub fn new() -> Self {
        ContentionModel {
            service: f64::from(DDR_SERVICE_CYCLES),
        }
    }

    /// Model with a custom per-transaction service time (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `service` is not finite and positive.
    pub fn with_service(service: f64) -> Self {
        assert!(
            service.is_finite() && service > 0.0,
            "service time must be positive, got {service}"
        );
        ContentionModel { service }
    }

    /// Per-transaction service time in cycles.
    pub fn service(&self) -> f64 {
        self.service
    }

    /// Computes the execution speed (work per wall cycle, in `(0, 1]`) of
    /// each processor given the bus-access rate `a_i` of the task it runs.
    ///
    /// Each processor's transactions queue only behind *other* masters'
    /// traffic (a lone master issues one transaction at a time and never
    /// waits), so processor `i` sees the delay `W(ρ_{−i})` where `ρ_{−i}`
    /// excludes its own bus occupancy. After the fixed point converges, the
    /// speeds are capacity-normalized so the implied bus utilization never
    /// exceeds 1 — the approximation can otherwise overshoot capacity by a
    /// few percent under heavy symmetric load.
    ///
    /// An empty slice returns an empty vector; a rate of `0.0` yields speed
    /// `1.0` (a task that never touches the bus is never stalled).
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or not finite.
    pub fn speeds(&self, access_rates: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.speeds_into(access_rates, &mut out);
        out
    }

    /// [`ContentionModel::speeds`] writing into a caller-owned buffer, so a
    /// hot loop recomputing speeds on every scheduling event does not
    /// allocate. `out` is cleared and refilled; the arithmetic sequence is
    /// identical to [`ContentionModel::speeds`] (same fixed point, same
    /// rounding), so results are bit-equal.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or not finite.
    pub fn speeds_into(&self, access_rates: &[f64], out: &mut Vec<f64>) {
        for &a in access_rates {
            assert!(
                a.is_finite() && a >= 0.0,
                "access rate must be non-negative, got {a}"
            );
        }
        out.clear();
        if access_rates.is_empty() {
            return;
        }
        let s = self.service;
        let n = access_rates.len();
        let x = out;
        x.resize(n, 1.0f64);
        // One scratch allocation per *call*; the fixed-point loop itself
        // (up to MAX_ITERS rounds) allocates nothing.
        let mut contrib = vec![0.0f64; n];
        for _ in 0..MAX_ITERS {
            for i in 0..n {
                contrib[i] = x[i] * access_rates[i] * s;
            }
            let rho_total: f64 = contrib.iter().sum();
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let rho_others = (rho_total - contrib[i]).clamp(0.0, 0.999_999);
                let w = self.wait_time(rho_others);
                let target = 1.0 / (1.0 + access_rates[i] * w);
                let damped = x[i] + DAMPING * (target - x[i]);
                max_delta = max_delta.max((damped - x[i]).abs());
                x[i] = damped;
            }
            if max_delta < EPSILON {
                break;
            }
        }
        // Capacity normalization: the bus cannot serve more than one
        // service-cycle per cycle.
        let rho_total: f64 = x.iter().zip(access_rates).map(|(&xi, &a)| xi * a * s).sum();
        if rho_total > 1.0 {
            for xi in x.iter_mut() {
                *xi /= rho_total;
            }
        }
    }

    /// M/D/1 mean queueing delay at utilization `rho`.
    ///
    /// `rho` is clamped at 0.98: each processor has at most one outstanding
    /// transaction (the MicroBlaze stalls on a miss), so the system is
    /// closed and waits stay bounded even past nominal capacity — the open
    /// formula's blow-up near 1 is unphysical here. Deeper saturation is
    /// handled by the capacity normalization in [`ContentionModel::speeds`].
    fn wait_time(&self, rho: f64) -> f64 {
        let rho = rho.clamp(0.0, 0.98);
        rho * self.service / (2.0 * (1.0 - rho))
    }

    /// Converts a [`MemoryProfile`]'s *per-instruction* bus-access rate into
    /// the *per-WCET-cycle* rate this model consumes.
    ///
    /// A profile counts accesses per committed instruction (≈ one base
    /// cycle). A task's WCET, however, already contains the uncontended
    /// service time of each access, so per WCET cycle the access rate is
    /// diluted: `a = r / (1 + r·(S − 1))`. This also guarantees `a·S < 1.1`
    /// for any `r`, keeping inputs physical.
    pub fn rate_for_profile(&self, profile: &MemoryProfile) -> f64 {
        let r = profile.bus_accesses_per_cycle();
        r / (1.0 + r * (self.service - 1.0))
    }

    /// Convenience: speeds for a set of running [`MemoryProfile`]s, using
    /// [`ContentionModel::rate_for_profile`] for each.
    pub fn speeds_for_profiles(&self, profiles: &[&MemoryProfile]) -> Vec<f64> {
        let rates: Vec<f64> = profiles.iter().map(|p| self.rate_for_profile(p)).collect();
        self.speeds(&rates)
    }

    /// The mean per-transaction queueing delay (cycles) at the operating
    /// point the given rates settle into — used to price one-off bus bursts
    /// (context switches, ISR register traffic) under current load.
    pub fn queueing_delay(&self, access_rates: &[f64]) -> f64 {
        let speeds = self.speeds(access_rates);
        let rho: f64 = access_rates
            .iter()
            .zip(&speeds)
            .map(|(&a, &x)| a * x * self.service)
            .sum();
        self.wait_time(rho)
    }

    /// The contention *excess* of a priced kernel burst: how many of its
    /// `priced` wall cycles exceed the uncontended cost of `cpu` execution
    /// cycles plus `bus_words` transactions at the deterministic service
    /// time. Zero when the bus was quiet. The observability layer uses this
    /// to emit bus-stall burst events and attribute them without re-running
    /// the queueing model.
    pub fn burst_excess(&self, priced: Cycles, cpu: u32, bus_words: u32) -> Cycles {
        let base = f64::from(cpu) + f64::from(bus_words) * self.service;
        Cycles::new((priced.as_u64() as f64 - base).max(0.0).round() as u64)
    }

    /// The steady-state bus utilization implied by the returned speeds.
    pub fn utilization(&self, access_rates: &[f64]) -> f64 {
        let speeds = self.speeds(access_rates);
        access_rates
            .iter()
            .zip(&speeds)
            .map(|(&a, &x)| a * x * self.service)
            .sum()
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{Arbiter, ArbitrationPolicy};
    use mpdp_core::ids::ProcId;

    #[test]
    fn lone_processor_runs_at_full_speed() {
        let m = ContentionModel::new();
        let speeds = m.speeds(&[0.05]);
        assert_eq!(speeds.len(), 1);
        assert!((speeds[0] - 1.0).abs() < 0.02, "speed {}", speeds[0]);
    }

    #[test]
    fn zero_rate_never_stalls() {
        let m = ContentionModel::new();
        let speeds = m.speeds(&[0.0, 0.05, 0.05]);
        assert!((speeds[0] - 1.0).abs() < 1e-9);
        assert!(speeds[1] < 1.0);
        assert!(speeds[2] < 1.0);
    }

    #[test]
    fn more_processors_mean_more_stall() {
        let m = ContentionModel::new();
        let s2 = m.speeds(&[0.03; 2])[0];
        let s3 = m.speeds(&[0.03; 3])[0];
        let s4 = m.speeds(&[0.03; 4])[0];
        assert!(s2 > s3 && s3 > s4, "{s2} {s3} {s4}");
    }

    #[test]
    fn saturation_keeps_utilization_below_one() {
        let m = ContentionModel::new();
        // Offered load 8 × 0.05 × 12 = 4.8 ≫ 1: must saturate, not blow up.
        let rates = [0.05; 8];
        let u = m.utilization(&rates);
        assert!(u <= 1.0 + 1e-6, "utilization {u}");
        let speeds = m.speeds(&rates);
        // Symmetric inputs → symmetric speeds summing to ≈ bus capacity.
        let per: f64 = speeds[0];
        assert!(speeds.iter().all(|&x| (x - per).abs() < 1e-9));
        assert!(per < 0.5);
    }

    #[test]
    fn heavier_competitor_slows_you_more() {
        let m = ContentionModel::new();
        let vs_light = m.speeds(&[0.02, 0.01])[0];
        let vs_heavy = m.speeds(&[0.02, 0.06])[0];
        assert!(vs_light > vs_heavy, "{vs_light} vs {vs_heavy}");
    }

    #[test]
    fn profile_rate_conversion_is_physical() {
        let m = ContentionModel::new();
        for profile in [
            MemoryProfile::compute_bound(),
            MemoryProfile::balanced(),
            MemoryProfile::memory_bound(),
        ] {
            let a = m.rate_for_profile(&profile);
            assert!(a * m.service() < 1.1, "occupancy {}", a * m.service());
            assert!(a <= profile.bus_accesses_per_cycle());
        }
    }

    /// Drive the cycle-accurate arbiter with processors that issue a
    /// deterministic transaction stream and compare measured speed with the
    /// analytic prediction.
    fn measured_speeds(rates: &[f64], cycles: u64) -> Vec<f64> {
        let n = rates.len();
        let mut bus = Arbiter::new(n, ArbitrationPolicy::RoundRobin);
        // Per-processor state: work done, credit toward next access, stalled?
        let mut work = vec![0u64; n];
        let mut credit = vec![0f64; n];
        let mut stalled = vec![false; n];
        for _ in 0..cycles {
            for p in 0..n {
                if stalled[p] {
                    continue;
                }
                work[p] += 1;
                credit[p] += rates[p];
                if credit[p] >= 1.0 {
                    credit[p] -= 1.0;
                    // The uncontended service is already budgeted inside the
                    // task's work, so the processor only blocks for the
                    // *queueing* part. We model that by stalling the
                    // processor for the transaction's wait time: issue now,
                    // resume when granted (service overlaps with budgeted
                    // work).
                    bus.push_request(ProcId::new(p as u32), 12, p as u64);
                    stalled[p] = true;
                }
            }
            if let Some(c) = bus.step() {
                stalled[c.master.index()] = false;
                // The service time was budgeted inside the task's WCET, so it
                // counts as retired work; only the queueing wait is lost.
                work[c.master.index()] += 12;
            }
        }
        work.iter().map(|&w| w as f64 / cycles as f64).collect()
    }

    #[test]
    fn analytic_model_tracks_arbiter_qualitatively() {
        // Exact agreement is not expected (deterministic arrivals vs M/D/1),
        // but ordering and rough magnitude must match.
        let rates = [0.02, 0.02, 0.02];
        let analytic = ContentionModel::new().speeds(&rates);
        let measured = measured_speeds(&rates, 200_000);
        for (a, m) in analytic.iter().zip(&measured) {
            assert!(
                (a - m).abs() < 0.25,
                "analytic {a} vs measured {m} diverge too far"
            );
        }
    }

    #[test]
    fn burst_excess_is_the_queueing_part() {
        let m = ContentionModel::with_service(12.0);
        // Uncontended burst: 100 cpu + 10 words × 12 = 220 cycles.
        assert_eq!(m.burst_excess(Cycles::new(220), 100, 10), Cycles::ZERO);
        // 80 cycles of queueing on top.
        assert_eq!(m.burst_excess(Cycles::new(300), 100, 10), Cycles::new(80));
        // Never negative, even if pricing rounded below base.
        assert_eq!(m.burst_excess(Cycles::new(219), 100, 10), Cycles::ZERO);
    }

    #[test]
    fn speeds_monotone_in_service_time() {
        let fast = ContentionModel::with_service(4.0).speeds(&[0.05; 3]);
        let slow = ContentionModel::with_service(24.0).speeds(&[0.05; 3]);
        assert!(fast[0] > slow[0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        ContentionModel::new().speeds(&[-0.1]);
    }

    #[test]
    fn empty_input() {
        assert!(ContentionModel::new().speeds(&[]).is_empty());
    }
}

//! The inter-processor crossbar (paper §3.1: "a Cross-Bar module that allows
//! inter-processor communication for small data passing without using the
//! shared bus").
//!
//! The crossbar provides one bounded FIFO channel per ordered processor pair.
//! The microkernel uses it for small scheduler messages (e.g. the id of the
//! task a processor must switch to), keeping that traffic off the OPB.
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::crossbar::Crossbar;
//! use mpdp_core::ids::ProcId;
//!
//! let mut xbar = Crossbar::new(2, 4);
//! xbar.send(ProcId::new(0), ProcId::new(1), 0xCAFE).unwrap();
//! assert_eq!(xbar.recv(ProcId::new(1), ProcId::new(0)), Some(0xCAFE));
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use mpdp_core::ids::ProcId;

/// Cycles charged for one crossbar send or receive (register access).
pub const XBAR_ACCESS_CYCLES: u32 = 2;

/// Error returned when a crossbar channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFullError {
    /// Sending processor.
    pub from: ProcId,
    /// Receiving processor.
    pub to: ProcId,
}

impl fmt::Display for ChannelFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crossbar channel {} -> {} is full", self.from, self.to)
    }
}

impl Error for ChannelFullError {}

/// An N×N crossbar of bounded word FIFOs.
#[derive(Debug, Clone)]
pub struct Crossbar {
    n: usize,
    capacity: usize,
    /// Channel `from * n + to`.
    channels: Vec<VecDeque<u32>>,
    sent: u64,
    received: u64,
}

impl Crossbar {
    /// Creates a crossbar for `n_procs` processors with per-channel FIFO
    /// depth `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` or `capacity` is zero.
    pub fn new(n_procs: usize, capacity: usize) -> Self {
        assert!(n_procs > 0, "at least one processor");
        assert!(capacity > 0, "channels need capacity");
        Crossbar {
            n: n_procs,
            capacity,
            channels: vec![VecDeque::new(); n_procs * n_procs],
            sent: 0,
            received: 0,
        }
    }

    fn channel_index(&self, from: ProcId, to: ProcId) -> usize {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "processor out of range"
        );
        from.index() * self.n + to.index()
    }

    /// Sends one word from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelFullError`] when the FIFO is at capacity (the sender
    /// must retry, as on the real device).
    pub fn send(&mut self, from: ProcId, to: ProcId, word: u32) -> Result<(), ChannelFullError> {
        let idx = self.channel_index(from, to);
        if self.channels[idx].len() >= self.capacity {
            return Err(ChannelFullError { from, to });
        }
        self.channels[idx].push_back(word);
        self.sent += 1;
        Ok(())
    }

    /// Receives the oldest word sent from `from` to `to`, if any.
    pub fn recv(&mut self, to: ProcId, from: ProcId) -> Option<u32> {
        let idx = self.channel_index(from, to);
        let w = self.channels[idx].pop_front();
        if w.is_some() {
            self.received += 1;
        }
        w
    }

    /// Words currently queued from `from` to `to`.
    pub fn depth(&self, from: ProcId, to: ProcId) -> usize {
        self.channels[self.channel_index(from, to)].len()
    }

    /// Total words sent since creation.
    pub fn total_sent(&self) -> u64 {
        self.sent
    }

    /// Total words received since creation.
    pub fn total_received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_fifo_order() {
        let mut x = Crossbar::new(3, 8);
        x.send(ProcId::new(0), ProcId::new(2), 1).unwrap();
        x.send(ProcId::new(0), ProcId::new(2), 2).unwrap();
        assert_eq!(x.recv(ProcId::new(2), ProcId::new(0)), Some(1));
        assert_eq!(x.recv(ProcId::new(2), ProcId::new(0)), Some(2));
        assert_eq!(x.recv(ProcId::new(2), ProcId::new(0)), None);
    }

    #[test]
    fn channels_are_independent() {
        let mut x = Crossbar::new(2, 1);
        x.send(ProcId::new(0), ProcId::new(1), 10).unwrap();
        x.send(ProcId::new(1), ProcId::new(0), 20).unwrap();
        // Reverse direction is a different channel; both hold one word.
        assert_eq!(x.depth(ProcId::new(0), ProcId::new(1)), 1);
        assert_eq!(x.depth(ProcId::new(1), ProcId::new(0)), 1);
        assert_eq!(x.recv(ProcId::new(0), ProcId::new(1)), Some(20));
    }

    #[test]
    fn backpressure_when_full() {
        let mut x = Crossbar::new(2, 2);
        x.send(ProcId::new(0), ProcId::new(1), 1).unwrap();
        x.send(ProcId::new(0), ProcId::new(1), 2).unwrap();
        let err = x.send(ProcId::new(0), ProcId::new(1), 3).unwrap_err();
        assert_eq!(err.from, ProcId::new(0));
        assert_eq!(format!("{err}"), "crossbar channel P0 -> P1 is full");
        // Draining one slot unblocks the sender.
        x.recv(ProcId::new(1), ProcId::new(0));
        assert!(x.send(ProcId::new(0), ProcId::new(1), 3).is_ok());
    }

    #[test]
    fn counters() {
        let mut x = Crossbar::new(2, 4);
        x.send(ProcId::new(0), ProcId::new(1), 1).unwrap();
        x.send(ProcId::new(0), ProcId::new(1), 2).unwrap();
        x.recv(ProcId::new(1), ProcId::new(0));
        assert_eq!(x.total_sent(), 2);
        assert_eq!(x.total_received(), 1);
    }

    #[test]
    fn loopback_allowed() {
        let mut x = Crossbar::new(1, 4);
        x.send(ProcId::new(0), ProcId::new(0), 5).unwrap();
        assert_eq!(x.recv(ProcId::new(0), ProcId::new(0)), Some(5));
    }
}

//! The Synchronization Engine (paper §3.1: "an ad-hoc coprocessor
//! (Synchronization Engine) that provides hardware support for lock and
//! barrier synchronization primitives").
//!
//! The engine exposes a bank of hardware locks (test-and-set semantics with
//! a waiting list served in request order) and a bank of barriers. The
//! microkernel uses lock 0 to serialize access to the interrupt controller
//! and scheduler data structures — the paper notes that "controller
//! management is sequential, but the execution of the interrupt handlers is
//! parallel", which is exactly what a lock around register access gives.
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::sync::SyncEngine;
//! use mpdp_core::ids::ProcId;
//!
//! let mut engine = SyncEngine::new(4, 2, 2);
//! assert!(engine.try_lock(0, ProcId::new(0)));
//! assert!(!engine.try_lock(0, ProcId::new(1))); // queued
//! assert_eq!(engine.unlock(0, ProcId::new(0)), Some(ProcId::new(1)));
//! ```

use std::collections::VecDeque;

use mpdp_core::ids::ProcId;

/// Cycles charged for one lock/unlock/barrier register access.
pub const SYNC_ACCESS_CYCLES: u32 = 3;

/// State of one hardware lock.
#[derive(Debug, Clone, Default)]
struct Lock {
    owner: Option<ProcId>,
    waiters: VecDeque<ProcId>,
}

/// State of one hardware barrier.
#[derive(Debug, Clone, Default)]
struct Barrier {
    arrived: Vec<ProcId>,
}

/// The lock/barrier coprocessor.
#[derive(Debug, Clone)]
pub struct SyncEngine {
    n_procs: usize,
    locks: Vec<Lock>,
    barriers: Vec<Barrier>,
    contended_acquires: u64,
}

impl SyncEngine {
    /// Creates an engine for `n_procs` processors with `n_locks` locks and
    /// `n_barriers` barriers.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero.
    pub fn new(n_procs: usize, n_locks: usize, n_barriers: usize) -> Self {
        assert!(n_procs > 0, "at least one processor");
        SyncEngine {
            n_procs,
            locks: vec![Lock::default(); n_locks],
            barriers: vec![Barrier::default(); n_barriers],
            contended_acquires: 0,
        }
    }

    /// Attempts to acquire lock `id` for `proc`. Returns `true` on success;
    /// on failure the processor is queued and will be handed the lock by a
    /// future [`SyncEngine::unlock`].
    ///
    /// Re-acquiring a lock already held by `proc` returns `true` (the
    /// hardware register read is idempotent for the owner).
    ///
    /// # Panics
    ///
    /// Panics if `id` or `proc` is out of range.
    pub fn try_lock(&mut self, id: usize, proc: ProcId) -> bool {
        assert!(proc.index() < self.n_procs, "processor out of range");
        let lock = &mut self.locks[id];
        match lock.owner {
            None => {
                lock.owner = Some(proc);
                true
            }
            Some(owner) if owner == proc => true,
            Some(_) => {
                if !lock.waiters.contains(&proc) {
                    lock.waiters.push_back(proc);
                }
                self.contended_acquires += 1;
                false
            }
        }
    }

    /// Releases lock `id`; if processors are waiting, ownership passes to
    /// the oldest waiter, whose id is returned (the engine raises its grant
    /// line, which the kernel observes by polling).
    ///
    /// # Panics
    ///
    /// Panics if `proc` does not own the lock.
    pub fn unlock(&mut self, id: usize, proc: ProcId) -> Option<ProcId> {
        let lock = &mut self.locks[id];
        assert_eq!(
            lock.owner,
            Some(proc),
            "unlock by non-owner {proc} on lock {id}"
        );
        lock.owner = lock.waiters.pop_front();
        lock.owner
    }

    /// Current owner of lock `id`.
    pub fn owner(&self, id: usize) -> Option<ProcId> {
        self.locks[id].owner
    }

    /// Number of processors queued on lock `id`.
    pub fn waiters(&self, id: usize) -> usize {
        self.locks[id].waiters.len()
    }

    /// Count of lock acquisitions that found the lock taken.
    pub fn contended_acquires(&self) -> u64 {
        self.contended_acquires
    }

    /// Signals that `proc` arrived at barrier `id` expecting `parties`
    /// participants. Returns `true` for every caller once all parties have
    /// arrived (the barrier then resets).
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero or exceeds the processor count, or if
    /// `proc` arrives twice in the same round.
    pub fn barrier_arrive(&mut self, id: usize, proc: ProcId, parties: usize) -> bool {
        assert!(
            parties > 0 && parties <= self.n_procs,
            "parties must be in 1..=n_procs"
        );
        let barrier = &mut self.barriers[id];
        assert!(
            !barrier.arrived.contains(&proc),
            "{proc} arrived twice at barrier {id}"
        );
        barrier.arrived.push(proc);
        if barrier.arrived.len() == parties {
            barrier.arrived.clear();
            true
        } else {
            false
        }
    }

    /// Processors currently waiting at barrier `id`.
    pub fn barrier_waiting(&self, id: usize) -> usize {
        self.barriers[id].arrived.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_hands_off_in_fifo_order() {
        let mut e = SyncEngine::new(3, 1, 0);
        assert!(e.try_lock(0, ProcId::new(0)));
        assert!(!e.try_lock(0, ProcId::new(1)));
        assert!(!e.try_lock(0, ProcId::new(2)));
        assert_eq!(e.waiters(0), 2);
        assert_eq!(e.unlock(0, ProcId::new(0)), Some(ProcId::new(1)));
        assert_eq!(e.owner(0), Some(ProcId::new(1)));
        assert_eq!(e.unlock(0, ProcId::new(1)), Some(ProcId::new(2)));
        assert_eq!(e.unlock(0, ProcId::new(2)), None);
        assert_eq!(e.contended_acquires(), 2);
    }

    #[test]
    fn reacquire_by_owner_is_idempotent() {
        let mut e = SyncEngine::new(2, 1, 0);
        assert!(e.try_lock(0, ProcId::new(0)));
        assert!(e.try_lock(0, ProcId::new(0)));
        assert_eq!(e.waiters(0), 0);
    }

    #[test]
    fn duplicate_waiter_not_queued_twice() {
        let mut e = SyncEngine::new(2, 1, 0);
        e.try_lock(0, ProcId::new(0));
        e.try_lock(0, ProcId::new(1));
        e.try_lock(0, ProcId::new(1));
        assert_eq!(e.waiters(0), 1);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn unlock_by_non_owner_panics() {
        let mut e = SyncEngine::new(2, 1, 0);
        e.try_lock(0, ProcId::new(0));
        e.unlock(0, ProcId::new(1));
    }

    #[test]
    fn barrier_releases_all_at_once() {
        let mut e = SyncEngine::new(3, 0, 1);
        assert!(!e.barrier_arrive(0, ProcId::new(0), 3));
        assert!(!e.barrier_arrive(0, ProcId::new(1), 3));
        assert_eq!(e.barrier_waiting(0), 2);
        assert!(e.barrier_arrive(0, ProcId::new(2), 3));
        // Barrier reset: reusable for the next round.
        assert_eq!(e.barrier_waiting(0), 0);
        assert!(!e.barrier_arrive(0, ProcId::new(0), 2));
        assert!(e.barrier_arrive(0, ProcId::new(1), 2));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut e = SyncEngine::new(2, 0, 1);
        e.barrier_arrive(0, ProcId::new(0), 2);
        e.barrier_arrive(0, ProcId::new(0), 2);
    }
}

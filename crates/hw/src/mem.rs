//! The memory hierarchy of the prototype (paper §3.1).
//!
//! Each processor owns a **local BRAM** for private data (the stack and heap
//! of the executing thread, 1-cycle access). A **shared DDR** holds
//! instructions, shared data, and the *context vector* — one save slot per
//! task, written and read through the OPB bus on every context switch
//! (12-cycle transactions). A small **boot BRAM** on the OPB holds the boot
//! code.
//!
//! The model is functional (words can actually be stored and read back —
//! the kernel uses this for context save/restore) and carries the latency
//! metadata the simulators charge for each access.
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::mem::{MemoryMap, Region};
//! use mpdp_core::ids::ProcId;
//!
//! let map = MemoryMap::new(2, 8);
//! assert_eq!(map.latency(Region::LocalBram(ProcId::new(0))), 1);
//! assert_eq!(map.latency(Region::SharedDdr), 12);
//! ```

use mpdp_core::ids::ProcId;

/// Uncontended access latency of a local BRAM, in cycles.
pub const LOCAL_LATENCY: u32 = 1;
/// Uncontended access latency of the shared DDR over the OPB, in cycles
/// (paper: 12, reduced to 1 on instruction-cache hit).
pub const SHARED_LATENCY: u32 = 12;
/// Uncontended access latency of the boot BRAM on the OPB, in cycles.
pub const BOOT_LATENCY: u32 = 2;

/// Default local BRAM size per processor, in 32-bit words (16 KiB).
pub const LOCAL_WORDS: usize = 4096;
/// Default boot BRAM size, in 32-bit words (4 KiB).
pub const BOOT_WORDS: usize = 1024;
/// Words reserved per task in the context vector: 32 general-purpose
/// registers plus machine status and return registers of the MicroBlaze.
pub const REGFILE_WORDS: u32 = 36;

/// One region of the system memory map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// A processor's private BRAM.
    LocalBram(ProcId),
    /// The shared external DDR.
    SharedDdr,
    /// The shared boot BRAM on the OPB.
    BootBram,
}

/// A functional word-addressed memory with a fixed size.
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<u32>,
}

impl Memory {
    /// Allocates a zeroed memory of `size` 32-bit words.
    pub fn new(size: usize) -> Self {
        Memory {
            words: vec![0; size],
        }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn read(&self, addr: usize) -> u32 {
        self.words[addr]
    }

    /// Writes one word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    pub fn write(&mut self, addr: usize, value: u32) {
        self.words[addr] = value;
    }

    /// Copies `src` into memory starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not fit.
    pub fn write_block(&mut self, addr: usize, src: &[u32]) {
        self.words[addr..addr + src.len()].copy_from_slice(src);
    }

    /// Reads `len` words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_block(&self, addr: usize, len: usize) -> &[u32] {
        &self.words[addr..addr + len]
    }
}

/// The full platform memory system: per-processor local BRAMs, the shared
/// DDR with its context-vector layout, and the boot BRAM.
#[derive(Debug, Clone)]
pub struct MemoryMap {
    locals: Vec<Memory>,
    shared: Memory,
    boot: Memory,
    /// Per-task context slot size in words (registers + largest stack).
    context_slot_words: u32,
    n_tasks: usize,
}

impl MemoryMap {
    /// Builds the memory system for `n_procs` processors and a context
    /// vector with `n_tasks` save slots sized for the default stack.
    pub fn new(n_procs: usize, n_tasks: usize) -> Self {
        Self::with_context_slot(
            n_procs,
            n_tasks,
            REGFILE_WORDS + mpdp_core::task::DEFAULT_STACK_WORDS,
        )
    }

    /// Builds the memory system with an explicit per-task context slot size.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is zero or the slot size is zero.
    pub fn with_context_slot(n_procs: usize, n_tasks: usize, context_slot_words: u32) -> Self {
        assert!(n_procs > 0, "at least one processor");
        assert!(context_slot_words > 0, "context slot must be non-empty");
        let shared_words = 16_384 + n_tasks * context_slot_words as usize;
        MemoryMap {
            locals: (0..n_procs).map(|_| Memory::new(LOCAL_WORDS)).collect(),
            shared: Memory::new(shared_words),
            boot: Memory::new(BOOT_WORDS),
            context_slot_words,
            n_tasks,
        }
    }

    /// Number of processors (local BRAMs).
    pub fn n_procs(&self) -> usize {
        self.locals.len()
    }

    /// Uncontended latency of an access to `region`, in cycles.
    pub fn latency(&self, region: Region) -> u32 {
        match region {
            Region::LocalBram(_) => LOCAL_LATENCY,
            Region::SharedDdr => SHARED_LATENCY,
            Region::BootBram => BOOT_LATENCY,
        }
    }

    /// Whether an access to `region` crosses the shared OPB bus.
    pub fn is_bus_access(&self, region: Region) -> bool {
        !matches!(region, Region::LocalBram(_))
    }

    /// The processor-local BRAM.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn local(&self, proc: ProcId) -> &Memory {
        &self.locals[proc.index()]
    }

    /// Mutable access to a processor-local BRAM.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn local_mut(&mut self, proc: ProcId) -> &mut Memory {
        &mut self.locals[proc.index()]
    }

    /// The shared DDR.
    pub fn shared(&self) -> &Memory {
        &self.shared
    }

    /// Mutable access to the shared DDR.
    pub fn shared_mut(&mut self) -> &mut Memory {
        &mut self.shared
    }

    /// The boot BRAM.
    pub fn boot(&self) -> &Memory {
        &self.boot
    }

    /// Word offset of task `slot`'s save area inside the shared DDR context
    /// vector ("the contexts are saved in shared memory, stored in a vector
    /// that contains a location for each task runnable in the system").
    ///
    /// # Panics
    ///
    /// Panics if `slot >= n_tasks`.
    pub fn context_slot_addr(&self, slot: usize) -> usize {
        assert!(slot < self.n_tasks, "context slot {slot} out of range");
        16_384 + slot * self.context_slot_words as usize
    }

    /// Per-task context slot size in words.
    pub fn context_slot_words(&self) -> u32 {
        self.context_slot_words
    }

    /// Number of context slots.
    pub fn n_context_slots(&self) -> usize {
        self.n_tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_paper() {
        let map = MemoryMap::new(2, 4);
        assert_eq!(map.latency(Region::LocalBram(ProcId::new(0))), 1);
        assert_eq!(map.latency(Region::SharedDdr), 12);
        assert!(!map.is_bus_access(Region::LocalBram(ProcId::new(1))));
        assert!(map.is_bus_access(Region::SharedDdr));
        assert!(map.is_bus_access(Region::BootBram));
    }

    #[test]
    fn functional_read_write() {
        let mut map = MemoryMap::new(2, 4);
        map.local_mut(ProcId::new(0)).write(10, 0xDEAD_BEEF);
        assert_eq!(map.local(ProcId::new(0)).read(10), 0xDEAD_BEEF);
        // Locals are private: the other BRAM is untouched.
        assert_eq!(map.local(ProcId::new(1)).read(10), 0);
        map.shared_mut().write(0, 42);
        assert_eq!(map.shared().read(0), 42);
    }

    #[test]
    fn block_transfers() {
        let mut mem = Memory::new(16);
        mem.write_block(4, &[1, 2, 3]);
        assert_eq!(mem.read_block(4, 3), &[1, 2, 3]);
        assert_eq!(mem.read(3), 0);
        assert_eq!(mem.read(7), 0);
    }

    #[test]
    fn context_vector_layout_is_disjoint() {
        let map = MemoryMap::new(2, 4);
        let slot = map.context_slot_words() as usize;
        for i in 0..3 {
            assert_eq!(
                map.context_slot_addr(i + 1) - map.context_slot_addr(i),
                slot
            );
        }
        // Slots fit inside the shared DDR.
        let last = map.context_slot_addr(3) + slot;
        assert!(last <= map.shared().len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn context_slot_bounds_checked() {
        MemoryMap::new(1, 2).context_slot_addr(2);
    }

    #[test]
    fn context_roundtrip_through_shared_memory() {
        let mut map = MemoryMap::new(1, 2);
        let ctx: Vec<u32> = (0..36).collect();
        let addr = map.context_slot_addr(1);
        map.shared_mut().write_block(addr, &ctx);
        assert_eq!(map.shared().read_block(addr, 36), &ctx[..]);
    }
}

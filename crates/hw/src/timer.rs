//! The system timer that paces the scheduler.
//!
//! The paper: "It forwards the signal triggered by the system timer, that
//! determines the scheduling period and starts the scheduling cycle, to an
//! available processor" and "Scheduling phase is triggered each 0.1 seconds
//! by the system timer."
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::timer::SystemTimer;
//! use mpdp_core::time::{Cycles, DEFAULT_TICK};
//!
//! let mut timer = SystemTimer::new(DEFAULT_TICK);
//! assert_eq!(timer.next_fire(), Cycles::ZERO); // fires at t = 0
//! timer.acknowledge();
//! assert_eq!(timer.next_fire(), DEFAULT_TICK);
//! ```

use mpdp_core::time::Cycles;

/// A free-running periodic timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemTimer {
    period: Cycles,
    next_fire: Cycles,
    fired: u64,
}

impl SystemTimer {
    /// Creates a timer with the given period; the first tick fires at time
    /// zero (the boot scheduling cycle).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: Cycles) -> Self {
        assert!(!period.is_zero(), "timer period must be non-zero");
        SystemTimer {
            period,
            next_fire: Cycles::ZERO,
            fired: 0,
        }
    }

    /// The timer period.
    pub fn period(&self) -> Cycles {
        self.period
    }

    /// The instant of the next pending tick.
    pub fn next_fire(&self) -> Cycles {
        self.next_fire
    }

    /// Number of ticks acknowledged so far.
    pub fn ticks(&self) -> u64 {
        self.fired
    }

    /// Whether a tick is due at or before `now`.
    pub fn is_due(&self, now: Cycles) -> bool {
        self.next_fire <= now
    }

    /// Acknowledges the pending tick, arming the next one.
    pub fn acknowledge(&mut self) {
        self.fired += 1;
        self.next_fire += self.period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_periodically_from_zero() {
        let mut t = SystemTimer::new(Cycles::new(100));
        assert!(t.is_due(Cycles::ZERO));
        t.acknowledge();
        assert!(!t.is_due(Cycles::new(99)));
        assert!(t.is_due(Cycles::new(100)));
        t.acknowledge();
        assert_eq!(t.next_fire(), Cycles::new(200));
        assert_eq!(t.ticks(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        SystemTimer::new(Cycles::ZERO);
    }
}

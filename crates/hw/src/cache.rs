//! Per-processor instruction cache (paper §3.1: "Instruction cache is
//! implemented for each processor, bringing down access latency from 12 to 1
//! clock cycle in case of hit").
//!
//! A true direct-mapped cache simulator is provided for trace-driven studies
//! and for calibrating the per-task hit rates used by the fluid execution
//! model ([`crate::contention`]).
//!
//! # Examples
//!
//! ```
//! use mpdp_hw::cache::DirectMappedCache;
//!
//! let mut cache = DirectMappedCache::new(256, 8); // 256 lines × 8 words
//! assert!(!cache.access(0x100));                  // cold miss
//! assert!(cache.access(0x101));                   // same line: hit
//! assert!(cache.stats().hit_rate() > 0.0);
//! ```

/// Cache access statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; `1.0` when no access has been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A direct-mapped cache over word addresses.
#[derive(Debug, Clone)]
pub struct DirectMappedCache {
    /// One optional tag per line.
    tags: Vec<Option<u64>>,
    line_words: usize,
    stats: CacheStats,
}

impl DirectMappedCache {
    /// Creates a cache with `lines` lines of `line_words` words each.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `line_words` is zero, or if either is not a
    /// power of two (address decoding uses shifts and masks, as in hardware).
    pub fn new(lines: usize, line_words: usize) -> Self {
        assert!(
            lines > 0 && lines.is_power_of_two(),
            "lines must be a power of two"
        );
        assert!(
            line_words > 0 && line_words.is_power_of_two(),
            "line size must be a power of two"
        );
        DirectMappedCache {
            tags: vec![None; lines],
            line_words,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.tags.len() * self.line_words
    }

    /// Performs one access; returns `true` on a hit and updates the line on
    /// a miss (allocate-on-miss, as the MicroBlaze I-cache does).
    pub fn access(&mut self, word_addr: u64) -> bool {
        let line_addr = word_addr / self.line_words as u64;
        let index = (line_addr % self.tags.len() as u64) as usize;
        let tag = line_addr / self.tags.len() as u64;
        if self.tags[index] == Some(tag) {
            self.stats.hits += 1;
            true
        } else {
            self.tags[index] = Some(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Invalidates every line (e.g. after loading new code).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Runs an address trace through the cache and returns the hit rate —
    /// the calibration entry point for per-task
    /// [`mpdp_core::task::MemoryProfile`] hit rates.
    pub fn hit_rate_of_trace(&mut self, trace: impl IntoIterator<Item = u64>) -> f64 {
        self.flush();
        self.reset_stats();
        for addr in trace {
            self.access(addr);
        }
        self.stats.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = DirectMappedCache::new(4, 4);
        assert!(!c.access(0));
        assert!(c.access(1));
        assert!(c.access(3));
        assert!(!c.access(4)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflict_misses_on_aliasing_lines() {
        let mut c = DirectMappedCache::new(4, 1);
        assert!(!c.access(0));
        assert!(!c.access(4)); // same index, different tag: evicts
        assert!(!c.access(0)); // miss again
    }

    #[test]
    fn small_loop_fits_and_hits() {
        let mut c = DirectMappedCache::new(64, 8);
        // A 100-word loop body executed 100 times.
        let trace = (0..100u64).cycle().take(10_000);
        let rate = c.hit_rate_of_trace(trace);
        assert!(rate > 0.99, "tight loop should be ≈ all hits, got {rate}");
    }

    #[test]
    fn streaming_trace_mostly_misses() {
        let mut c = DirectMappedCache::new(64, 8);
        let rate = c.hit_rate_of_trace((0..100_000u64).map(|i| i * 8));
        assert!(rate < 0.01, "line-stride streaming should miss, got {rate}");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = DirectMappedCache::new(4, 4);
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn empty_trace_reports_full_hit_rate() {
        let mut c = DirectMappedCache::new(4, 4);
        assert!((c.hit_rate_of_trace(std::iter::empty()) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        DirectMappedCache::new(3, 4);
    }
}

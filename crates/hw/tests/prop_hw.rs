//! Property tests for the hardware models: the analytic contention model
//! against the cycle-accurate arbiter, arbiter conservation laws, and cache
//! behaviour.

use proptest::prelude::*;

use mpdp_core::ids::ProcId;
use mpdp_hw::bus::{Arbiter, ArbitrationPolicy};
use mpdp_hw::cache::DirectMappedCache;
use mpdp_hw::contention::ContentionModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Speeds are in (0, 1], symmetric inputs give symmetric outputs, and
    /// utilization never exceeds capacity.
    #[test]
    fn contention_speeds_are_physical(rates in prop::collection::vec(0.0f64..0.08, 1..8)) {
        let model = ContentionModel::new();
        let speeds = model.speeds(&rates);
        prop_assert_eq!(speeds.len(), rates.len());
        for (&a, &x) in rates.iter().zip(&speeds) {
            prop_assert!(x > 0.0 && x <= 1.0, "speed {x} out of range");
            if a == 0.0 {
                prop_assert!((x - 1.0).abs() < 1e-9, "zero-rate task stalled");
            }
        }
        prop_assert!(model.utilization(&rates) <= 1.0 + 1e-6);
    }

    /// Adding a competitor never speeds anyone up — in the sub-capacity
    /// regime. (Past saturation the capacity normalization redistributes
    /// bandwidth and per-processor monotonicity is not guaranteed.)
    #[test]
    fn contention_is_monotone_in_load(
        rates in prop::collection::vec(0.001f64..0.05, 1..5),
        extra in 0.001f64..0.05,
    ) {
        let model = ContentionModel::new();
        let offered: f64 = rates.iter().chain([&extra]).map(|a| a * model.service()).sum();
        prop_assume!(offered < 0.9);
        let before = model.speeds(&rates);
        let mut more = rates.clone();
        more.push(extra);
        let after = model.speeds(&more);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a <= &(b + 1e-9), "adding load sped someone up: {b} -> {a}");
        }
    }

    /// The arbiter conserves work: total busy cycles equal total requested
    /// service, and every transaction completes exactly once.
    #[test]
    fn arbiter_conserves_work(
        requests in prop::collection::vec((0u32..4, 1u32..20), 1..40),
        round_robin in any::<bool>(),
    ) {
        let policy = if round_robin {
            ArbitrationPolicy::RoundRobin
        } else {
            ArbitrationPolicy::FixedPriority
        };
        let mut bus = Arbiter::new(4, policy);
        let mut total: u64 = 0;
        for (i, &(m, s)) in requests.iter().enumerate() {
            bus.push_request(ProcId::new(m), s, i as u64);
            total += u64::from(s);
        }
        let done = bus.drain();
        prop_assert_eq!(done.len(), requests.len());
        prop_assert_eq!(bus.stats().busy_cycles, total);
        // Tags are a permutation of the inputs.
        let mut tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        prop_assert_eq!(tags, (0..requests.len() as u64).collect::<Vec<_>>());
        // Waits are consistent: finish = issue + service + wait.
        for c in &done {
            let (_, s) = requests[c.tag as usize];
            prop_assert_eq!(c.finished_at, c.issued_at + u64::from(s) + c.waited);
        }
    }

    /// Per-master FIFO: a master's own transactions complete in issue order.
    #[test]
    fn arbiter_is_fifo_per_master(requests in prop::collection::vec((0u32..3, 1u32..10), 1..30)) {
        let mut bus = Arbiter::new(3, ArbitrationPolicy::RoundRobin);
        for (i, &(m, s)) in requests.iter().enumerate() {
            bus.push_request(ProcId::new(m), s, i as u64);
        }
        let done = bus.drain();
        for m in 0..3u32 {
            let finished: Vec<u64> = done
                .iter()
                .filter(|c| c.master == ProcId::new(m))
                .map(|c| c.tag)
                .collect();
            let mut sorted = finished.clone();
            sorted.sort_unstable();
            prop_assert_eq!(finished, sorted, "master {} reordered its transactions", m);
        }
    }

    /// The analytic model brackets the arbiter measurement on symmetric
    /// workloads in the light-load regime (the validation DESIGN.md
    /// promises). At heavy load the arbiter microsim is a *closed* system
    /// (one outstanding transaction per master) whose waits stay small,
    /// while the analytic model deliberately keeps the open-system
    /// saturation behaviour that reproduces the paper's 3P≈4P flattening.
    #[test]
    fn analytic_model_brackets_arbiter(n in 2usize..5, rate in 0.004f64..0.02) {
        let rates = vec![rate; n];
        let analytic = ContentionModel::new().speeds(&rates)[0];

        // Drive the arbiter: each master issues a 12-cycle transaction every
        // 1/rate work cycles and stalls only for the queueing wait.
        let mut bus = Arbiter::new(n, ArbitrationPolicy::RoundRobin);
        let cycles = 120_000u64;
        let mut work = vec![0u64; n];
        let mut credit = vec![0f64; n];
        let mut stalled = vec![false; n];
        for _ in 0..cycles {
            for p in 0..n {
                if stalled[p] {
                    continue;
                }
                work[p] += 1;
                credit[p] += rate;
                if credit[p] >= 1.0 {
                    credit[p] -= 1.0;
                    bus.push_request(ProcId::new(p as u32), 12, p as u64);
                    stalled[p] = true;
                }
            }
            if let Some(c) = bus.step() {
                stalled[c.master.index()] = false;
                work[c.master.index()] += 12; // service is budgeted work
            }
        }
        let measured = work[0] as f64 / cycles as f64;
        prop_assert!(
            (analytic - measured).abs() < 0.25,
            "analytic {analytic} vs measured {measured}"
        );
    }

    /// Cache: hit rate of a loop that fits is higher than one that thrashes,
    /// and accesses are conserved.
    #[test]
    fn cache_capacity_ordering(lines_log in 3u32..7, wl in 1u64..64) {
        let lines = 1usize << lines_log;
        let capacity = lines as u64 * 8;
        let mut cache = DirectMappedCache::new(lines, 8);
        let fits = cache.hit_rate_of_trace((0..capacity / 2).cycle().take(20_000));
        let thrashes = cache.hit_rate_of_trace((0..capacity * 4).cycle().take(20_000));
        prop_assert!(fits >= thrashes);
        let _ = wl;
        prop_assert_eq!(cache.stats().accesses(), 20_000);
    }
}

// Pinned counterexamples from `prop_hw.proptest-regressions`, replayed as
// plain tests with the shrunk inputs recorded in that file's comments. Both
// historical failures were resolved by *scoping the properties to the
// light-load regime* (the analytic model deliberately keeps open-system
// saturation behaviour past capacity), so these tests pin two things: the
// inputs really are outside the guaranteed regime, and the unconditional
// physical invariants still hold there.

/// `cc 5ba52f97… # shrinks to n = 4, rate = 0.031507251430505125`
/// (from `analytic_model_brackets_arbiter`).
#[test]
fn regression_bracket_input_is_saturated_but_physical() {
    let n = 4usize;
    let rate = 0.031507251430505125f64;
    let model = ContentionModel::new();
    let rates = vec![rate; n];
    // The bracketing property only claims the light-load regime; this input
    // oversubscribes the bus, which is why the strategy now stops at 0.02.
    let offered: f64 = rates.iter().map(|a| a * model.service()).sum();
    assert!(
        offered > 1.0,
        "historical counterexample should oversubscribe the bus, offered {offered}"
    );
    // The unconditional invariants must still hold at saturation.
    let speeds = model.speeds(&rates);
    assert_eq!(speeds.len(), n);
    for &x in &speeds {
        assert!(x > 0.0 && x <= 1.0, "speed {x} out of range");
    }
    assert!(model.utilization(&rates) <= 1.0 + 1e-6);
}

/// `cc ee7ba465… # shrinks to rates = […], extra = 0.01645…`
/// (from `contention_is_monotone_in_load`).
#[test]
fn regression_monotonicity_input_is_past_capacity_but_physical() {
    let rates = [
        0.055844458148511786,
        0.001,
        0.025043226260558007,
        0.04166474706067694,
        0.03739277743236999,
    ];
    let extra = 0.01645096892564636;
    let model = ContentionModel::new();
    // Per-processor monotonicity is only promised below 90% offered load;
    // this input sits beyond it (capacity normalization redistributes
    // bandwidth there), which is what the property's prop_assume encodes.
    let offered: f64 = rates
        .iter()
        .chain([&extra])
        .map(|a| a * model.service())
        .sum();
    assert!(
        offered >= 0.9,
        "historical counterexample should exceed the sub-capacity bound, offered {offered}"
    );
    // Physical bounds hold before and after adding the competitor.
    let before = model.speeds(&rates);
    let mut more = rates.to_vec();
    more.push(extra);
    let after = model.speeds(&more);
    for &x in before.iter().chain(&after) {
        assert!(x > 0.0 && x <= 1.0, "speed {x} out of range");
    }
    // And the *aggregate* never speeds up: total delivered work cannot grow
    // when a competitor joins, even past saturation.
    let total_before: f64 = before.iter().sum();
    let total_after: f64 = after.iter().take(before.len()).sum();
    assert!(
        total_after <= total_before + 1e-9,
        "aggregate sped up: {total_before} -> {total_after}"
    );
}

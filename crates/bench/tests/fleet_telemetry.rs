//! End-to-end gate for the fleet telemetry layer: instrumenting a
//! supervised chaos run must not change a single output byte, the
//! recorded event stream must replay into the live transcript exactly,
//! and the metrics snapshot must agree with the supervisor's own
//! bookkeeping (`ShardReport`) counter for counter.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Mutex;
use std::time::Duration;

use mpdp_bench::experiment::bench104_spec;
use mpdp_shard::{supervise_observed, ChaosPlan, ShardOutcome, SuperviseConfig, SupervisedSweep};
use mpdp_sweep::{cells_csv, report_json, run_cell, run_sweep, Journal, SweepSpec};
use mpdp_telemetry::{fleet_trace_json, FleetRecorder, MetricsRegistry, TranscriptObserver};

struct BinaryRun {
    transcript: String,
    csv: String,
    json: String,
    telemetry_json: Option<String>,
    trace_json: Option<String>,
}

/// Runs `sweep_shard supervise` over the 104-cell grid with chaos armed
/// (`tear` adds the mid-record journal truncation on top of the
/// SIGKILLs), optionally with every telemetry export enabled.
fn binary_chaos_run(shards: usize, telemetry: bool, tear: bool, tag: &str) -> BinaryRun {
    let dir = std::env::temp_dir().join(format!(
        "mpdp-fleet-tel-{}-s{shards}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let csv_path: PathBuf = dir.join("merged.csv");
    let json_path: PathBuf = dir.join("merged.json");
    let tel_path: PathBuf = dir.join("metrics.json");
    let trace_path: PathBuf = dir.join("trace.json");

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep_shard"));
    cmd.args([
        "supervise",
        "--spec",
        "bench104",
        "--shards",
        &shards.to_string(),
        "--chaos-kills",
        "3",
        "--chaos-seed",
        "7",
        "--throttle-ms",
        "10",
        "--retries",
        "4",
    ]);
    if tear {
        cmd.arg("--chaos-tear");
    }
    cmd.arg("--dir")
        .arg(&dir)
        .arg("--csv")
        .arg(&csv_path)
        .arg("--json")
        .arg(&json_path);
    if telemetry {
        cmd.arg("--telemetry-out")
            .arg(&tel_path)
            .arg("--fleet-trace")
            .arg(&trace_path);
    }
    let output = cmd.output().expect("spawn sweep_shard");
    let transcript = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "chaos run at {shards} shard(s) (telemetry={telemetry}) failed:\n{transcript}"
    );
    let run = BinaryRun {
        transcript,
        csv: std::fs::read_to_string(&csv_path).expect("merged CSV written"),
        json: std::fs::read_to_string(&json_path).expect("merged JSON written"),
        telemetry_json: telemetry
            .then(|| std::fs::read_to_string(&tel_path).expect("telemetry JSON written")),
        trace_json: telemetry
            .then(|| std::fs::read_to_string(&trace_path).expect("fleet trace written")),
    };
    let _ = std::fs::remove_dir_all(&dir);
    run
}

/// First `"name": value` occurrence in the metrics JSON — the counters
/// object precedes the shards array, so this reads the fleet total.
fn json_counter(json: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("counter {name:?} missing from telemetry JSON:\n{json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("counter {name:?} is not a number"))
}

/// `N` from a `"{N} <unit>" fragment of the summary line.
fn summary_count(transcript: &str, unit: &str) -> u64 {
    let summary = transcript
        .lines()
        .find(|l| l.starts_with("supervised run complete:"))
        .expect("summary line present");
    let at = summary
        .find(unit)
        .unwrap_or_else(|| panic!("summary line lacks {unit:?}: {summary}"));
    summary[..at]
        .rsplit(|c: char| !c.is_ascii_digit())
        .find(|s| !s.is_empty())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no count before {unit:?} in: {summary}"))
}

#[test]
fn telemetry_exports_ride_along_without_changing_a_byte() {
    let golden = run_sweep(&bench104_spec(), 1).expect("single-process golden run");
    let golden_csv = cells_csv(&golden);
    let golden_json = report_json(&golden);

    for shards in [1usize, 8] {
        let plain = binary_chaos_run(shards, false, true, "off");
        let instrumented = binary_chaos_run(shards, true, true, "on");

        // Instrumented or not, the merged exports are the single-process
        // bytes.
        for run in [&plain, &instrumented] {
            assert_eq!(
                run.csv, golden_csv,
                "merged CSV drifted at {shards} shard(s)"
            );
            assert_eq!(
                run.json, golden_json,
                "merged JSON drifted at {shards} shard(s)"
            );
        }
        // The chaos recovery story still plays out (and is still told) with
        // the observers attached.
        for run in [&plain, &instrumented] {
            assert!(
                run.transcript.matches("chaos SIGKILL").count() >= 2,
                "expected ≥2 chaos SIGKILLs at {shards} shard(s):\n{}",
                run.transcript
            );
            assert!(run.transcript.contains("journal torn mid-record"));
            assert!(run.transcript.contains("relaunching to resume"));
        }

        // The metrics snapshot agrees with the supervisor's own summary —
        // the same numbers, observed through a completely separate path
        // (typed events + worker sidecar files vs `ShardReport`s).
        let tel = instrumented
            .telemetry_json
            .as_deref()
            .expect("telemetry JSON");
        mpdp_telemetry::validate_metrics_json(tel).expect("telemetry JSON validates");
        for (counter, unit) in [
            ("launches", " launch(es)"),
            ("chaos_kills", " chaos kill(s)"),
            ("torn_journals", " torn journal(s)"),
            ("relaunches", " relaunch(es)"),
            ("retries", " retry(ies)"),
            ("stall_kills", " stall kill(s)"),
        ] {
            assert_eq!(
                json_counter(tel, counter),
                summary_count(&instrumented.transcript, unit),
                "{counter} disagrees between telemetry JSON and the supervisor summary"
            );
        }
        assert_eq!(json_counter(tel, "merged_cells"), 104);
        assert_eq!(json_counter(tel, "shards_done"), shards as u64);
        // Worker sidecars made it into the fleet snapshot. The sidecar is
        // advisory (like the heartbeat): a SIGKILL can land between a
        // cell's fsynced journal append and its sidecar rewrite, losing
        // at most that one in-flight sample per kill — so coverage is
        // exact up to the delivered kills.
        let executed = json_counter(tel, "cells_executed");
        let resumed = json_counter(tel, "cells_resumed");
        let kills = json_counter(tel, "chaos_kills");
        assert!(
            executed + resumed >= 104 - kills,
            "worker sidecar coverage too low: {executed} executed + {resumed} resumed \
             with {kills} kill(s)"
        );
        assert!(
            executed > 0,
            "no cell wall-latency samples reached the fleet snapshot"
        );

        // The fleet timeline is well-formed JSON with the chaos story on it.
        let trace = instrumented.trace_json.as_deref().expect("fleet trace");
        mpdp_obs::validate_json(trace).expect("fleet trace is well-formed JSON");
        assert!(
            trace.contains("\"chaos-kill\""),
            "trace lacks chaos-kill instants"
        );
        assert!(
            trace.contains("\"journal-tear\""),
            "trace lacks the tear instant"
        );
        assert!(
            trace.contains("\"launch 2\""),
            "trace lacks a relaunch span"
        );
        assert!(
            trace.contains("\"supervisor\""),
            "trace lacks the supervisor track"
        );
    }
}

#[test]
fn kill_only_chaos_counts_every_executed_cell_exactly_once() {
    // Regression gate for the `CellDone` loss window: a SIGKILL between a
    // cell's fsynced journal append and the sidecar rewrite used to leave
    // the persisted snapshot behind the journal, so a resumed shard
    // undercounted `cells_executed`. The worker now floors its preloaded
    // counters with the journal's recovered-record count at relaunch,
    // which makes the fleet total *exact* under kill-only chaos: every
    // reachable kill point either precedes the journal append (the cell
    // re-executes and is counted by the relaunch) or follows it (the
    // floor accounts it). Only `--chaos-tear` breaks exactness — a torn
    // record legitimately re-executes, pushing the count above 104 —
    // which is why this run arms kills without tears.
    let run = binary_chaos_run(8, true, false, "kill-only");
    assert!(
        run.transcript.matches("chaos SIGKILL").count() >= 2,
        "expected ≥2 chaos SIGKILLs:\n{}",
        run.transcript
    );
    assert!(
        !run.transcript.contains("journal torn"),
        "kill-only run must not tear journals"
    );
    let tel = run.telemetry_json.as_deref().expect("telemetry JSON");
    assert_eq!(
        json_counter(tel, "cells_executed"),
        104,
        "kill-only chaos must count each cell's execution exactly once:\n{tel}"
    );
    assert_eq!(json_counter(tel, "merged_cells"), 104);
}

/// A 9-cell grid (3 procs × 3 utilizations × 1 seed × 1 knob).
fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::figure4();
    spec.seeds = vec![0];
    spec
}

/// Completes `range`'s cells into the journal in-process, then spawns
/// `script` as the "worker" the supervisor watches — the stand-in that
/// makes chaos deterministic without real re-execution.
fn fill_journal(spec: &SweepSpec, range: std::ops::Range<usize>, journal: &Path) {
    let cells = spec.cells();
    let j = Journal::open(journal, spec).expect("journal opens");
    let done = j.recovered().clone();
    for index in range {
        if done.contains_key(&index) {
            continue;
        }
        let result = run_cell(spec, &cells[index]).expect("cell runs");
        j.append(spec.cell_stream(&cells[index]), &result)
            .expect("appends");
    }
}

fn chaos_supervise(
    spec: &SweepSpec,
    dir: PathBuf,
    transcript: &Mutex<Vec<String>>,
    registry: &MetricsRegistry,
    recorder: &FleetRecorder,
) -> SupervisedSweep {
    let cfg = SuperviseConfig::default()
        .with_dir(dir)
        .with_shards(2)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(8))
        .with_poll_interval(Duration::from_millis(2))
        .with_chaos(ChaosPlan::new(2, 0xFEED).with_tear());
    let live = TranscriptObserver::new(|line: &str| {
        transcript
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(line.to_string());
    });
    supervise_observed(
        spec,
        &cfg,
        |plan, attempt, journal, _hb| {
            fill_journal(spec, plan.range(), journal);
            // The first launch (attempt 0) idles so the chaos SIGKILL
            // provably lands; relaunches exit immediately over the
            // (re-filled) journal.
            if attempt == 0 {
                Command::new("sh").arg("-c").arg("sleep 30").spawn()
            } else {
                Command::new("sh").arg("-c").arg("true").spawn()
            }
        },
        &(&live, registry, recorder),
    )
    .expect("supervised chaos run completes")
}

#[test]
fn recorded_events_replay_into_the_live_transcript_and_match_the_reports() {
    let spec = small_spec();
    let dir = std::env::temp_dir().join(format!("mpdp-fleet-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let transcript = Mutex::new(Vec::new());
    let registry = MetricsRegistry::new();
    let recorder = FleetRecorder::new();
    let sup = chaos_supervise(&spec, dir.clone(), &transcript, &registry, &recorder);
    let _ = std::fs::remove_dir_all(&dir);

    // The run really exercised chaos, and still merged byte-identically.
    assert!(sup.chaos_kills >= 1, "chaos plan delivered no kills");
    assert!(sup
        .shards
        .iter()
        .all(|s| s.outcome == ShardOutcome::Completed));
    let golden = run_sweep(&spec, 1).expect("golden run");
    assert_eq!(cells_csv(&sup.report), cells_csv(&golden));

    // Replaying the recorded stream through the pure renderer reproduces
    // the live transcript byte for byte — the adapter and the recorder
    // saw the same events, in the same order.
    let live = transcript.into_inner().unwrap_or_else(|p| p.into_inner());
    let replayed: Vec<String> = recorder
        .events()
        .iter()
        .filter_map(TranscriptObserver::<fn(&str)>::render)
        .collect();
    assert_eq!(replayed, live);

    // The snapshot's supervision counters equal the `ShardReport`s',
    // exactly.
    let snap = registry.snapshot();
    assert_eq!(
        snap.launches,
        sup.shards
            .iter()
            .map(|s| u64::from(s.launches))
            .sum::<u64>()
    );
    assert_eq!(snap.chaos_kills, u64::from(sup.chaos_kills));
    assert_eq!(snap.torn_journals, u64::from(sup.torn));
    assert_eq!(
        snap.retries,
        sup.shards
            .iter()
            .map(|s| s.failures.len() as u64)
            .sum::<u64>()
    );
    assert_eq!(snap.shards_done, sup.shards.len() as u64);
    assert_eq!(snap.merges, 1);
    assert_eq!(snap.merged_cells, sup.report.cells.len() as u64);
    for report in &sup.shards {
        let stats = snap
            .shards
            .iter()
            .find(|s| s.shard == report.plan.index)
            .expect("per-shard stats present");
        assert_eq!(stats.launches, u64::from(report.launches));
        assert_eq!(stats.chaos_kills, u64::from(report.chaos_kills));
        assert!(stats.done);
    }

    // And the same recorded stream renders a loadable fleet timeline.
    let trace = fleet_trace_json(&recorder.events(), sup.shards.len());
    mpdp_obs::validate_json(&trace).expect("fleet trace is well-formed JSON");
    assert!(trace.contains("\"chaos-kill\""));
}

//! End-to-end chaos gate for the supervised multi-process sharded sweep
//! (the PR-acceptance criterion): with at least two workers SIGKILLed at
//! seeded mid-run points and one shard journal additionally truncated
//! mid-record, the `sweep_shard supervise` fleet must still complete via
//! retries and journal recovery, and its merged CSV and JSON must be
//! byte-identical to a single-process `run_sweep` of the same spec — at
//! 1, 2, and 8 shards.
//!
//! The workers are real OS processes (the binary re-executes itself), the
//! kills are real `SIGKILL`s delivered by the supervisor's chaos plan at
//! journal-progress thresholds, and `--throttle-ms` paces the workers so
//! every scheduled kill provably lands mid-run.

use std::path::PathBuf;
use std::process::Command;

use mpdp_bench::experiment::bench104_spec;
use mpdp_sweep::{cells_csv, report_json, run_sweep};

struct ChaosRun {
    transcript: String,
    csv: String,
    json: String,
}

/// Runs `sweep_shard supervise` over the 104-cell grid with the chaos
/// plan armed, asserting the run succeeds, and returns its transcript and
/// merged exports.
fn chaos_run(shards: usize, kills: u32, seed: u64) -> ChaosRun {
    let dir =
        std::env::temp_dir().join(format!("mpdp-chaos-test-{}-s{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let csv_path: PathBuf = dir.join("merged.csv");
    let json_path: PathBuf = dir.join("merged.json");

    let output = Command::new(env!("CARGO_BIN_EXE_sweep_shard"))
        .args([
            "supervise",
            "--spec",
            "bench104",
            "--shards",
            &shards.to_string(),
            "--chaos-kills",
            &kills.to_string(),
            "--chaos-seed",
            &seed.to_string(),
            "--chaos-tear",
            "--throttle-ms",
            "10",
            "--retries",
            "4",
        ])
        .arg("--dir")
        .arg(&dir)
        .arg("--csv")
        .arg(&csv_path)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn sweep_shard");

    let transcript = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "chaos run at {shards} shard(s) failed (exit {:?}):\n{transcript}",
        output.status.code()
    );
    let csv = std::fs::read_to_string(&csv_path).expect("merged CSV written");
    let json = std::fs::read_to_string(&json_path).expect("merged JSON written");
    let _ = std::fs::remove_dir_all(&dir);
    ChaosRun {
        transcript,
        csv,
        json,
    }
}

/// The committed golden (`tests/golden/bench104_cells.csv`) that the CI
/// chaos smoke compares merged bytes against is exactly the
/// single-process export of the 104-cell grid. Bless an intentional
/// format change with `GOLDEN_UPDATE=1 cargo test -q -p mpdp-bench`.
#[test]
fn committed_golden_matches_the_single_process_run() {
    let report = run_sweep(&bench104_spec(), 1).expect("single-process run");
    let rendered = cells_csv(&report);
    let golden_path = format!(
        "{}/../../tests/golden/bench104_cells.csv",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&golden_path, &rendered).expect("update golden snapshot");
    }
    let golden = std::fs::read_to_string(&golden_path).expect("checked-in golden snapshot");
    assert_eq!(
        rendered, golden,
        "bench104 cells CSV drifted from tests/golden/bench104_cells.csv \
         (bless intentional changes with GOLDEN_UPDATE=1)"
    );
}

#[test]
fn chaos_kills_and_a_torn_journal_still_merge_byte_identically() {
    let golden = run_sweep(&bench104_spec(), 1).expect("single-process golden run");
    let golden_csv = cells_csv(&golden);
    let golden_json = report_json(&golden);

    for shards in [1usize, 2, 8] {
        let run = chaos_run(shards, 3, 7);

        let kills = run.transcript.matches("chaos SIGKILL").count();
        assert!(
            kills >= 2,
            "expected at least 2 chaos SIGKILLs at {shards} shard(s), saw {kills}:\n{}",
            run.transcript
        );
        assert!(
            run.transcript.contains("journal torn mid-record"),
            "expected a mid-record journal tear at {shards} shard(s):\n{}",
            run.transcript
        );
        assert!(
            run.transcript.contains("relaunching to resume"),
            "expected chaos victims to be relaunched at {shards} shard(s):\n{}",
            run.transcript
        );

        assert_eq!(
            run.csv, golden_csv,
            "merged CSV diverged from the single-process run at {shards} shard(s)"
        );
        assert_eq!(
            run.json, golden_json,
            "merged JSON diverged from the single-process run at {shards} shard(s)"
        );
    }
}

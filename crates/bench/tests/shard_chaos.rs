//! End-to-end chaos gate for the supervised multi-process sharded sweep
//! (the PR-acceptance criterion): with at least two workers SIGKILLed at
//! seeded mid-run points and one shard journal additionally truncated
//! mid-record, the `sweep_shard supervise` fleet must still complete via
//! retries and journal recovery, and its merged CSV and JSON must be
//! byte-identical to a single-process `run_sweep` of the same spec — at
//! 1, 2, and 8 shards.
//!
//! The workers are real OS processes (the binary re-executes itself), the
//! kills are real `SIGKILL`s delivered by the supervisor's chaos plan at
//! journal-progress thresholds, and `--throttle-ms` paces the workers so
//! every scheduled kill provably lands mid-run.

use std::path::PathBuf;
use std::process::Command;

use mpdp_bench::experiment::bench104_spec;
use mpdp_sweep::{cells_csv, report_json, run_sweep};

struct ChaosRun {
    transcript: String,
    csv: String,
    json: String,
}

/// Runs `sweep_shard supervise` over the 104-cell grid with the chaos
/// plan armed, asserting the run succeeds, and returns its transcript and
/// merged exports.
fn chaos_run(shards: usize, kills: u32, seed: u64) -> ChaosRun {
    let dir =
        std::env::temp_dir().join(format!("mpdp-chaos-test-{}-s{shards}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let csv_path: PathBuf = dir.join("merged.csv");
    let json_path: PathBuf = dir.join("merged.json");

    let output = Command::new(env!("CARGO_BIN_EXE_sweep_shard"))
        .args([
            "supervise",
            "--spec",
            "bench104",
            "--shards",
            &shards.to_string(),
            "--chaos-kills",
            &kills.to_string(),
            "--chaos-seed",
            &seed.to_string(),
            "--chaos-tear",
            "--throttle-ms",
            "10",
            "--retries",
            "4",
        ])
        .arg("--dir")
        .arg(&dir)
        .arg("--csv")
        .arg(&csv_path)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn sweep_shard");

    let transcript = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "chaos run at {shards} shard(s) failed (exit {:?}):\n{transcript}",
        output.status.code()
    );
    let csv = std::fs::read_to_string(&csv_path).expect("merged CSV written");
    let json = std::fs::read_to_string(&json_path).expect("merged JSON written");
    let _ = std::fs::remove_dir_all(&dir);
    ChaosRun {
        transcript,
        csv,
        json,
    }
}

/// The committed golden (`tests/golden/bench104_cells.csv`) that the CI
/// chaos smoke compares merged bytes against is exactly the
/// single-process export of the 104-cell grid. Bless an intentional
/// format change with `GOLDEN_UPDATE=1 cargo test -q -p mpdp-bench`.
#[test]
fn committed_golden_matches_the_single_process_run() {
    let report = run_sweep(&bench104_spec(), 1).expect("single-process run");
    let rendered = cells_csv(&report);
    let golden_path = format!(
        "{}/../../tests/golden/bench104_cells.csv",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::write(&golden_path, &rendered).expect("update golden snapshot");
    }
    let golden = std::fs::read_to_string(&golden_path).expect("checked-in golden snapshot");
    assert_eq!(
        rendered, golden,
        "bench104 cells CSV drifted from tests/golden/bench104_cells.csv \
         (bless intentional changes with GOLDEN_UPDATE=1)"
    );
}

/// A stall interval shorter than the per-cell work (25 ms against 10 ms
/// throttle plus real sweep work) makes spurious stall kills likely, and
/// every stall kill burns retry budget — so with a generous
/// `--max-retries` the fleet must still converge to the byte-identical
/// single-process output, however many times workers get killed and
/// relaunched along the way.
#[test]
fn a_tiny_stall_interval_still_converges_byte_identically() {
    let golden = run_sweep(&bench104_spec(), 1).expect("single-process golden run");
    let dir = std::env::temp_dir().join(format!("mpdp-stall-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let csv_path: PathBuf = dir.join("merged.csv");
    let json_path: PathBuf = dir.join("merged.json");

    let output = Command::new(env!("CARGO_BIN_EXE_sweep_shard"))
        .args([
            "supervise",
            "--spec",
            "bench104",
            "--shards",
            "2",
            "--throttle-ms",
            "10",
            "--stall-ms",
            "25",
            "--max-retries",
            "10",
        ])
        .arg("--dir")
        .arg(&dir)
        .arg("--csv")
        .arg(&csv_path)
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("spawn sweep_shard");
    let transcript = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "tiny-stall run failed (exit {:?}):\n{transcript}",
        output.status.code()
    );

    let csv = std::fs::read_to_string(&csv_path).expect("merged CSV written");
    let json = std::fs::read_to_string(&json_path).expect("merged JSON written");
    assert_eq!(csv, cells_csv(&golden), "tiny-stall CSV diverged");
    assert_eq!(json, report_json(&golden), "tiny-stall JSON diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The supervise flag spellings are validated, not silently resolved: a
/// zero stall interval and double-naming one knob are usage errors
/// (exit 2) before any worker is spawned.
#[test]
fn supervise_flag_misuse_is_a_usage_error() {
    let cases: &[(&[&str], &str)] = &[
        (
            &["supervise", "--spec", "bench104", "--stall-ms", "0"],
            "--stall-ms must be positive",
        ),
        (
            &[
                "supervise",
                "--spec",
                "bench104",
                "--retries",
                "3",
                "--max-retries",
                "4",
            ],
            "same knob",
        ),
        (
            &[
                "supervise",
                "--spec",
                "bench104",
                "--stall-ms",
                "25",
                "--stall-timeout-ms",
                "30",
            ],
            "same knob",
        ),
    ];
    for (args, needle) in cases {
        let output = Command::new(env!("CARGO_BIN_EXE_sweep_shard"))
            .args(*args)
            .output()
            .expect("spawn sweep_shard");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert_eq!(
            output.status.code(),
            Some(2),
            "{args:?} should be a usage error:\n{stderr}"
        );
        assert!(
            stderr.contains(needle),
            "{args:?} diagnostic should mention `{needle}`:\n{stderr}"
        );
    }
}

#[test]
fn chaos_kills_and_a_torn_journal_still_merge_byte_identically() {
    let golden = run_sweep(&bench104_spec(), 1).expect("single-process golden run");
    let golden_csv = cells_csv(&golden);
    let golden_json = report_json(&golden);

    for shards in [1usize, 2, 8] {
        let run = chaos_run(shards, 3, 7);

        let kills = run.transcript.matches("chaos SIGKILL").count();
        assert!(
            kills >= 2,
            "expected at least 2 chaos SIGKILLs at {shards} shard(s), saw {kills}:\n{}",
            run.transcript
        );
        assert!(
            run.transcript.contains("journal torn mid-record"),
            "expected a mid-record journal tear at {shards} shard(s):\n{}",
            run.transcript
        );
        assert!(
            run.transcript.contains("relaunching to resume"),
            "expected chaos victims to be relaunched at {shards} shard(s):\n{}",
            run.transcript
        );

        assert_eq!(
            run.csv, golden_csv,
            "merged CSV diverged from the single-process run at {shards} shard(s)"
        );
        assert_eq!(
            run.json, golden_json,
            "merged JSON diverged from the single-process run at {shards} shard(s)"
        );
    }
}

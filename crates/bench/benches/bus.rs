//! Criterion bench: the cycle-accurate OPB arbiter and the analytic
//! contention model (the prototype simulator calls the latter on every
//! activity change).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpdp_core::ids::ProcId;
use mpdp_hw::bus::{Arbiter, ArbitrationPolicy};
use mpdp_hw::contention::ContentionModel;

fn bench_arbiter(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter");
    for policy in [
        ArbitrationPolicy::FixedPriority,
        ArbitrationPolicy::RoundRobin,
    ] {
        group.bench_function(
            BenchmarkId::new("drain_400tx", format!("{policy:?}")),
            |b| {
                b.iter(|| {
                    let mut bus = Arbiter::new(4, policy);
                    for i in 0..400u64 {
                        bus.push_request(ProcId::new((i % 4) as u32), 12, i);
                    }
                    black_box(bus.drain().len())
                });
            },
        );
    }
    group.finish();
}

fn bench_contention_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("contention");
    for n in [2usize, 4, 8] {
        let rates: Vec<f64> = (0..n).map(|i| 0.01 + 0.005 * i as f64).collect();
        group.bench_with_input(BenchmarkId::new("speeds", n), &rates, |b, rates| {
            let model = ContentionModel::new();
            b.iter(|| black_box(model.speeds(black_box(rates))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arbiter, bench_contention_model);
criterion_main!(benches);

//! Criterion bench: the MPDP scheduling-cycle primitives — the operations
//! the paper's microkernel runs on every tick (release, promote, assign,
//! diff). Their cost is what the kernel cost model charges as
//! `sched_base`/`sched_per_task`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::time::{Cycles, DEFAULT_TICK};
use mpdp_workload::automotive_task_set;

fn prepared_policy(n_procs: usize) -> MpdpPolicy {
    let set = automotive_task_set(0.5, n_procs, DEFAULT_TICK);
    let table = prepare(
        set.periodic,
        set.aperiodic,
        n_procs,
        ToolOptions::new().with_quantization(DEFAULT_TICK),
    )
    .expect("schedulable");
    MpdpPolicy::new(table)
}

fn bench_scheduling_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    for n_procs in [2usize, 4] {
        group.bench_function(BenchmarkId::new("full_cycle", n_procs), |b| {
            b.iter_batched(
                || {
                    let mut p = prepared_policy(n_procs);
                    p.release_due(Cycles::ZERO);
                    p
                },
                |mut p| {
                    p.promote_due(black_box(DEFAULT_TICK * 10));
                    let desired = p.assign();
                    black_box(p.diff(&desired));
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_function(BenchmarkId::new("assign_only", n_procs), |b| {
            let mut p = prepared_policy(n_procs);
            p.release_due(Cycles::ZERO);
            p.release_aperiodic(0, Cycles::ZERO);
            b.iter(|| black_box(p.assign()));
        });
    }
    group.finish();
}

fn bench_release_park_cycle(c: &mut Criterion) {
    c.bench_function("policy/release_complete_repark", |b| {
        b.iter_batched(
            || prepared_policy(2),
            |mut p| {
                let jobs = p.release_due(Cycles::ZERO);
                for (i, job) in jobs.iter().enumerate().take(2) {
                    p.set_running(mpdp_core::ids::ProcId::new(i as u32), Some(*job));
                    p.complete(*job, Cycles::new(1000));
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_scheduling_cycle, bench_release_park_cycle);
criterion_main!(benches);

//! Criterion bench: per-cell sweep pipeline throughput — one cell end to end
//! (table build + both simulators + summarisation) and the full 104-cell
//! fig4-style grid at 1 and 8 workers.
//!
//! These complement `bench_sweep` (the BENCH_sweep.json exporter / perf gate):
//! Criterion gives distribution-aware per-iteration timing for local work,
//! the exporter gives a single committed wall-clock number for CI gating.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mpdp_bench::experiment::bench104_spec;
use mpdp_sweep::{run_cell, run_sweep};

fn bench_single_cell(c: &mut Criterion) {
    let spec = bench104_spec();
    let cells = spec.cells();
    let cell = &cells[0];
    let mut group = c.benchmark_group("sweep_single_cell");
    group.throughput(Throughput::Elements(1));
    group.bench_function("run_cell", |b| {
        b.iter(|| black_box(run_cell(&spec, cell).expect("cell runs")));
    });
    group.finish();
}

fn bench_grid104(c: &mut Criterion) {
    let spec = bench104_spec();
    let n_cells = spec.cells().len() as u64;
    let mut group = c.benchmark_group("sweep_grid104");
    group.throughput(Throughput::Elements(n_cells));
    for workers in [1usize, 8] {
        group.bench_function(BenchmarkId::new("run_sweep", workers), |b| {
            b.iter(|| black_box(run_sweep(&spec, workers).expect("sweep runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_cell, bench_grid104);
criterion_main!(benches);

//! Criterion bench: end-to-end simulator throughput — how many platform
//! seconds per wall second each stack sustains on the paper's workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::task::TaskTable;
use mpdp_core::time::{Cycles, DEFAULT_TICK};
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};
use mpdp_sim::theoretical::{run_theoretical, TheoreticalConfig};
use mpdp_workload::automotive_task_set;

fn table(n_procs: usize) -> TaskTable {
    let set = automotive_task_set(0.5, n_procs, DEFAULT_TICK);
    prepare(
        set.periodic,
        set.aperiodic,
        n_procs,
        ToolOptions::new()
            .with_quantization(DEFAULT_TICK)
            .with_wcet_margin(1.15),
    )
    .expect("schedulable")
}

fn bench_simulators(c: &mut Criterion) {
    let horizon = Cycles::from_secs(5);
    let arrivals = vec![(Cycles::from_secs(1), 0usize)];
    let mut group = c.benchmark_group("simulate_5s_platform_time");
    group.throughput(Throughput::Elements(horizon.as_u64()));
    for n_procs in [2usize, 4] {
        let t = table(n_procs);
        group.bench_function(BenchmarkId::new("theoretical", n_procs), |b| {
            b.iter(|| {
                black_box(run_theoretical(
                    MpdpPolicy::new(t.clone()),
                    &arrivals,
                    TheoreticalConfig::new(horizon),
                ))
            });
        });
        group.bench_function(BenchmarkId::new("prototype", n_procs), |b| {
            b.iter(|| {
                black_box(run_prototype(
                    MpdpPolicy::new(t.clone()),
                    &arrivals,
                    PrototypeConfig::new(horizon),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);

//! Criterion bench: the four MPDP queue kinds under realistic sizes (the
//! paper's system has 19 tasks; we also stress far beyond that).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpdp_core::ids::JobId;
use mpdp_core::priority::Priority;
use mpdp_core::queue::{AperiodicReadyQueue, PriorityQueue, WaitingPeriodicQueue};
use mpdp_core::time::Cycles;

fn bench_priority_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_queue");
    for n in [19usize, 128] {
        group.bench_function(BenchmarkId::new("push_pop_all", n), |b| {
            b.iter(|| {
                let mut q = PriorityQueue::new();
                for i in 0..n {
                    q.push(JobId::new(i as u32), Priority::new((i * 7 % 13) as u32));
                }
                while let Some(j) = q.pop() {
                    black_box(j);
                }
            });
        });
        group.bench_function(BenchmarkId::new("peek", n), |b| {
            let mut q = PriorityQueue::new();
            for i in 0..n {
                q.push(JobId::new(i as u32), Priority::new((i * 7 % 13) as u32));
            }
            b.iter(|| black_box(q.peek()));
        });
    }
    group.finish();
}

fn bench_waiting_queue(c: &mut Criterion) {
    c.bench_function("waiting_queue/park_release_19", |b| {
        b.iter(|| {
            let mut q = WaitingPeriodicQueue::new();
            for i in 0..19usize {
                q.push(i, Cycles::new((i as u64 * 37) % 100));
            }
            black_box(q.pop_due(Cycles::new(50)));
            black_box(q.pop_due(Cycles::new(100)));
        });
    });
}

fn bench_aperiodic_queue(c: &mut Criterion) {
    c.bench_function("aperiodic_queue/fifo_64", |b| {
        b.iter(|| {
            let mut q = AperiodicReadyQueue::new();
            for i in 0..64u32 {
                q.push(JobId::new(i));
            }
            while let Some(j) = q.pop() {
                black_box(j);
            }
        });
    });
}

criterion_group!(
    benches,
    bench_priority_queue,
    bench_waiting_queue,
    bench_aperiodic_queue
);
criterion_main!(benches);

//! Criterion bench: interrupt-controller dispatch — raise, route,
//! acknowledge, end-of-interrupt — under distribution, booking, and
//! broadcast configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpdp_core::ids::{PeripheralId, ProcId};
use mpdp_core::time::Cycles;
use mpdp_intc::MpInterruptController;

fn serve_all(intc: &mut MpInterruptController, n_procs: usize, now: Cycles) -> usize {
    let mut served = 0;
    loop {
        let mut progressed = false;
        for p in 0..n_procs {
            let proc = ProcId::new(p as u32);
            if intc.signaled(proc).is_some() {
                intc.acknowledge(proc, now);
                intc.end_of_interrupt(proc, now);
                served += 1;
                progressed = true;
            }
        }
        if !progressed {
            return served;
        }
    }
}

fn bench_distribution(c: &mut Criterion) {
    c.bench_function("intc/distribute_serve_32", |b| {
        b.iter(|| {
            let mut intc = MpInterruptController::new(4, 8, Cycles::new(1000));
            for i in 0..32u32 {
                intc.raise_peripheral(PeripheralId::new(i % 8), Cycles::new(u64::from(i)));
            }
            black_box(serve_all(&mut intc, 4, Cycles::new(100)))
        });
    });
}

fn bench_booked(c: &mut Criterion) {
    c.bench_function("intc/booked_serve_32", |b| {
        b.iter(|| {
            let mut intc = MpInterruptController::new(4, 8, Cycles::new(1000));
            for per in 0..8u32 {
                intc.book(PeripheralId::new(per), Some(ProcId::new(per % 4)));
            }
            for i in 0..32u32 {
                intc.raise_peripheral(PeripheralId::new(i % 8), Cycles::new(u64::from(i)));
            }
            black_box(serve_all(&mut intc, 4, Cycles::new(100)))
        });
    });
}

fn bench_ipi(c: &mut Criterion) {
    c.bench_function("intc/ipi_round_trip", |b| {
        b.iter(|| {
            let mut intc = MpInterruptController::new(4, 1, Cycles::new(1000));
            for i in 0..16u32 {
                intc.raise_ipi(
                    ProcId::new(i % 4),
                    ProcId::new((i + 1) % 4),
                    i,
                    Cycles::new(u64::from(i)),
                );
            }
            black_box(serve_all(&mut intc, 4, Cycles::new(100)))
        });
    });
}

criterion_group!(benches, bench_distribution, bench_booked, bench_ipi);
criterion_main!(benches);

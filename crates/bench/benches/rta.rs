//! Criterion bench: the response-time recurrence and the offline tool.
//!
//! The paper runs the analysis offline on a host, but its cost still matters
//! for design-space exploration (re-analysing every candidate partition).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_core::rta::analyze;
use mpdp_core::time::DEFAULT_TICK;
use mpdp_workload::automotive_task_set;
use mpdp_workload::taskgen::{random_task_set, TaskGenConfig};

fn bench_rta(c: &mut Criterion) {
    let mut group = c.benchmark_group("rta");
    for n_tasks in [4usize, 16, 64] {
        let tasks = random_task_set(&TaskGenConfig::new(n_tasks, 0.7).with_seed(7));
        group.bench_with_input(BenchmarkId::new("analyze", n_tasks), &tasks, |b, tasks| {
            b.iter(|| analyze(black_box(tasks), 1).expect("schedulable"));
        });
    }
    group.finish();
}

fn bench_offline_tool(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_tool");
    for n_procs in [2usize, 4] {
        let set = automotive_task_set(0.5, n_procs, DEFAULT_TICK);
        group.bench_with_input(
            BenchmarkId::new("prepare_automotive", n_procs),
            &set,
            |b, set| {
                b.iter(|| {
                    prepare(
                        black_box(set.periodic.clone()),
                        set.aperiodic.clone(),
                        n_procs,
                        ToolOptions::new().with_quantization(DEFAULT_TICK),
                    )
                    .expect("schedulable")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rta, bench_offline_tool);
criterion_main!(benches);

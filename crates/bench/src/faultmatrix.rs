//! The fault-matrix sweep specification: graceful degradation under
//! injected faults, swept over fault intensity × processor count ×
//! scheduling policy. Shared between the `exp_fault_matrix` binary, the
//! monitor-audit binary, and the checkpoint/resume tests so they all
//! exercise the exact same grid.

use mpdp_core::policy::{DegradationPolicy, OverrunAction};
use mpdp_core::time::Cycles;
use mpdp_faults::{BusSpike, FailStop, FaultPlan, InterruptFaults, OverloadBurst, WcetOverrun};
use mpdp_sweep::{ArrivalSpec, Knobs, PolicyKind, SweepSpec, WorkloadSpec};

/// The swept fault intensities, mildest first.
pub const INTENSITIES: [&str; 3] = ["none", "stress", "failover"];

/// The degradation configuration every faulted knob runs: kill jobs that
/// blow past 1.5× their nominal WCET, shed aperiodic arrivals beyond four
/// queued jobs.
fn degradation() -> DegradationPolicy {
    DegradationPolicy::default()
        .with_overrun(OverrunAction::Kill)
        .with_budget_margin(1.5)
        .with_shed_limit(4)
}

/// The fault plan for one intensity level.
fn plan_of(intensity: &str) -> FaultPlan {
    match intensity {
        "none" => FaultPlan::default(),
        "stress" => FaultPlan::default()
            .with_wcet(WcetOverrun::new(0.05, 1.3))
            .with_burst(OverloadBurst::new(
                Cycles::from_secs(3),
                3,
                Cycles::from_millis(400),
            ))
            .with_interrupts(InterruptFaults {
                lost_probability: 0.02,
                spurious: vec![Cycles::from_secs(2), Cycles::from_secs(9)],
            })
            .with_bus_spike(BusSpike::new(
                Cycles::from_secs(5),
                Cycles::from_millis(500),
                2.0,
            )),
        _ => FaultPlan::default()
            .with_wcet(WcetOverrun::new(0.10, 1.3).with_tail(0.01, 3.0))
            .with_burst(OverloadBurst::new(
                Cycles::from_secs(3),
                5,
                Cycles::from_millis(400),
            ))
            .with_interrupts(InterruptFaults {
                lost_probability: 0.05,
                spurious: vec![Cycles::from_secs(2), Cycles::from_secs(9)],
            })
            .with_bus_spike(BusSpike::new(
                Cycles::from_secs(5),
                Cycles::from_secs(1),
                3.0,
            ))
            // Processor 1 dies mid-run on every column of the grid.
            .with_fail_stop(FailStop::new(1, Cycles::from_secs(6))),
    }
}

/// The full fault-matrix spec: one knob per (intensity × policy), over the
/// given processor counts at 50% utilization.
pub fn fault_matrix_spec(proc_counts: Vec<usize>, seeds: usize) -> SweepSpec {
    let mut knobs = Vec::new();
    for intensity in INTENSITIES {
        for policy in [
            PolicyKind::Mpdp,
            PolicyKind::Background,
            PolicyKind::AperiodicFirst,
        ] {
            knobs.push(
                Knobs::named(format!("{intensity}/{}", policy.name()))
                    .with_policy(policy)
                    .with_faults(plan_of(intensity))
                    .with_degradation(degradation()),
            );
        }
    }
    SweepSpec {
        utilizations: vec![0.5],
        proc_counts,
        seeds: (0..seeds as u64).collect(),
        knobs,
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Bursts {
            activations: 2,
            gap: Cycles::from_secs(12),
        },
        master_seed: 0xFA_17,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validates_and_only_none_knobs_are_fault_free() {
        let spec = fault_matrix_spec(vec![2], 1);
        spec.validate().expect("fault-matrix spec is valid");
        assert_eq!(spec.knobs.len(), 9);
        for knob in &spec.knobs {
            let clean = crate::audit::knob_is_fault_free(knob);
            // Even the "none" intensity runs a live degradation policy,
            // so every knob of this matrix counts as faulted for audits.
            assert!(!clean, "knob {} unexpectedly fault-free", knob.label);
        }
    }
}

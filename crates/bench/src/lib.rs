//! # mpdp-bench — experiment harness
//!
//! Shared machinery for the binaries that regenerate every figure and table
//! of the paper (see `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_architecture` | Figure 1 (system topology) |
//! | `fig2_queues` | Figure 2 (queue organization) |
//! | `fig3_schedule` | Figure 3 (sample schedule A/B) |
//! | `fig4_response_time` | Figure 4 + the §5 slowdown percentages |
//! | `text_metrics` | §5 in-text numbers (5.438 s, worst case, …) |
//! | `ablate_*` | design-choice ablations |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod baseline;
pub mod cli;
pub mod experiment;
pub mod faultmatrix;

pub use audit::{
    audit_cell, audit_sweep, knob_is_fault_free, prototype_config, theoretical_config, CellAudit,
    SweepAudit,
};
pub use baseline::{load_baseline, load_baseline_with_schema, BaselineError, BASELINE_SCHEMA};
pub use experiment::{
    fig4_point, fig4_report, fig4_seeded_spec, fig4_spec, fig4_sweep, knobs_of, point_from_cell,
    ExperimentConfig, Fig4Point,
};
pub use faultmatrix::{fault_matrix_spec, INTENSITIES};

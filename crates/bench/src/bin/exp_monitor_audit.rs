//! Runtime-verification audit over the paper's sweeps: replays every cell
//! of the Figure 4 grid (and optionally the fault matrix) through the
//! `mpdp-monitor` invariant monitors and the differential oracle, and
//! reports a violation census per stack.
//!
//! This is the negative-space counterpart to the figure binaries: instead
//! of reproducing a number from the paper, it checks that **no run ever
//! breaks an MPDP scheduling rule** — promotions land exactly at D−ttr,
//! the dual-priority band order never inverts, aperiodic service is FIFO,
//! guaranteed tasks never miss when no fault is injected, and the
//! theoretical and prototype stacks agree on what happened (releases,
//! completions, verdicts) even though they disagree on when.
//!
//! Exit status: 0 when every audited cell is clean, 1 when any invariant
//! was violated or the stacks diverged, 2 on bad usage.
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_monitor_audit --
//! [--seeds K] [--faults] [--quick] [--json out.json]`.

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, write_output,
};
use mpdp_bench::{audit_sweep, fault_matrix_spec, fig4_spec, ExperimentConfig, SweepAudit};
use mpdp_sweep::ArrivalSpec;

/// Serializes the audit census as a small JSON document (no dependencies:
/// the repo's exports are all hand-rolled, byte-stable JSON).
fn audit_json(name: &str, audit: &SweepAudit) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"sweep\": \"{name}\",\n"));
    out.push_str(&format!("  \"cells\": {},\n", audit.audits.len()));
    out.push_str(&format!("  \"clean\": {},\n", audit.is_clean()));
    out.push_str(&format!("  \"violations\": {},\n", audit.violation_count()));
    out.push_str("  \"diagnostics\": [\n");
    let lines = audit.diagnostics();
    for (i, line) in lines.iter().enumerate() {
        let escaped = line.replace('\\', "\\\\").replace('"', "\\\"");
        let comma = if i + 1 < lines.len() { "," } else { "" };
        out.push_str(&format!("    \"{escaped}\"{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_census(name: &str, audit: &SweepAudit) {
    println!(
        "== {name}: invariant audit over {} cells ==",
        audit.audits.len()
    );
    let mut theo: Vec<(&'static str, usize)> = Vec::new();
    let mut real: Vec<(&'static str, usize)> = Vec::new();
    let merge = |into: &mut Vec<(&'static str, usize)>, from: Vec<(&'static str, usize)>| {
        for (k, n) in from {
            match into.iter_mut().find(|(key, _)| *key == k) {
                Some((_, total)) => *total += n,
                None => into.push((k, n)),
            }
        }
    };
    let mut events = 0usize;
    let mut jobs = 0usize;
    let mut promotions = 0usize;
    let mut oracle_matched = 0usize;
    let mut oracle_diverged = 0usize;
    for a in &audit.audits {
        merge(&mut theo, a.theoretical.counts());
        merge(&mut real, a.real.counts());
        events += a.theoretical.events_seen + a.real.events_seen;
        jobs += a.theoretical.jobs_tracked + a.real.jobs_tracked;
        promotions += a.theoretical.promotions_checked + a.real.promotions_checked;
        if let Some(o) = &a.oracle {
            oracle_matched += o.matched;
            if !o.is_agreed() {
                oracle_diverged += 1;
            }
        }
    }
    println!(
        "checked {events} events, {jobs} jobs, {promotions} promotions; \
         oracle matched {oracle_matched} occurrences, {oracle_diverged} cell(s) diverged"
    );
    for (label, counts) in [("theoretical", &theo), ("prototype", &real)] {
        if counts.is_empty() {
            println!("{label:<12} clean");
        } else {
            let list: Vec<String> = counts.iter().map(|(k, n)| format!("{k}×{n}")).collect();
            println!("{label:<12} {}", list.join(", "));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(
        &args,
        &["--seeds", "--faults", "--quick", "--json"],
        &["--seeds", "--json"],
    );
    let quick = has_flag(&args, "--quick");
    let with_faults = has_flag(&args, "--faults");
    let json_path = flag_value(&args, "--json");
    let seeds: usize = parse_flag(&args, "--seeds", "a seed count").unwrap_or(1);

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let mut fig4 = fig4_spec(&config);
    if quick {
        fig4.proc_counts = vec![2];
        fig4.utilizations = vec![0.4, 0.6];
    }
    if seeds > 1 {
        // Monte Carlo mode, as in fig4_response_time: randomized burst
        // arrivals per seed instead of the figure's pinned schedule.
        fig4.seeds = (0..seeds as u64).collect();
        fig4.arrivals = ArrivalSpec::Bursts {
            activations: config.activations,
            gap: config.activation_gap,
        };
    }
    eprintln!("auditing figure-4 grid: {} cells ...", fig4.cell_count());
    let audit = match audit_sweep(&fig4) {
        Ok(a) => a,
        Err(e) => runtime_error(format_args!("figure-4 audit failed: {e}")),
    };
    print_census("figure 4", &audit);
    for line in audit.diagnostics() {
        eprintln!("{line}");
    }
    let mut clean = audit.is_clean();

    let mut fault_audit = None;
    if with_faults {
        let spec = fault_matrix_spec(if quick { vec![2] } else { vec![2, 3] }, 1);
        eprintln!("auditing fault matrix: {} cells ...", spec.cell_count());
        let fa = match audit_sweep(&spec) {
            Ok(a) => a,
            Err(e) => runtime_error(format_args!("fault-matrix audit failed: {e}")),
        };
        println!();
        print_census("fault matrix", &fa);
        for line in fa.diagnostics() {
            eprintln!("{line}");
        }
        clean &= fa.is_clean();
        fault_audit = Some(fa);
    }

    if let Some(path) = json_path {
        let mut doc = audit_json("figure4", &audit);
        if let Some(fa) = &fault_audit {
            doc.push_str(&audit_json("fault-matrix", fa));
        }
        write_output(&path, &doc);
    }

    if !clean {
        runtime_error("invariant violations or stream divergences detected");
    }
    eprintln!("all audited cells clean");
}

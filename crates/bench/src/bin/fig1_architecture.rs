//! Regenerates **Figure 1** — "The architecture of our real time system
//! prototype" — by instantiating the modeled platform and printing its
//! topology and parameters. Structural, not a data figure.
//!
//! Run with `cargo run -p mpdp-bench --bin fig1_architecture [n_procs]`.

use mpdp_core::ids::proc_ids;
use mpdp_core::time::{Cycles, CLOCK_HZ, DEFAULT_TICK};
use mpdp_hw::crossbar::Crossbar;
use mpdp_hw::mem::{MemoryMap, Region, BOOT_WORDS, LOCAL_WORDS};
use mpdp_hw::sync::SyncEngine;
use mpdp_hw::DDR_SERVICE_CYCLES;
use mpdp_intc::MpInterruptController;

fn main() {
    let n_procs: usize = match std::env::args().nth(1) {
        Some(raw) => match raw.parse() {
            Ok(n) if (1..=8).contains(&n) => n,
            _ => mpdp_bench::cli::usage_error(format_args!(
                "expected a processor count in 1..=8, got `{raw}`"
            )),
        },
        None => 4,
    };
    let n_tasks = 19; // the paper's experiment: 18 periodic + 1 aperiodic
    let mem = MemoryMap::new(n_procs, n_tasks);
    let intc = MpInterruptController::new(n_procs, 4, Cycles::new(50_000));
    let xbar = Crossbar::new(n_procs, 4);
    let sync = SyncEngine::new(n_procs, 2, 2);

    println!("== Figure 1: system architecture (modeled) ==");
    println!(
        "clock: {} MHz (Virtex-II PRO XC2VP30 target)",
        CLOCK_HZ / 1_000_000
    );
    println!("system timer: period {DEFAULT_TICK} -> multiprocessor interrupt controller");
    println!();
    for p in proc_ids(n_procs) {
        println!(
            "  MicroBlaze {p}  -- I-cache (hit 1 cy, miss {} cy) -- local BRAM {} KiB ({} cy)",
            DDR_SERVICE_CYCLES,
            LOCAL_WORDS * 4 / 1024,
            mem.latency(Region::LocalBram(p)),
        );
    }
    println!();
    println!(
        "  shared OPB bus (fixed-priority arbiter, {DDR_SERVICE_CYCLES} cy per DDR transaction)"
    );
    println!(
        "   ├─ DDR shared memory: {} KiB, {} cy uncontended; context vector: {} slots x {} words",
        mem.shared().len() * 4 / 1024,
        mem.latency(Region::SharedDdr),
        mem.n_context_slots(),
        mem.context_slot_words(),
    );
    println!(
        "   ├─ boot BRAM: {} KiB, {} cy",
        BOOT_WORDS * 4 / 1024,
        mem.latency(Region::BootBram),
    );
    println!("   ├─ peripherals (CAN / camera / sensors): 4 interrupt lines");
    println!("   └─ multiprocessor interrupt controller:");
    println!("        distribution to free processors, booking, multicast/broadcast,");
    println!(
        "        inter-processor interrupts, ack timeout {} cy; {} processors connected",
        50_000,
        intc.n_procs()
    );
    println!();
    println!(
        "  synchronization engine: 2 locks, 2 barriers ({} cy per access, {} contended acquires so far)",
        mpdp_hw::sync::SYNC_ACCESS_CYCLES,
        sync.contended_acquires()
    );
    println!(
        "  crossbar: {n_procs}x{n_procs} FIFO channels, depth 4, {} cy per word ({} sent)",
        mpdp_hw::crossbar::XBAR_ACCESS_CYCLES,
        xbar.total_sent()
    );
}

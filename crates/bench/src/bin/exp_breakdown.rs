//! Extension experiment: **breakdown utilization** of the automotive
//! workload — how far beyond the paper's 40–60% operating range the offline
//! guarantee extends, per processor count and partitioning heuristic.
//!
//! Not a paper figure; positions the paper's operating points against the
//! workload's schedulability limit (Lehoczky-style breakdown search with the
//! exact response-time test).
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_breakdown`.

use mpdp_analysis::partition::PartitionHeuristic;
use mpdp_analysis::sensitivity::breakdown_utilization;
use mpdp_core::time::DEFAULT_TICK;
use mpdp_workload::automotive_task_set;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    mpdp_bench::cli::check_known_flags(&args, &[], &[]);
    println!("== breakdown utilization of the MiBench automotive set ==");
    println!(
        "{:<6} {:>22} {:>22} {:>22}",
        "procs", "first-fit", "best-fit", "worst-fit"
    );
    for n_procs in [1usize, 2, 3, 4] {
        let set = automotive_task_set(0.4, n_procs, DEFAULT_TICK);
        print!("{n_procs:<6}");
        for heuristic in [
            PartitionHeuristic::FirstFitDecreasing,
            PartitionHeuristic::BestFitDecreasing,
            PartitionHeuristic::WorstFitDecreasing,
        ] {
            match breakdown_utilization(&set.periodic, n_procs, heuristic, 0.01) {
                Ok(u) => print!(" {:>21.1}%", u * 100.0),
                Err(e) => print!(" {:>22}", format!("({e})")),
            }
        }
        println!();
    }
    println!();
    println!("the paper operates at 40-60% system utilization; the exact analysis");
    println!("admits the workload well beyond that, so its margins are comfortable");
    println!("even with the 15% overhead budget the experiments carry.");
}

//! Ablation: **instruction-cache effectiveness**.
//!
//! The paper's platform relies on the per-core I-cache "bringing down access
//! latency from 12 to 1 clock cycle in case of hit". This sweep varies the
//! I-cache hit rate of every task and measures the aperiodic response —
//! lower hit rates mean more OPB traffic, more contention, and slower
//! everything. A trace-driven check with the real direct-mapped cache model
//! calibrates which hit rates are plausible.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_cache`.

use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_bench::experiment::ExperimentConfig;
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::task::MemoryProfile;
use mpdp_core::time::Cycles;
use mpdp_hw::cache::DirectMappedCache;
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};
use mpdp_workload::automotive_task_set;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    mpdp_bench::cli::check_known_flags(&args, &[], &[]);
    let config = ExperimentConfig::new();
    let n_procs = 2;
    let utilization = 0.4;

    // Calibration: what hit rates does the modeled 2 KiB direct-mapped
    // cache actually deliver on loop-heavy instruction traces?
    let mut cache = DirectMappedCache::new(64, 8);
    let tight_loop = cache.hit_rate_of_trace((0..200u64).cycle().take(100_000));
    let big_loop = cache.hit_rate_of_trace((0..2000u64).cycle().take(100_000));
    println!("== I-cache ablation: 2 processors, 40% utilization ==");
    println!("trace-driven calibration (64 lines x 8 words):");
    println!("  200-word loop body:  hit rate {tight_loop:.4}");
    println!("  2000-word loop body: hit rate {big_loop:.4} (capacity misses)");
    println!();
    println!("{:<10} {:>10} {:>8}", "hit rate", "susan (s)", "misses");

    for hit_rate in [0.999, 0.99, 0.97, 0.95, 0.92] {
        let mut set = automotive_task_set(utilization, n_procs, config.tick);
        set.periodic = set
            .periodic
            .iter()
            .map(|t| {
                let profile = MemoryProfile {
                    icache_hit_rate: hit_rate,
                    ..*t.profile()
                };
                t.clone().with_profile(profile)
            })
            .collect();
        set.aperiodic = set
            .aperiodic
            .iter()
            .map(|t| {
                let profile = MemoryProfile {
                    icache_hit_rate: hit_rate,
                    ..*t.profile()
                };
                t.clone().with_profile(profile)
            })
            .collect();
        let table = prepare(
            set.periodic,
            set.aperiodic,
            n_procs,
            ToolOptions::new()
                .with_quantization(config.tick)
                .with_wcet_margin(config.wcet_margin),
        )
        .expect("schedulable at 40%");
        let susan = table.aperiodic()[0].id();
        let arrivals = vec![(Cycles::from_secs(1), 0usize)];
        let outcome = run_prototype(
            MpdpPolicy::new(table),
            &arrivals,
            PrototypeConfig::new(Cycles::from_secs(14)).with_tick(config.tick),
        )
        .unwrap();
        let response = outcome
            .trace
            .mean_response(susan)
            .map_or(f64::NAN, |c| c.as_secs_f64());
        println!(
            "{:<10} {:>10.3} {:>8}",
            format!("{:.1}%", hit_rate * 100.0),
            response,
            outcome.trace.deadline_misses()
        );
    }
    println!();
    println!("expected: response degrades convexly as the hit rate falls — every miss is");
    println!("a 12-cycle bus transaction that also queues behind everyone else's misses.");
}

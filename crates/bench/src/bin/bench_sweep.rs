//! Perf trajectory for the sweep pipeline: times a single Figure-4 cell
//! and the 104-cell benchmark grid (1 and 8 workers), writes the repo's
//! `BENCH_sweep.json`, and optionally gates against a committed baseline.
//!
//! Run with `cargo run --release -p mpdp-bench --bin bench_sweep --
//! [--out BENCH_sweep.json] [--repeats N] [--quick] [--cache-dir D]
//! [--gate baseline.json] [--threshold PCT]`.
//!
//! Each measurement is the **minimum** wall-clock over `--repeats` runs
//! (minimum, not mean: noise on a shared machine only ever adds time, so
//! the minimum is the most reproducible estimator of the true cost).
//! `--gate` re-reads a previously written report and fails (exit 1) if any
//! benchmark regressed by more than `--threshold` percent (default 15),
//! which is what the CI perf smoke job runs against the committed baseline.

use std::time::Instant;

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, usage_error, write_output,
};
use mpdp_bench::experiment::{bench104_spec, fig4_spec, ExperimentConfig};
use mpdp_bench::load_baseline;
use mpdp_obs::validate_json;
use mpdp_shard::{
    parse_worker_invocation, run_worker, self_launcher, supervise_observed, SuperviseConfig,
    WorkerConfig,
};
use mpdp_sweep::{cells_csv, run_sweep, run_sweep_with_cache, CellCache, SweepSpec};
use mpdp_telemetry::NullFleetObserver;

/// One measured benchmark point.
struct Bench {
    name: String,
    cells: usize,
    workers: usize,
    wall_ms: f64,
}

impl Bench {
    fn cells_per_s(&self) -> f64 {
        self.cells as f64 / (self.wall_ms / 1000.0)
    }
}

/// Minimum wall-clock over `repeats` full sweeps of `spec`.
fn time_sweep(spec: &SweepSpec, workers: usize, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        let report = match run_sweep(spec, workers) {
            Ok(report) => report,
            Err(e) => runtime_error(format_args!("sweep failed: {e}")),
        };
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(report.cells.len(), spec.cell_count());
        best = best.min(ms);
    }
    best
}

fn report_json(benches: &[Bench]) -> String {
    let mut out = String::from("{\n  \"schema\": \"mpdp-bench-sweep/1\",\n  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"workers\": {}, \"wall_ms\": {:.3}, \"cells_per_s\": {:.1}}}{}\n",
            b.name,
            b.cells,
            b.workers,
            b.wall_ms,
            b.cells_per_s(),
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimum wall-clock over `repeats` single-worker sweeps of `spec`
/// through a cell cache rooted at `dir`. Cold repeats start from an
/// emptied directory (every cell misses, is executed, and is appended);
/// warm repeats reopen a directory primed by one full run beforehand
/// (every cell hits). Opening the cache — segment load included — is
/// inside the timed region, because a real warm rerun pays it too.
fn time_cached(spec: &SweepSpec, dir: &std::path::Path, repeats: usize, warm: bool) -> f64 {
    if warm {
        let _ = std::fs::remove_dir_all(dir);
        let cache = match CellCache::open(dir) {
            Ok(cache) => cache,
            Err(e) => runtime_error(format_args!("cannot open cache dir: {e}")),
        };
        if let Err(e) = run_sweep_with_cache(spec, 1, Some(&cache)) {
            runtime_error(format_args!("cache priming sweep failed: {e}"));
        }
    }
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        if !warm {
            let _ = std::fs::remove_dir_all(dir);
        }
        let start = Instant::now();
        let cache = match CellCache::open(dir) {
            Ok(cache) => cache,
            Err(e) => runtime_error(format_args!("cannot open cache dir: {e}")),
        };
        let report = match run_sweep_with_cache(spec, 1, Some(&cache)) {
            Ok(report) => report,
            Err(e) => runtime_error(format_args!("cached sweep failed: {e}")),
        };
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(report.cells.len(), spec.cell_count());
        let stats = cache.stats();
        if warm {
            assert_eq!(stats.hits as usize, spec.cell_count(), "warm run must hit");
        } else {
            assert_eq!(
                stats.misses as usize,
                spec.cell_count(),
                "cold run must miss"
            );
        }
        best = best.min(ms);
    }
    let _ = std::fs::remove_dir_all(dir);
    best
}

/// Minimum wall-clock over `repeats` supervised multi-process sharded
/// sweeps of `spec`, each from a fresh journal directory (a reused
/// directory would resume instead of re-running and report a fantasy
/// time). Every repeat's merged CSV is checked byte-identical to the
/// in-process `golden_csv` — a sharded bench that returned different
/// bytes would be measuring a different computation.
fn time_sharded(spec: &SweepSpec, shards: usize, repeats: usize, golden_csv: &str) -> f64 {
    let dir = std::env::temp_dir().join(format!("mpdp-bench-shards-{}", std::process::id()));
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let _ = std::fs::remove_dir_all(&dir);
        let launch = match self_launcher(Vec::new(), 1, std::time::Duration::ZERO) {
            Ok(launch) => launch,
            Err(e) => runtime_error(format_args!("cannot resolve own executable: {e}")),
        };
        let cfg = SuperviseConfig::default()
            .with_shards(shards)
            .with_dir(dir.clone());
        let start = Instant::now();
        // The null observer (not a discarded log closure) is the honest
        // baseline: with `ENABLED = false` every clock read and line
        // allocation in the supervisor compiles out.
        let sup = match supervise_observed(spec, &cfg, launch, &NullFleetObserver) {
            Ok(sup) => sup,
            Err(e) => runtime_error(format_args!("sharded sweep failed: {e}")),
        };
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        if cells_csv(&sup.report) != golden_csv {
            runtime_error(format_args!(
                "sharded run produced different bytes than the in-process run"
            ));
        }
        best = best.min(ms);
    }
    let _ = std::fs::remove_dir_all(&dir);
    best
}

/// Hidden shard-worker mode for `--shards`: runs one shard of the
/// 104-cell grid (the only spec the sharded bench measures) and exits.
fn shard_worker(args: &[String]) -> ! {
    let invocation = match parse_worker_invocation(args) {
        Some(Ok(invocation)) => invocation,
        Some(Err(e)) => usage_error(e),
        None => unreachable!("caller checked for the worker flag"),
    };
    let spec = bench104_spec();
    // metrics: false — this worker exists to be timed, so it must not
    // pay the per-cell snapshot rewrite the production worker does.
    let cfg = WorkerConfig {
        threads: invocation.threads,
        throttle: invocation.throttle,
        metrics: false,
        ..WorkerConfig::default()
    };
    match run_worker(
        &spec,
        invocation.start..invocation.end,
        &invocation.journal,
        &invocation.heartbeat,
        &cfg,
    ) {
        Ok(_) => std::process::exit(0),
        Err(e) => runtime_error(format_args!("shard worker failed: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == mpdp_shard::WORKER_FLAG) {
        shard_worker(&args);
    }
    check_known_flags(
        &args,
        &[
            "--out",
            "--repeats",
            "--quick",
            "--gate",
            "--threshold",
            "--shards",
            "--cache-dir",
        ],
        &[
            "--out",
            "--repeats",
            "--gate",
            "--threshold",
            "--shards",
            "--cache-dir",
        ],
    );
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let quick = has_flag(&args, "--quick");
    let repeats: usize =
        parse_flag(&args, "--repeats", "a repeat count").unwrap_or(if quick { 1 } else { 3 });
    let gate = flag_value(&args, "--gate");
    let threshold: f64 = parse_flag(&args, "--threshold", "a percentage").unwrap_or(15.0);
    let shards: Option<usize> = parse_flag(&args, "--shards", "a shard count");
    if repeats == 0 {
        runtime_error("--repeats must be at least 1");
    }

    let single = {
        let mut spec = fig4_spec(&ExperimentConfig::new());
        spec.utilizations = vec![0.4];
        spec.proc_counts = vec![2];
        spec
    };
    let grid = bench104_spec();

    eprintln!(
        "bench_sweep: single cell + {}-cell grid, {repeats} repeat(s) ...",
        grid.cell_count()
    );
    let mut benches = vec![
        Bench {
            name: "fig4_single_cell".to_string(),
            cells: 1,
            workers: 1,
            // The single cell runs in ~1.5 ms, so its minimum is much
            // noisier than the grid's; 10× the repeats stabilize it for
            // well under one grid repeat of extra wall-clock.
            wall_ms: time_sweep(&single, 1, (repeats * 10).max(20)),
        },
        Bench {
            name: "grid104_workers1".to_string(),
            cells: grid.cell_count(),
            workers: 1,
            wall_ms: time_sweep(&grid, 1, repeats),
        },
        Bench {
            name: "grid104_workers8".to_string(),
            cells: grid.cell_count(),
            workers: 8,
            wall_ms: time_sweep(&grid, 8, repeats),
        },
    ];
    {
        // Cache points: cold quantifies the journaling overhead of filling
        // the cache, warm the speedup of answering every cell from it.
        let cache_dir = flag_value(&args, "--cache-dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("mpdp-bench-cache-{}", std::process::id()))
            });
        benches.push(Bench {
            name: "grid104_cache_cold".to_string(),
            cells: grid.cell_count(),
            workers: 1,
            wall_ms: time_cached(&grid, &cache_dir, repeats, false),
        });
        benches.push(Bench {
            name: "grid104_cache_warm".to_string(),
            cells: grid.cell_count(),
            workers: 1,
            // A warm pass finishes in ~1 ms, so like `fig4_single_cell`
            // its minimum needs 10× the repeats to stabilize — and warm
            // repeats are nearly free.
            wall_ms: time_cached(&grid, &cache_dir, (repeats * 10).max(20), true),
        });
    }
    if let Some(n_shards) = shards {
        // Multi-process point: the supervised fleet pays process spawn +
        // journal fsync per cell, so this quantifies the sharding overhead
        // against the in-process workers above.
        let golden = match run_sweep(&grid, 1) {
            Ok(report) => cells_csv(&report),
            Err(e) => runtime_error(format_args!("golden sweep failed: {e}")),
        };
        benches.push(Bench {
            name: format!("grid104_shards{n_shards}"),
            cells: grid.cell_count(),
            workers: n_shards,
            wall_ms: time_sharded(&grid, n_shards, repeats, &golden),
        });
    }
    for b in &benches {
        eprintln!(
            "  {:<20} {:>10.1} ms  ({:.1} cells/s, {} worker(s))",
            b.name,
            b.wall_ms,
            b.cells_per_s(),
            b.workers
        );
    }

    let doc = report_json(&benches);
    validate_json(&doc).expect("bench report JSON is well-formed");
    write_output(&out_path, &doc);

    if let Some(baseline_path) = gate {
        // A missing, truncated, or schema-drifted baseline is a typed
        // usage error (exit 2): the user named a file that is not a
        // usable baseline, which is different from a real regression
        // (exit 1).
        let baseline = match load_baseline(&baseline_path) {
            Ok(baseline) => baseline,
            Err(e) => usage_error(e),
        };
        let mut failed = false;
        for (name, base_ms) in &baseline {
            let Some(now) = benches.iter().find(|b| b.name == *name) else {
                eprintln!("gate: `{name}` missing from this run (renamed?)");
                failed = true;
                continue;
            };
            let delta_pct = 100.0 * (now.wall_ms / base_ms - 1.0);
            let verdict = if delta_pct > threshold { "FAIL" } else { "ok" };
            eprintln!(
                "gate: {name:<20} {base_ms:>9.1} ms -> {:>9.1} ms  ({delta_pct:>+6.1}%)  {verdict}",
                now.wall_ms
            );
            if delta_pct > threshold {
                failed = true;
            }
        }
        if failed {
            runtime_error(format_args!(
                "perf gate: regression beyond {threshold}% against {baseline_path}"
            ));
        }
        eprintln!("perf gate clean (threshold {threshold}%)");
    }
}

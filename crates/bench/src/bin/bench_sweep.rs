//! Perf trajectory for the sweep pipeline: times a single Figure-4 cell
//! and the 104-cell benchmark grid (1 and 8 workers), writes the repo's
//! `BENCH_sweep.json`, and optionally gates against a committed baseline.
//!
//! Run with `cargo run --release -p mpdp-bench --bin bench_sweep --
//! [--out BENCH_sweep.json] [--repeats N] [--quick]
//! [--gate baseline.json] [--threshold PCT]`.
//!
//! Each measurement is the **minimum** wall-clock over `--repeats` runs
//! (minimum, not mean: noise on a shared machine only ever adds time, so
//! the minimum is the most reproducible estimator of the true cost).
//! `--gate` re-reads a previously written report and fails (exit 1) if any
//! benchmark regressed by more than `--threshold` percent (default 15),
//! which is what the CI perf smoke job runs against the committed baseline.

use std::time::Instant;

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, write_output,
};
use mpdp_bench::experiment::{bench104_spec, fig4_spec, ExperimentConfig};
use mpdp_obs::validate_json;
use mpdp_sweep::{run_sweep, SweepSpec};

/// One measured benchmark point.
struct Bench {
    name: &'static str,
    cells: usize,
    workers: usize,
    wall_ms: f64,
}

impl Bench {
    fn cells_per_s(&self) -> f64 {
        self.cells as f64 / (self.wall_ms / 1000.0)
    }
}

/// Minimum wall-clock over `repeats` full sweeps of `spec`.
fn time_sweep(spec: &SweepSpec, workers: usize, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let start = Instant::now();
        let report = match run_sweep(spec, workers) {
            Ok(report) => report,
            Err(e) => runtime_error(format_args!("sweep failed: {e}")),
        };
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(report.cells.len(), spec.cell_count());
        best = best.min(ms);
    }
    best
}

fn report_json(benches: &[Bench]) -> String {
    let mut out = String::from("{\n  \"schema\": \"mpdp-bench-sweep/1\",\n  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"cells\": {}, \"workers\": {}, \"wall_ms\": {:.3}, \"cells_per_s\": {:.1}}}{}\n",
            b.name,
            b.cells,
            b.workers,
            b.wall_ms,
            b.cells_per_s(),
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, wall_ms)` pairs from a `mpdp-bench-sweep/1` report.
/// The format is fixed (we wrote it), so a line scanner is enough; a line
/// that looks like a bench entry but does not parse is a hard error rather
/// than a silently skipped gate.
fn parse_baseline(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            runtime_error(format_args!("malformed baseline line: {line}"));
        };
        let name = rest[..name_end].to_string();
        let Some(wall_at) = line.find("\"wall_ms\": ") else {
            runtime_error(format_args!("baseline entry without wall_ms: {line}"));
        };
        let tail = &line[wall_at + 11..];
        let digits: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        match digits.parse::<f64>() {
            Ok(ms) => out.push((name, ms)),
            Err(_) => runtime_error(format_args!("unparsable wall_ms in baseline: {line}")),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(
        &args,
        &["--out", "--repeats", "--quick", "--gate", "--threshold"],
        &["--out", "--repeats", "--gate", "--threshold"],
    );
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let quick = has_flag(&args, "--quick");
    let repeats: usize =
        parse_flag(&args, "--repeats", "a repeat count").unwrap_or(if quick { 1 } else { 3 });
    let gate = flag_value(&args, "--gate");
    let threshold: f64 = parse_flag(&args, "--threshold", "a percentage").unwrap_or(15.0);
    if repeats == 0 {
        runtime_error("--repeats must be at least 1");
    }

    let single = {
        let mut spec = fig4_spec(&ExperimentConfig::new());
        spec.utilizations = vec![0.4];
        spec.proc_counts = vec![2];
        spec
    };
    let grid = bench104_spec();

    eprintln!(
        "bench_sweep: single cell + {}-cell grid, {repeats} repeat(s) ...",
        grid.cell_count()
    );
    let benches = [
        Bench {
            name: "fig4_single_cell",
            cells: 1,
            workers: 1,
            // The single cell runs in ~1.5 ms, so its minimum is much
            // noisier than the grid's; 10× the repeats stabilize it for
            // well under one grid repeat of extra wall-clock.
            wall_ms: time_sweep(&single, 1, (repeats * 10).max(20)),
        },
        Bench {
            name: "grid104_workers1",
            cells: grid.cell_count(),
            workers: 1,
            wall_ms: time_sweep(&grid, 1, repeats),
        },
        Bench {
            name: "grid104_workers8",
            cells: grid.cell_count(),
            workers: 8,
            wall_ms: time_sweep(&grid, 8, repeats),
        },
    ];
    for b in &benches {
        eprintln!(
            "  {:<20} {:>10.1} ms  ({:.1} cells/s, {} worker(s))",
            b.name,
            b.wall_ms,
            b.cells_per_s(),
            b.workers
        );
    }

    let doc = report_json(&benches);
    validate_json(&doc).expect("bench report JSON is well-formed");
    write_output(&out_path, &doc);

    if let Some(baseline_path) = gate {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(doc) => parse_baseline(&doc),
            Err(e) => runtime_error(format_args!("cannot read {baseline_path}: {e}")),
        };
        if baseline.is_empty() {
            runtime_error(format_args!("{baseline_path} contains no bench entries"));
        }
        let mut failed = false;
        for (name, base_ms) in &baseline {
            let Some(now) = benches.iter().find(|b| b.name == name) else {
                eprintln!("gate: `{name}` missing from this run (renamed?)");
                failed = true;
                continue;
            };
            let delta_pct = 100.0 * (now.wall_ms / base_ms - 1.0);
            let verdict = if delta_pct > threshold { "FAIL" } else { "ok" };
            eprintln!(
                "gate: {name:<20} {base_ms:>9.1} ms -> {:>9.1} ms  ({delta_pct:>+6.1}%)  {verdict}",
                now.wall_ms
            );
            if delta_pct > threshold {
                failed = true;
            }
        }
        if failed {
            runtime_error(format_args!(
                "perf gate: regression beyond {threshold}% against {baseline_path}"
            ));
        }
        eprintln!("perf gate clean (threshold {threshold}%)");
    }
}

//! Crash-tolerant multi-process sharded sweeps from the command line:
//! `supervise` a fleet of worker processes over a named sweep grid,
//! `merge` their journals byte-exactly, or (internally) run as one
//! `worker` of the fleet.
//!
//! Run with `cargo run --release -p mpdp-bench --bin sweep_shard --
//! supervise --spec fig4|bench104 [--seeds K] [--shards N] [--dir D]
//! [--max-retries R] [--stall-ms MS] [--throttle-ms MS] [--threads T]
//! [--chaos-kills K --chaos-seed S [--chaos-tear]] [--cache-dir D]
//! [--verify]
//! [--csv out.csv] [--json out.json] [--telemetry-out m.json]
//! [--telemetry-prom m.prom] [--telemetry-csv m.csv]
//! [--fleet-trace trace.json]`.
//!
//! The supervisor splits the grid into disjoint contiguous shards,
//! re-executes this binary once per shard with hidden worker flags (the
//! spec is rebuilt from `--spec`/`--seeds`, never serialized), watches
//! per-shard heartbeat files, SIGKILLs stalled workers, retries crashes
//! with deterministic capped exponential backoff, and merges the shard
//! journals into a report whose stdout/CSV/JSON bytes are identical to a
//! single-process `run_sweep` — which `--verify` checks on the spot.
//! `--chaos-kills` turns the run into its own adversary (seeded SIGKILLs
//! mid-run, `--chaos-tear` additionally truncates the first victim's
//! journal mid-record); the recovery transcript goes to stderr.
//!
//! Telemetry rides along for free: every supervise run also folds the
//! typed fleet event stream into a metrics snapshot (merged with the
//! per-worker `.metrics` sidecar files the workers persist next to their
//! journals), exportable as schema-validated JSON (`--telemetry-out`),
//! Prometheus text (`--telemetry-prom`), or flat CSV (`--telemetry-csv`).
//! `--fleet-trace` additionally records the full event stream and writes
//! a Chrome-trace fleet timeline (one track per shard, a span per launch
//! attempt, instants for kills/tears/stalls) loadable at
//! <https://ui.perfetto.dev>.
//!
//! `merge --spec S [--seeds K] (--dir D | --journal P ...)` recombines
//! existing shard journals without running anything, rejecting
//! wrong-spec, overlapping, duplicated, or incomplete inputs with a typed
//! diagnostic.

use std::path::PathBuf;
use std::time::Duration;

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, usage_error, write_output,
};
use mpdp_bench::experiment::{
    bench104_edited_spec, bench104_spec, fig4_seeded_spec, ExperimentConfig,
};
use mpdp_shard::{
    metrics_path, parse_worker_invocation, run_worker, self_launcher, supervise_observed,
    ChaosPlan, SuperviseConfig, WorkerConfig,
};
use mpdp_sweep::{
    cells_csv, merge_journal_files, report_json, run_sweep, spec_fingerprint, summary_csv,
    SweepSpec,
};
use mpdp_telemetry::{
    fleet_trace_json, metrics_csv, metrics_json, prometheus_text, snapshot_from_text,
    validate_metrics_json, FleetRecorder, FleetSnapshot, MetricsRegistry, TranscriptObserver,
};

/// Builds the named sweep grid. `--spec`/`--seeds` are the entire spec
/// surface, so supervisor, workers, and merge agree on the fingerprint by
/// construction.
fn spec_for(name: &str, seeds: usize) -> SweepSpec {
    match name {
        "fig4" => fig4_seeded_spec(&ExperimentConfig::new(), seeds),
        "bench104" => bench104_spec(),
        "bench104-edited" => bench104_edited_spec(),
        other => usage_error(format_args!(
            "unknown --spec `{other}` (known: fig4, bench104, bench104-edited)"
        )),
    }
}

fn spec_flags(args: &[String]) -> (String, usize) {
    let name = flag_value(args, "--spec").unwrap_or_else(|| "fig4".to_string());
    let seeds: usize = parse_flag(args, "--seeds", "a seed count").unwrap_or(1);
    (name, seeds)
}

/// Hidden worker mode: launched only by `supervise` via self re-exec.
/// Runs its assigned range, journals every cell, heartbeats, exits.
fn worker_main(args: &[String]) -> ! {
    let invocation = match parse_worker_invocation(args) {
        Some(Ok(invocation)) => invocation,
        Some(Err(e)) => usage_error(e),
        None => usage_error("`worker` is launched by `supervise`, not by hand"),
    };
    let (name, seeds) = spec_flags(args);
    let spec = spec_for(&name, seeds);
    let cfg = WorkerConfig {
        threads: invocation.threads,
        throttle: invocation.throttle,
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        ..WorkerConfig::default()
    };
    match run_worker(
        &spec,
        invocation.start..invocation.end,
        &invocation.journal,
        &invocation.heartbeat,
        &cfg,
    ) {
        Ok(_) => std::process::exit(0),
        Err(e) => runtime_error(format_args!("shard worker failed: {e}")),
    }
}

fn default_dir(spec: &SweepSpec) -> PathBuf {
    // Keyed on the full-spec fingerprint: journals from a different spec
    // can never collide with (and poison) this run's directory.
    std::env::temp_dir().join(format!("mpdp-sweep-shard-{:016x}", spec_fingerprint(spec)))
}

fn supervise_main(args: &[String]) -> ! {
    check_known_flags(
        &args[1..],
        &[
            "--spec",
            "--seeds",
            "--shards",
            "--dir",
            "--retries",
            "--max-retries",
            "--stall-timeout-ms",
            "--stall-ms",
            "--throttle-ms",
            "--threads",
            "--chaos-kills",
            "--chaos-seed",
            "--chaos-tear",
            "--cache-dir",
            "--verify",
            "--csv",
            "--json",
            "--telemetry-out",
            "--telemetry-prom",
            "--telemetry-csv",
            "--fleet-trace",
        ],
        &[
            "--spec",
            "--seeds",
            "--shards",
            "--dir",
            "--retries",
            "--max-retries",
            "--stall-timeout-ms",
            "--stall-ms",
            "--throttle-ms",
            "--threads",
            "--chaos-kills",
            "--chaos-seed",
            "--cache-dir",
            "--csv",
            "--json",
            "--telemetry-out",
            "--telemetry-prom",
            "--telemetry-csv",
            "--fleet-trace",
        ],
    );
    let (name, seeds) = spec_flags(args);
    let spec = spec_for(&name, seeds);
    let shards: usize = parse_flag(args, "--shards", "a shard count").unwrap_or(2);
    let dir = flag_value(args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| default_dir(&spec));
    // `--max-retries` / `--stall-ms` are the documented spellings;
    // `--retries` / `--stall-timeout-ms` are kept as aliases for existing
    // scripts. Naming both spellings of one knob is a usage error, not a
    // silent precedence rule.
    if has_flag(args, "--retries") && has_flag(args, "--max-retries") {
        usage_error("--retries and --max-retries are the same knob; name it once");
    }
    if has_flag(args, "--stall-timeout-ms") && has_flag(args, "--stall-ms") {
        usage_error("--stall-timeout-ms and --stall-ms are the same knob; name it once");
    }
    let retries: u32 = parse_flag(args, "--max-retries", "a retry count")
        .or_else(|| parse_flag(args, "--retries", "a retry count"))
        .unwrap_or(2);
    let throttle =
        Duration::from_millis(parse_flag(args, "--throttle-ms", "milliseconds").unwrap_or(0));
    let threads: usize = parse_flag(args, "--threads", "a thread count").unwrap_or(1);
    let mut cfg = SuperviseConfig::default()
        .with_shards(shards)
        .with_dir(dir.clone())
        .with_retries(retries);
    let stall_ms: Option<u64> = parse_flag(args, "--stall-ms", "milliseconds")
        .or_else(|| parse_flag(args, "--stall-timeout-ms", "milliseconds"));
    if let Some(ms) = stall_ms {
        if ms == 0 {
            usage_error("--stall-ms must be positive (0 would kill every heartbeat instantly)");
        }
        cfg = cfg.with_stall_timeout(Duration::from_millis(ms));
    }
    let chaos_kills: u32 = parse_flag(args, "--chaos-kills", "a kill count").unwrap_or(0);
    if chaos_kills > 0 {
        let seed: u64 = parse_flag(args, "--chaos-seed", "a seed").unwrap_or(0xC4A05);
        let mut chaos = ChaosPlan::new(chaos_kills, seed);
        if has_flag(args, "--chaos-tear") {
            chaos = chaos.with_tear();
        }
        cfg = cfg.with_chaos(chaos);
    } else if has_flag(args, "--chaos-seed") || has_flag(args, "--chaos-tear") {
        usage_error("--chaos-seed/--chaos-tear require --chaos-kills");
    }

    // The worker rebuilds the spec from these flags; everything else
    // (shards, chaos, outputs) is supervisor-side only.
    let mut passthrough = vec!["worker".to_string(), "--spec".to_string(), name.clone()];
    if seeds > 1 {
        passthrough.push("--seeds".to_string());
        passthrough.push(seeds.to_string());
    }
    // Workers share one cache directory, so a warm fleet answers already
    // computed cells without re-simulating them.
    if let Some(cache_dir) = flag_value(args, "--cache-dir") {
        passthrough.push("--cache-dir".to_string());
        passthrough.push(cache_dir);
    }
    let launch = match self_launcher(passthrough, threads, throttle) {
        Ok(launch) => launch,
        Err(e) => runtime_error(format_args!("cannot resolve own executable: {e}")),
    };

    eprintln!(
        "sweep_shard: supervising `{name}` ({} cells) over {shards} shard(s) in {} ...",
        spec.cell_count(),
        dir.display()
    );
    // The transcript observer reproduces the historical stderr lines
    // byte-for-byte; the registry and recorder ride the same event
    // stream, so the run pays for one emission however many sinks listen.
    let transcript = TranscriptObserver::new(|line: &str| eprintln!("  {line}"));
    let registry = MetricsRegistry::new();
    let recorder = FleetRecorder::new();
    let sup = match supervise_observed(&spec, &cfg, launch, &(&transcript, &registry, &recorder)) {
        Ok(sup) => sup,
        Err(e) => runtime_error(format_args!("supervised run failed: {e}")),
    };

    // Fold in the cell-level counters each worker process persisted next
    // to its journal. Advisory files: a missing or torn sidecar is
    // skipped, never fatal.
    let mut fleet: FleetSnapshot = registry.snapshot();
    for shard in &sup.shards {
        if let Ok(text) = std::fs::read_to_string(metrics_path(&shard.journal)) {
            if let Ok(worker) = snapshot_from_text(&text) {
                fleet.merge(&worker);
            }
        }
    }

    let launches: u32 = sup.shards.iter().map(|s| s.launches).sum();
    eprintln!(
        "supervised run complete: {} cells, {} shard(s), {launches} launch(es), \
         {} chaos kill(s), {} torn journal(s), {} relaunch(es), {} retry(ies), \
         {} stall kill(s)",
        sup.report.cells.len(),
        sup.shards.len(),
        sup.chaos_kills,
        sup.torn,
        fleet.relaunches,
        fleet.retries,
        fleet.stall_kills
    );

    if let Some(path) = flag_value(args, "--telemetry-out") {
        let json = metrics_json(&fleet);
        if let Err(e) = validate_metrics_json(&json) {
            runtime_error(format_args!("telemetry JSON failed validation: {e}"));
        }
        write_output(&path, &json);
    }
    if let Some(path) = flag_value(args, "--telemetry-prom") {
        write_output(&path, &prometheus_text(&fleet));
    }
    if let Some(path) = flag_value(args, "--telemetry-csv") {
        write_output(&path, &metrics_csv(&fleet));
    }
    if let Some(path) = flag_value(args, "--fleet-trace") {
        write_output(
            &path,
            &fleet_trace_json(&recorder.events(), sup.shards.len()),
        );
    }

    if has_flag(args, "--verify") {
        let golden = match run_sweep(&spec, 1) {
            Ok(report) => report,
            Err(e) => runtime_error(format_args!("verification run failed: {e}")),
        };
        if cells_csv(&golden) != cells_csv(&sup.report)
            || report_json(&golden) != report_json(&sup.report)
        {
            runtime_error(format_args!(
                "merged exports differ from the single-process run — determinism bug"
            ));
        }
        eprintln!("verify: merged exports byte-identical to a single-process run");
    }

    print!("{}", summary_csv(&sup.report));
    if let Some(path) = flag_value(args, "--csv") {
        write_output(&path, &cells_csv(&sup.report));
    }
    if let Some(path) = flag_value(args, "--json") {
        write_output(&path, &report_json(&sup.report));
    }
    std::process::exit(0);
}

fn merge_main(args: &[String]) -> ! {
    check_known_flags(
        &args[1..],
        &["--spec", "--seeds", "--dir", "--journal", "--csv", "--json"],
        &["--spec", "--seeds", "--dir", "--journal", "--csv", "--json"],
    );
    let (name, seeds) = spec_flags(args);
    let spec = spec_for(&name, seeds);
    let mut journals: Vec<PathBuf> = args
        .windows(2)
        .filter(|w| w[0] == "--journal")
        .map(|w| PathBuf::from(&w[1]))
        .collect();
    if let Some(dir) = flag_value(args, "--dir") {
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) => runtime_error(format_args!("cannot read {dir}: {e}")),
        };
        let mut found: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|x| x == "mpdpj")
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        found.sort();
        journals.extend(found);
    }
    if journals.is_empty() {
        usage_error("merge needs shard journals: --journal P ... and/or --dir D");
    }
    let report = match merge_journal_files(&spec, &journals) {
        Ok(report) => report,
        Err(e) => runtime_error(format_args!("merge rejected: {e}")),
    };
    eprintln!(
        "merged {} journal(s) into {} cells",
        journals.len(),
        report.cells.len()
    );
    print!("{}", summary_csv(&report));
    if let Some(path) = flag_value(args, "--csv") {
        write_output(&path, &cells_csv(&report));
    }
    if let Some(path) = flag_value(args, "--json") {
        write_output(&path, &report_json(&report));
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("worker") => worker_main(&args),
        Some("supervise") => supervise_main(&args),
        Some("merge") => merge_main(&args),
        Some(other) => usage_error(format_args!(
            "unknown subcommand `{other}` (known: supervise, merge, worker)"
        )),
        None => usage_error("usage: sweep_shard <supervise|merge> [flags] (see --help in docs)"),
    }
}

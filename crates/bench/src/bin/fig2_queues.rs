//! Regenerates **Figure 2** — "The conceptual organization of the
//! MultiProcessor Dual Priority scheduler. There is a global ready queue for
//! low priority periodic and aperiodic tasks and a local ready queue for
//! high priority task" — by building the paper's experiment workload,
//! advancing the scheduler to an interesting instant, and printing the live
//! queue contents.
//!
//! Run with `cargo run -p mpdp-bench --bin fig2_queues`.

use mpdp_bench::experiment::{build_table, ExperimentConfig};
use mpdp_core::ids::{proc_ids, JobId};
use mpdp_core::policy::{JobClass, MpdpPolicy};
use mpdp_core::time::{Cycles, DEFAULT_TICK};

fn name_of(policy: &MpdpPolicy, job: JobId) -> String {
    match policy.job(job).class {
        JobClass::Periodic { task_index } => policy.table().periodic()[task_index].name().into(),
        JobClass::Aperiodic { task_index } => policy.table().aperiodic()[task_index].name().into(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    mpdp_bench::cli::check_known_flags(&args, &[], &[]);
    let config = ExperimentConfig::new();
    let table = build_table(2, 0.5, &config);
    let mut policy = MpdpPolicy::new(table);

    // Advance to an instant where all four queue kinds are populated:
    // release everything, let one tick of promotions land, inject the
    // aperiodic, and run a few completions.
    policy.release_due(Cycles::ZERO);
    let desired = policy.assign();
    for (p, d) in desired.iter().enumerate() {
        policy.set_running(proc_ids(2).nth(p).expect("two processors"), *d);
    }
    policy.release_aperiodic(0, DEFAULT_TICK);
    policy.promote_due(DEFAULT_TICK * 40);

    println!("== Figure 2: MPDP queue organization (live snapshot, t = 4 s) ==");
    println!();
    println!("GLOBAL  Aperiodic Ready Queue (middle band, FIFO):");
    let live: Vec<JobId> = policy.live_jobs().collect();
    for job in &live {
        let j = policy.job(*job);
        if !j.is_periodic() && !policy.is_running(*job) {
            println!("    {} ({})", job, name_of(&policy, *job));
        }
    }
    println!();
    println!("GLOBAL  Periodic Ready Queue (lower band, fixed low priorities):");
    for job in &live {
        let j = policy.job(*job);
        if j.is_periodic() && !j.promoted && !policy.is_running(*job) {
            println!(
                "    {} ({}) low-prio {}",
                job,
                name_of(&policy, *job),
                match j.class {
                    JobClass::Periodic { task_index } => policy.table().periodic()[task_index]
                        .priorities()
                        .low
                        .level(),
                    JobClass::Aperiodic { .. } => unreachable!(),
                }
            );
        }
    }
    println!();
    for proc in proc_ids(policy.n_procs()) {
        println!("LOCAL   High Priority Ready Queue of {proc} (upper band):");
        for job in &live {
            let j = policy.job(*job);
            let promoted_here = j.promoted
                && matches!(j.class, JobClass::Periodic { task_index }
                    if policy.table().periodic()[task_index].processor() == proc);
            if promoted_here && !policy.is_running(*job) {
                println!("    {} ({})", job, name_of(&policy, *job));
            }
        }
        match policy.running_on(proc) {
            Some(job) => println!("    >> running: {} ({})", job, name_of(&policy, job)),
            None => println!("    >> running: idle"),
        }
    }
    println!();
    println!(
        "Waiting Periodic Queue: next release at {:?}",
        policy.next_release_time()
    );
    println!("next promotion due at:  {:?}", policy.next_promotion_time());
}

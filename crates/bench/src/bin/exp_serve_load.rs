//! Load benchmark and chaos harness for the `mpdpd` admission daemon.
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_serve_load --
//! [--out BENCH_serve.json] [--clients N] [--requests N] [--repeats N]
//! [--quick] [--gate BENCH_serve.json] [--threshold PCT] [--chaos]
//! [--seed N] [--daemon PATH]`.
//!
//! The measurement spawns a fresh daemon per repeat (so journal growth in
//! one repeat cannot slow the next), drives `--clients` concurrent
//! closed-loop clients through a fixed request mix, and reports the
//! **minimum** wall-clock plus latency quantiles into a schema-validated
//! `mpdp-bench-serve/1` report; `--gate` fails (exit 1) on a wall-clock
//! regression beyond `--threshold` percent, exactly like `bench_sweep`.
//!
//! `--chaos` additionally runs the recovery scenario the daemon exists
//! for: SIGKILL mid-load, relaunch on the same journal, assert **zero
//! lost guaranteed sessions** (byte-identical verdicts), then a 10×
//! overload burst asserting no guaranteed request is shed while the
//! best-effort sheds show up in the Prometheus export.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, usage_error, write_output,
};
use mpdp_bench::load_baseline_with_schema;
use mpdp_mpdpd::Client;
use mpdp_obs::validate_json;
use mpdp_telemetry::Histogram;

/// Schema marker of the report this binary writes and gates against.
const SERVE_SCHEMA: &str = "mpdp-bench-serve/1";

struct Daemon {
    child: Child,
    socket: PathBuf,
    dir: PathBuf,
}

fn daemon_binary(args: &[String]) -> PathBuf {
    if let Some(path) = flag_value(args, "--daemon") {
        return PathBuf::from(path);
    }
    let me = std::env::current_exe()
        .unwrap_or_else(|e| runtime_error(format_args!("cannot resolve own executable: {e}")));
    let sibling = me.with_file_name("mpdpd");
    if !sibling.exists() {
        runtime_error(format_args!(
            "mpdpd binary not found at {} — build it first (cargo build --release -p mpdp-mpdpd) \
             or pass --daemon PATH",
            sibling.display()
        ));
    }
    sibling
}

fn spawn_daemon(binary: &Path, tag: &str, extra: &[&str]) -> Daemon {
    let dir = std::env::temp_dir().join(format!("mpdp-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    relaunch_daemon(binary, dir, extra)
}

/// Starts (or restarts, preserving the journal) a daemon in `dir`. Inner
/// mode: `Child::kill` is then a genuine SIGKILL of the serving process.
fn relaunch_daemon(binary: &Path, dir: PathBuf, extra: &[&str]) -> Daemon {
    let socket = dir.join("mpdpd.sock");
    let _ = std::fs::remove_file(&socket);
    let child = Command::new(binary)
        .arg("--socket")
        .arg(&socket)
        .arg("--journal")
        .arg(dir.join("sessions.mpdpd"))
        .args(extra)
        .env("MPDPD_INNER", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| runtime_error(format_args!("cannot spawn mpdpd: {e}")));
    let daemon = Daemon { child, socket, dir };
    let t0 = Instant::now();
    while Client::connect_unix(&daemon.socket).is_err() {
        if t0.elapsed() > Duration::from_secs(30) {
            runtime_error(format_args!("mpdpd did not start listening"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    daemon
}

fn stop_daemon(mut daemon: Daemon) {
    let _ = daemon.child.kill();
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&daemon.dir);
}

fn connect(daemon: &Daemon) -> Client {
    Client::connect_unix(&daemon.socket)
        .unwrap_or_else(|e| runtime_error(format_args!("connect failed: {e}")))
}

fn call(client: &mut Client, line: &str) -> String {
    client
        .call(line)
        .unwrap_or_else(|e| runtime_error(format_args!("request failed: {e}")))
}

fn expect_ok(reply: &str, context: &str) {
    if !reply.contains("\"ok\":true") {
        runtime_error(format_args!("{context}: daemon refused: {reply}"));
    }
}

/// One closed-loop client: open a session, run the fixed mix, return the
/// per-request latency histogram.
fn drive_client(socket: &Path, index: usize, requests: usize) -> Histogram {
    let mut client = Client::connect_unix(socket)
        .unwrap_or_else(|e| runtime_error(format_args!("client connect failed: {e}")));
    let session = format!("bench-{index}");
    let open = format!(
        "{{\"op\":\"open\",\"session\":\"{session}\",\"util\":0.4,\"procs\":2,\"deadline_ms\":30000}}"
    );
    expect_ok(&call(&mut client, &open), "open");
    let mut latency = Histogram::new();
    for i in 0..requests {
        let line = if i % 10 == 0 {
            format!(
                "{{\"op\":\"admit\",\"session\":\"{session}\",\"task\":{},\
                 \"exec_us\":1000,\"window_us\":10000000,\"deadline_ms\":30000}}",
                100 + i
            )
        } else if i % 3 == 1 {
            format!(
                "{{\"op\":\"query\",\"session\":\"{session}\",\"kind\":\"verdict\",\
                 \"deadline_ms\":30000}}"
            )
        } else {
            "{\"op\":\"ping\",\"deadline_ms\":30000}".to_string()
        };
        let t0 = Instant::now();
        expect_ok(&call(&mut client, &line), "mix request");
        latency.record(t0.elapsed());
    }
    latency
}

struct LoadResult {
    wall_ms: f64,
    latency: Histogram,
}

fn run_load(binary: &Path, clients: usize, requests: usize) -> LoadResult {
    let daemon = spawn_daemon(binary, "load", &["--workers", "2", "--queue-cap", "64"]);
    let socket = daemon.socket.clone();
    let t0 = Instant::now();
    let histograms: Vec<Histogram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let socket = socket.clone();
                scope.spawn(move || drive_client(&socket, i, requests))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    stop_daemon(daemon);
    let mut latency = Histogram::new();
    for h in &histograms {
        latency.merge(h);
    }
    LoadResult { wall_ms, latency }
}

/// The chaos scenario. Panics (via `runtime_error`) on any violated
/// guarantee; returns the number of sessions proven recovered.
fn run_chaos(binary: &Path, seed: u64) -> usize {
    eprintln!("exp_serve_load: chaos: seed {seed}");
    let daemon = spawn_daemon(
        binary,
        "chaos",
        &[
            "--workers",
            "1",
            "--queue-cap",
            "8",
            "--deadline-ms",
            "60000",
        ],
    );

    // Guaranteed sessions with real admission history.
    let n_sessions = 4;
    let mut setup = connect(&daemon);
    let mut verdicts = Vec::new();
    for s in 0..n_sessions {
        let open =
            format!("{{\"op\":\"open\",\"session\":\"chaos-{s}\",\"util\":0.4,\"procs\":2}}");
        expect_ok(&call(&mut setup, &open), "chaos open");
        for t in 0..3 {
            let admit = format!(
                "{{\"op\":\"admit\",\"session\":\"chaos-{s}\",\"task\":{},\
                 \"exec_us\":2000,\"window_us\":10000000}}",
                100 + t
            );
            expect_ok(&call(&mut setup, &admit), "chaos admit");
        }
        verdicts.push(call(
            &mut setup,
            &format!("{{\"op\":\"query\",\"id\":9,\"session\":\"chaos-{s}\"}}"),
        ));
    }

    // Best-effort load in flight while the SIGKILL lands; transport errors
    // here are expected (the daemon dies under them).
    let socket = daemon.socket.clone();
    let load = std::thread::spawn(move || {
        let Ok(mut c) = Client::connect_unix(&socket) else {
            return;
        };
        for _ in 0..100_000 {
            if c.call("{\"op\":\"ping\"}").is_err() {
                return;
            }
        }
    });

    // Seeded mid-load SIGKILL.
    let kill_delay = Duration::from_millis(20 + seed % 100);
    std::thread::sleep(kill_delay);
    let mut child = daemon.child;
    child.kill().expect("SIGKILL mpdpd");
    let _ = child.wait();
    let _ = load.join();
    eprintln!(
        "exp_serve_load: chaos: SIGKILL after {} ms of load; relaunching",
        kill_delay.as_millis()
    );

    // Relaunch on the same journal: every guaranteed session must answer
    // byte-identically to the pre-kill daemon.
    let daemon = relaunch_daemon(
        binary,
        daemon.dir,
        &[
            "--workers",
            "1",
            "--queue-cap",
            "8",
            "--deadline-ms",
            "60000",
        ],
    );
    let mut check = connect(&daemon);
    for (s, before) in verdicts.iter().enumerate() {
        let after = call(
            &mut check,
            &format!("{{\"op\":\"query\",\"id\":9,\"session\":\"chaos-{s}\"}}"),
        );
        if &after != before {
            runtime_error(format_args!(
                "chaos: session chaos-{s} lost or drifted after SIGKILL:\n  before: {before}\n  after:  {after}"
            ));
        }
    }
    eprintln!(
        "exp_serve_load: chaos: all {n_sessions} guaranteed sessions rebuilt byte-identically"
    );

    // Overload burst: occupy the single worker, flood 10x the queue with
    // best-effort pings, then demand guaranteed admissions.
    let mut slow = connect(&daemon);
    slow.send("{\"op\":\"query\",\"id\":1,\"session\":\"chaos-0\",\"kind\":\"simulate\"}")
        .expect("send simulate");
    std::thread::sleep(Duration::from_millis(100));
    let mut burst = connect(&daemon);
    for i in 0..80 {
        burst
            .send(&format!("{{\"op\":\"ping\",\"id\":{}}}", 1000 + i))
            .expect("send ping");
    }
    std::thread::sleep(Duration::from_millis(100));
    let mut guaranteed = connect(&daemon);
    for i in 0..3 {
        let admit = format!(
            "{{\"op\":\"admit\",\"id\":{},\"session\":\"chaos-1\",\"task\":{},\
             \"exec_us\":1000,\"window_us\":10000000}}",
            2000 + i,
            500 + i
        );
        guaranteed.send(&admit).expect("send admit");
    }
    for _ in 0..3 {
        let reply = guaranteed.recv().expect("admit answered");
        if !(reply.contains("\"ok\":true") && reply.contains("\"admitted\":true")) {
            runtime_error(format_args!(
                "chaos: guaranteed admission refused under overload: {reply}"
            ));
        }
    }
    let mut shed = 0;
    for _ in 0..80 {
        if burst
            .recv()
            .expect("ping response")
            .contains("\"overloaded\"")
        {
            shed += 1;
        }
    }
    if shed == 0 {
        runtime_error(format_args!("chaos: overload burst never shed best-effort"));
    }
    let _ = slow.recv();
    let metrics = call(&mut check, "{\"op\":\"metrics\",\"id\":3}");
    if !metrics.contains("mpdp_serve_shed_best_effort_total") {
        runtime_error(format_args!(
            "chaos: sheds missing from Prometheus export: {metrics}"
        ));
    }
    if metrics.contains("mpdp_serve_rejected_guaranteed_total")
        && !metrics.contains("mpdp_serve_rejected_guaranteed_total 0")
    {
        runtime_error(format_args!(
            "chaos: a guaranteed request was rejected under burst: {metrics}"
        ));
    }
    eprintln!("exp_serve_load: chaos: burst shed {shed} best-effort, zero guaranteed lost");
    stop_daemon(daemon);
    n_sessions
}

fn report_json(clients: usize, requests: usize, best: &LoadResult) -> String {
    let answered = best.latency.count();
    let rps = answered as f64 / (best.wall_ms / 1000.0);
    format!(
        "{{\n  \"schema\": \"{SERVE_SCHEMA}\",\n  \"benches\": [\n    \
         {{\"name\": \"serve_load_c{clients}\", \"clients\": {clients}, \"requests\": {}, \
         \"wall_ms\": {:.3}, \"rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}\n  ]\n}}\n",
        clients * requests,
        best.wall_ms,
        rps,
        best.latency.quantile_us(0.50).unwrap_or(0),
        best.latency.quantile_us(0.99).unwrap_or(0),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(
        &args,
        &[
            "--out",
            "--clients",
            "--requests",
            "--repeats",
            "--quick",
            "--gate",
            "--threshold",
            "--chaos",
            "--seed",
            "--daemon",
        ],
        &[
            "--out",
            "--clients",
            "--requests",
            "--repeats",
            "--gate",
            "--threshold",
            "--seed",
            "--daemon",
        ],
    );
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let quick = has_flag(&args, "--quick");
    let clients: usize = parse_flag(&args, "--clients", "a client count").unwrap_or(4);
    let requests: usize =
        parse_flag(&args, "--requests", "a request count").unwrap_or(if quick { 50 } else { 150 });
    let repeats: usize =
        parse_flag(&args, "--repeats", "a repeat count").unwrap_or(if quick { 1 } else { 3 });
    let threshold: f64 = parse_flag(&args, "--threshold", "a percentage").unwrap_or(40.0);
    let seed: u64 = parse_flag(&args, "--seed", "a seed").unwrap_or(0);
    let gate = flag_value(&args, "--gate");
    if clients == 0 || requests == 0 || repeats == 0 {
        usage_error("--clients, --requests, and --repeats must be positive");
    }
    let binary = daemon_binary(&args);

    // Load the baseline *before* the run writes `--out`: gating against the
    // committed baseline while refreshing it in place must compare against
    // the committed numbers, not the ones this run just wrote.
    let baseline = gate.as_ref().map(|baseline_path| {
        match load_baseline_with_schema(baseline_path, SERVE_SCHEMA) {
            Ok(baseline) => baseline,
            Err(e) => usage_error(e),
        }
    });

    if has_flag(&args, "--chaos") {
        let recovered = run_chaos(&binary, seed);
        eprintln!("exp_serve_load: chaos passed ({recovered} sessions recovered)");
    }

    eprintln!(
        "exp_serve_load: {clients} client(s) x {requests} request(s), {repeats} repeat(s) ..."
    );
    let mut best: Option<LoadResult> = None;
    for _ in 0..repeats {
        let result = run_load(&binary, clients, requests);
        if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best = Some(result);
        }
    }
    let best = best.expect("at least one repeat");
    let answered = best.latency.count();
    eprintln!(
        "  serve_load_c{clients}: {:.1} ms, {} answered ({:.0} req/s), p50 {} us, p99 {} us",
        best.wall_ms,
        answered,
        answered as f64 / (best.wall_ms / 1000.0),
        best.latency.quantile_us(0.50).unwrap_or(0),
        best.latency.quantile_us(0.99).unwrap_or(0),
    );

    let doc = report_json(clients, requests, &best);
    validate_json(&doc).expect("serve report JSON is well-formed");
    write_output(&out_path, &doc);

    if let (Some(baseline_path), Some(baseline)) = (gate, baseline) {
        let name = format!("serve_load_c{clients}");
        let mut failed = false;
        for (base_name, base_ms) in &baseline {
            if base_name != &name {
                eprintln!("gate: `{base_name}` not measured this run (different --clients?)");
                continue;
            }
            let delta_pct = 100.0 * (best.wall_ms / base_ms - 1.0);
            let verdict = if delta_pct > threshold { "FAIL" } else { "ok" };
            eprintln!(
                "gate: {base_name:<16} {base_ms:>9.1} ms -> {:>9.1} ms  ({delta_pct:>+6.1}%)  {verdict}",
                best.wall_ms
            );
            if delta_pct > threshold {
                failed = true;
            }
        }
        if failed {
            runtime_error(format_args!(
                "perf gate: regression beyond {threshold}% against {baseline_path}"
            ));
        }
        eprintln!("perf gate clean (threshold {threshold}%)");
    }
}

//! The scheduler mutation campaign: proves the repo's checking layers
//! actually detect scheduler bugs, and measures *which* layer catches
//! *what*.
//!
//! Every seeded bug in the `mpdp-monitor` mutation catalog is thrown at
//! three independent detection layers:
//!
//! 1. **explorer** — bounded exhaustive enumeration of all arrival /
//!    delivery-delay / tie-order interleavings of a small model
//!    (`mpdp-explore`), with both simulator stacks, the invariant
//!    monitors, and the cross-stack differential oracle checking every
//!    path;
//! 2. **monitor** — the invariant monitors over one fixed sampled run
//!    (what production-style runtime monitoring alone would catch);
//! 3. **suite** — in-process replays of the existing test suite's
//!    assertions (promotion smoke, failover guarantees, degradation
//!    counters, progress-ledger sums, completion counts).
//!
//! The pristine scheduler is first explored exhaustively on every model —
//! any counterexample there is a real scheduler bug and fails the run.
//!
//! Exit status: 0 when the pristine runs are clean and every mutant is
//! killed by at least one layer; 1 otherwise; 2 on bad usage.
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_mutation_campaign
//! -- [--budget N] [--seed N] [--quick] [--json out.json] [--csv out.csv]`,
//! or replay a printed counterexample with `--replay <model> --arrivals
//! at:task,at:task [--mutant <name>]` (exit 0 if the replayed path is
//! clean, 1 if it still fails).

use std::process::exit;

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, usage_error, write_output,
};
use mpdp_core::time::Cycles;
use mpdp_explore::{replay, run_campaign, CampaignOutcome, ExploreConfig, ExploreModel};
use mpdp_monitor::Mutation;
use mpdp_obs::json::validate_json;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The kill-rate matrix as a small, schema-tagged, byte-stable JSON
/// document (hand-rolled like every export in this repo).
fn matrix_json(outcome: &CampaignOutcome) -> String {
    let mut out = String::from("{\n  \"schema\": \"mpdp-kill-matrix-v1\",\n  \"models\": [\n");
    for (i, (name, report)) in outcome.pristine.iter().enumerate() {
        let comma = if i + 1 < outcome.pristine.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"paths_run\": {}, \"paths_deduped\": {}, \
             \"budget_exhausted\": {}, \"clean\": {}}}{comma}\n",
            report.paths_run,
            report.paths_deduped,
            report.budget_exhausted,
            report.is_clean()
        ));
    }
    out.push_str("  ],\n  \"mutants\": [\n");
    for (i, r) in outcome.records.iter().enumerate() {
        let comma = if i + 1 < outcome.records.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"site\": \"{}\", \"explorer\": {}, \"monitor\": {}, \
             \"suite\": {}, \"killed\": {}, \"detail\": \"{}\"}}{comma}\n",
            r.mutation.name(),
            r.mutation.site().name(),
            r.explorer,
            r.monitor,
            r.suite,
            r.killed(),
            esc(&r.detail)
        ));
    }
    let killed = outcome.records.iter().filter(|r| r.killed()).count();
    out.push_str(&format!(
        "  ],\n  \"killed\": {killed},\n  \"total\": {},\n  \"passed\": {}\n}}\n",
        outcome.records.len(),
        outcome.passed()
    ));
    out
}

fn matrix_csv(outcome: &CampaignOutcome) -> String {
    let mut out = String::from("mutant,site,explorer,monitor,suite,killed\n");
    for r in &outcome.records {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.mutation.name(),
            r.mutation.site().name(),
            r.explorer,
            r.monitor,
            r.suite,
            r.killed()
        ));
    }
    out
}

fn parse_arrivals(raw: &str) -> Vec<(Cycles, usize)> {
    if raw == "none" {
        return Vec::new();
    }
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let Some((at, task)) = pair.split_once(':') else {
                usage_error(format_args!("--arrivals entries are at:task, got `{pair}`"));
            };
            match (at.parse::<u64>(), task.parse::<usize>()) {
                (Ok(at), Ok(task)) => (Cycles::new(at), task),
                _ => usage_error(format_args!("--arrivals entries are at:task, got `{pair}`")),
            }
        })
        .collect()
}

fn replay_mode(args: &[String], model_name: &str) {
    let model = match model_name {
        "two-proc" => ExploreModel::two_proc(),
        "contended" => ExploreModel::contended(),
        other => usage_error(format_args!(
            "unknown model `{other}` (known: two-proc, contended)"
        )),
    };
    let arrivals = parse_arrivals(
        &flag_value(args, "--arrivals")
            .unwrap_or_else(|| usage_error("--replay requires --arrivals")),
    );
    let mutation = flag_value(args, "--mutant").map(|name| {
        Mutation::from_name(&name).unwrap_or_else(|| {
            usage_error(format_args!("unknown mutant `{name}`"));
        })
    });
    match replay(&model, mutation, &arrivals) {
        Ok(outcome) => match outcome.reason() {
            None => {
                println!(
                    "replay on `{}` ({}): clean",
                    model.name,
                    mutation.map(|m| m.name()).unwrap_or("pristine")
                );
            }
            Some(reason) => {
                println!(
                    "replay on `{}` ({}): FAILS\n  {reason}",
                    model.name,
                    mutation.map(|m| m.name()).unwrap_or("pristine")
                );
                exit(1);
            }
        },
        Err(e) => runtime_error(format_args!("replay failed to run: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(
        &args,
        &[
            "--budget",
            "--seed",
            "--quick",
            "--json",
            "--csv",
            "--replay",
            "--arrivals",
            "--mutant",
        ],
        &[
            "--budget",
            "--seed",
            "--json",
            "--csv",
            "--replay",
            "--arrivals",
            "--mutant",
        ],
    );

    if let Some(model) = flag_value(&args, "--replay") {
        replay_mode(&args, &model);
        return;
    }

    let config = ExploreConfig {
        path_budget: parse_flag(&args, "--budget", "a path count").unwrap_or(
            if has_flag(&args, "--quick") {
                512
            } else {
                4096
            },
        ),
        visit_seed: parse_flag(&args, "--seed", "a seed").unwrap_or(0),
    };

    let outcome = match run_campaign(&config) {
        Ok(o) => o,
        Err(e) => runtime_error(format_args!("campaign failed to run: {e}")),
    };

    println!("== pristine exhaustive exploration ==");
    for (name, report) in &outcome.pristine {
        println!(
            "  {name}: {} distinct paths ({} deduped){}{}",
            report.paths_run,
            report.paths_deduped,
            if report.budget_exhausted {
                " [BUDGET EXHAUSTED]"
            } else {
                ""
            },
            if report.is_clean() { ", clean" } else { "" }
        );
        if let Some(cex) = &report.counterexample {
            println!("  PRISTINE SCHEDULER BUG:\n{cex}");
        }
    }

    println!("\n== mutation kill matrix ==");
    println!(
        "  {:<28} {:>8} {:>8} {:>6}  verdict",
        "mutant", "explorer", "monitor", "suite"
    );
    for r in &outcome.records {
        println!(
            "  {:<28} {:>8} {:>8} {:>6}  {}",
            r.mutation.name(),
            r.explorer,
            r.monitor,
            r.suite,
            if r.killed() { "killed" } else { "SURVIVED" }
        );
    }
    for r in &outcome.records {
        println!("    {}: {}", r.mutation.name(), r.detail);
        if let Some(cex) = &r.counterexample {
            for line in cex.to_string().lines() {
                println!("      {line}");
            }
        }
    }

    if let Some(path) = flag_value(&args, "--json") {
        let json = matrix_json(&outcome);
        if let Err(e) = validate_json(&json) {
            runtime_error(format_args!("kill-matrix JSON failed self-validation: {e}"));
        }
        write_output(&path, &json);
    }
    if let Some(path) = flag_value(&args, "--csv") {
        write_output(&path, &matrix_csv(&outcome));
    }

    let survivors = outcome.survivors();
    if !survivors.is_empty() {
        eprintln!(
            "error: {} mutant(s) survived every layer: {}",
            survivors.len(),
            survivors
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        exit(1);
    }
    if !outcome.passed() {
        eprintln!("error: pristine exploration was not clean and closed");
        exit(1);
    }
    println!(
        "\nall {} mutants killed; pristine models clean",
        outcome.records.len()
    );
}

//! Ablation: **why dual priority?** MPDP against the two degenerate
//! policies the paper positions itself against (§1–2): partitioned
//! fixed-priority with background aperiodic service (commercial-RTOS
//! style), and a purely reactive aperiodic-first design.
//!
//! All three run on identical kernel mechanics and identical workloads; the
//! only difference is the promotion policy, so the comparison isolates the
//! scheduling idea itself.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_baseline`.

use mpdp_analysis::baselines::{aperiodic_first, background_service};
use mpdp_analysis::polling::{polling_server, ServerKind};
use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_bench::experiment::ExperimentConfig;
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::task::TaskTable;
use mpdp_core::time::Cycles;
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};
use mpdp_workload::automotive_task_set;

fn table_for(
    policy_name: &str,
    n_procs: usize,
    utilization: f64,
    config: &ExperimentConfig,
) -> TaskTable {
    let set = automotive_task_set(utilization, n_procs, config.tick);
    match policy_name {
        "mpdp" => prepare(
            set.periodic,
            set.aperiodic,
            n_procs,
            ToolOptions::new()
                .with_quantization(config.tick)
                .with_wcet_margin(config.wcet_margin),
        )
        .expect("schedulable"),
        "background" => {
            background_service(set.periodic, set.aperiodic, n_procs).expect("schedulable")
        }
        "aperiodic-first" => {
            aperiodic_first(set.periodic, set.aperiodic, n_procs).expect("schedulable")
        }
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() {
    let config = ExperimentConfig::new();
    let n_procs = 2;

    println!("== scheduling-policy ablation: 2 processors ==");
    println!(
        "{:<16} {:>6} {:>12} {:>14} {:>10}",
        "policy", "util", "susan (s)", "periodic done", "misses"
    );

    for utilization in [0.4, 0.6] {
        // A denser aperiodic stream than Figure 4, to stress the policies'
        // aperiodic service while periodic load runs. Arrivals fall
        // mid-period of the 1 s servers, so the polling/deferrable
        // distinction (discard vs keep the budget) is visible.
        let arrivals: Vec<(Cycles, usize)> = (0..3)
            .map(|i| (Cycles::from_millis(1350 + 8000 * i), 0usize))
            .collect();
        let proto = || PrototypeConfig::new(Cycles::from_secs(40)).with_tick(config.tick);

        for policy_name in [
            "mpdp",
            "background",
            "aperiodic-first",
            "polling-server",
            "deferrable-srv",
        ] {
            let outcome = if policy_name == "polling-server" || policy_name == "deferrable-srv" {
                let set = automotive_task_set(utilization, n_procs, config.tick);
                // A generous server: 40% of one processor.
                match polling_server(
                    set.periodic,
                    set.aperiodic,
                    n_procs,
                    config.tick * 4,
                    config.tick * 10,
                ) {
                    Ok(policy) => {
                        let kind = if policy_name == "deferrable-srv" {
                            ServerKind::Deferrable
                        } else {
                            ServerKind::Polling
                        };
                        run_prototype(policy.with_kind(kind), &arrivals, proto())
                    }
                    Err(e) => {
                        println!(
                            "{:<16} {:>5.0}%  (server not admissible: {e})",
                            policy_name,
                            utilization * 100.0
                        );
                        continue;
                    }
                }
            } else {
                let table = table_for(policy_name, n_procs, utilization, &config);
                run_prototype(MpdpPolicy::new(table), &arrivals, proto())
            };
            let susan = mpdp_core::ids::TaskId::new(18);
            let response = outcome
                .trace
                .mean_response(susan)
                .map_or(f64::NAN, |c| c.as_secs_f64());
            let periodic_done = outcome
                .trace
                .completions
                .iter()
                .filter(|c| c.deadline.is_some())
                .count();
            println!(
                "{:<16} {:>5.0}% {:>12.3} {:>14} {:>10}",
                policy_name,
                utilization * 100.0,
                response,
                periodic_done,
                outcome.trace.deadline_misses()
            );
        }
    }
    println!();
    println!("expected: background service degrades aperiodic response (susan waits for");
    println!("idle periods); aperiodic-first gives the best response but misses periodic");
    println!("deadlines under load; the servers bound interference but throttle susan to");
    println!("their budget (40% of one CPU -> slowest responses; deferrable <= polling");
    println!("because kept budget starts service earlier); MPDP gets near-best response");
    println!("with zero misses.");
}

//! Ablation: **why dual priority?** MPDP against the two degenerate
//! policies the paper positions itself against (§1–2): partitioned
//! fixed-priority with background aperiodic service (commercial-RTOS
//! style), and a purely reactive aperiodic-first design — plus the classic
//! polling/deferrable servers.
//!
//! All policies run on identical kernel mechanics, identical workloads, and
//! an identical arrival schedule; the only difference is the promotion
//! policy, so the comparison isolates the scheduling idea itself. The three
//! table-based policies (mpdp/background/aperiodic-first) run as one
//! `mpdp-sweep` grid — one knob per policy; the servers need a bespoke
//! policy object and run through the same prototype stack directly.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_baseline --
//! [--workers N]`.

use mpdp_analysis::polling::{polling_server, ServerKind};
use mpdp_bench::cli::{check_known_flags, runtime_error, workers_flag};
use mpdp_bench::experiment::ExperimentConfig;
use mpdp_core::time::Cycles;
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};
use mpdp_sweep::{run_sweep, ArrivalSpec, Knobs, PolicyKind, SweepSpec, WorkloadSpec};
use mpdp_workload::automotive_task_set;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(&args, &["--workers"], &["--workers"]);
    let workers = workers_flag(&args);

    let config = ExperimentConfig::new();
    let n_procs = 2;
    // A denser aperiodic stream than Figure 4, to stress the policies'
    // aperiodic service while periodic load runs. Arrivals fall mid-period
    // of the 1 s servers, so the polling/deferrable distinction (discard vs
    // keep the budget) is visible.
    let arrivals: Vec<(Cycles, usize)> = (0..3)
        .map(|i| (Cycles::from_millis(1350 + 8000 * i), 0usize))
        .collect();
    let horizon = Cycles::from_secs(40);

    let table_policies = [
        ("mpdp", PolicyKind::Mpdp),
        ("background", PolicyKind::Background),
        ("aperiodic-first", PolicyKind::AperiodicFirst),
    ];
    let spec = SweepSpec {
        utilizations: vec![0.4, 0.6],
        proc_counts: vec![n_procs],
        seeds: vec![0],
        knobs: table_policies
            .iter()
            .map(|&(name, policy)| Knobs::named(name).with_policy(policy))
            .collect(),
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Explicit {
            arrivals: arrivals.clone(),
            horizon,
        },
        master_seed: 0,
    };
    let report = match run_sweep(&spec, workers) {
        Ok(report) => report,
        Err(e) => runtime_error(format_args!("sweep failed: {e}")),
    };
    eprintln!("swept {} cells in {:.2?}", report.cells.len(), report.wall);

    println!("== scheduling-policy ablation: 2 processors ==");
    println!(
        "{:<16} {:>6} {:>12} {:>14} {:>10}",
        "policy", "util", "susan (s)", "periodic done", "misses"
    );

    for utilization in [0.4, 0.6] {
        for &(policy_name, _) in &table_policies {
            let cell = report
                .cells
                .iter()
                .find(|c| {
                    c.knob_label == policy_name && (c.cell.utilization - utilization).abs() < 1e-9
                })
                .expect("sweep covers every policy × utilization");
            let response = cell
                .real
                .aperiodic
                .finalize()
                .map_or(f64::NAN, |s| s.mean_s);
            println!(
                "{:<16} {:>5.0}% {:>12.3} {:>14} {:>10}",
                policy_name,
                utilization * 100.0,
                response,
                cell.real.periodic.len(),
                cell.real.periodic.misses()
            );
        }

        for policy_name in ["polling-server", "deferrable-srv"] {
            let set = automotive_task_set(utilization, n_procs, config.tick);
            // A generous server: 40% of one processor.
            let outcome = match polling_server(
                set.periodic,
                set.aperiodic,
                n_procs,
                config.tick * 4,
                config.tick * 10,
            ) {
                Ok(policy) => {
                    let kind = if policy_name == "deferrable-srv" {
                        ServerKind::Deferrable
                    } else {
                        ServerKind::Polling
                    };
                    run_prototype(
                        policy.with_kind(kind),
                        &arrivals,
                        PrototypeConfig::new(horizon).with_tick(config.tick),
                    )
                    .unwrap()
                }
                Err(e) => {
                    println!(
                        "{:<16} {:>5.0}%  (server not admissible: {e})",
                        policy_name,
                        utilization * 100.0
                    );
                    continue;
                }
            };
            let susan = mpdp_core::ids::TaskId::new(18);
            let response = outcome
                .trace
                .mean_response(susan)
                .map_or(f64::NAN, |c| c.as_secs_f64());
            let periodic_done = outcome
                .trace
                .completions
                .iter()
                .filter(|c| c.deadline.is_some())
                .count();
            println!(
                "{:<16} {:>5.0}% {:>12.3} {:>14} {:>10}",
                policy_name,
                utilization * 100.0,
                response,
                periodic_done,
                outcome.trace.deadline_misses()
            );
        }
    }
    println!();
    println!("expected: background service degrades aperiodic response (susan waits for");
    println!("idle periods); aperiodic-first gives the best response but misses periodic");
    println!("deadlines under load; the servers bound interference but throttle susan to");
    println!("their budget (40% of one CPU -> slowest responses; deferrable <= polling");
    println!("because kept budget starts service earlier); MPDP gets near-best response");
    println!("with zero misses.");
}

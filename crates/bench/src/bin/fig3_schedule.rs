//! Regenerates **Figure 3** — "A sample schedule with three periodic and two
//! aperiodic tasks on a dual MicroBlaze architecture. The status of the
//! queues without and with aperiodic workload is shown respectively in A
//! and B."
//!
//! The task set is constructed so that every behaviour the paper narrates is
//! visible:
//!
//! * schedule A has an idle slot that schedule B fills with aperiodic work;
//! * P2 is promoted to its upper-band priority to guarantee completion
//!   before its deadline;
//! * A1 executes *as soon as it arrives* (timeslice 1) because P1 holds only
//!   a lower-band priority then;
//! * at timeslice 2, P1's promotion interrupts A1, which later resumes on
//!   the other processor;
//! * A2 arrives during timeslice 2, queues FIFO behind A1, and runs only
//!   after the promoted periodic tasks and the remainder of A1.
//!
//! Run with `cargo run -p mpdp-bench --bin fig3_schedule --
//! [--trace-out t.json]`. `--trace-out` writes both schedules as a Chrome
//! trace-event JSON (open in <https://ui.perfetto.dev>), captured by a
//! probed re-run so stdout stays byte-identical to an unprobed run.

use std::collections::BTreeMap;

use mpdp_bench::cli::{check_known_flags, flag_value, write_output};
use mpdp_core::ids::{ProcId, TaskId};
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::priority::Priority;
use mpdp_core::rta::{analyze, build_task_table};
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};
use mpdp_core::time::Cycles;
use mpdp_faults::CompiledFaults;
use mpdp_obs::{chrome_trace_json_multi, validate_json, EventRecorder};
use mpdp_sim::gantt::render_gantt;
use mpdp_sim::theoretical::{run_theoretical, run_theoretical_probed, TheoreticalConfig};

/// One timeslice of the figure (arbitrary: the schedule is in slice units).
const SLICE: Cycles = Cycles::new(100_000);

fn task_table() -> TaskTable {
    // Periodic tasks: low-band priorities 0 and 1, upper-band 3 and 4, as in
    // the figure's table. Units: C and T in timeslices.
    let p1 = PeriodicTask::new(TaskId::new(0), "P1", SLICE * 2, SLICE * 4)
        .with_priorities(Priority::new(1), Priority::new(4))
        .with_processor(ProcId::new(0));
    let p2 = PeriodicTask::new(TaskId::new(1), "P2", SLICE * 2, SLICE * 3)
        .with_priorities(Priority::new(0), Priority::new(3))
        .with_processor(ProcId::new(1));
    let p3 = PeriodicTask::new(TaskId::new(2), "P3", SLICE, SLICE * 6)
        .with_priorities(Priority::new(0), Priority::new(3))
        .with_processor(ProcId::new(0));
    let a1 = AperiodicTask::new(TaskId::new(3), "A1", SLICE * 2);
    let a2 = AperiodicTask::new(TaskId::new(4), "A2", SLICE);
    build_task_table(vec![p1, p2, p3], vec![a1, a2], 2).expect("figure task set is schedulable")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(&args, &["--trace-out"], &["--trace-out"]);
    let trace_out = flag_value(&args, "--trace-out");
    let table = task_table();

    println!("== Figure 3 task table ==");
    println!(
        "{:<4} {:>3} {:>3} {:>3} {:>8} {:>9} {:>10}",
        "task", "C", "T", "D", "low-prio", "high-prio", "promotion"
    );
    let rta = analyze(table.periodic(), 2).expect("schedulable");
    for (t, r) in table.periodic().iter().zip(&rta) {
        println!(
            "{:<4} {:>3} {:>3} {:>3} {:>8} {:>9} {:>10}",
            t.name(),
            t.wcet().as_u64() / SLICE.as_u64(),
            t.period().as_u64() / SLICE.as_u64(),
            t.deadline().as_u64() / SLICE.as_u64(),
            t.priorities().low.level(),
            t.priorities().high.level(),
            r.promotion.as_u64() / SLICE.as_u64(),
        );
    }
    for a in table.aperiodic() {
        println!(
            "{:<4} {:>3}   -   -        2 (middle band, FIFO)",
            a.name(),
            a.exec().as_u64() / SLICE.as_u64()
        );
    }
    println!();

    let labels = BTreeMap::from([
        (TaskId::new(0), '1'),
        (TaskId::new(1), '2'),
        (TaskId::new(2), '3'),
        (TaskId::new(3), 'a'),
        (TaskId::new(4), 'b'),
    ]);
    let horizon = SLICE * 6;
    let config = TheoreticalConfig::new(horizon)
        .with_tick(SLICE)
        .with_overhead(0.0)
        .with_segments();

    // Schedule A: no aperiodic arrivals.
    let a = run_theoretical(MpdpPolicy::new(table.clone()), &[], config).unwrap();
    println!("== Schedule A (periodic only; note the idle slots '·') ==");
    print!("{}", render_gantt(&a.trace, 2, horizon, SLICE, &labels));
    println!();

    // Schedule B: A1 arrives at the start of timeslice 1, A2 at timeslice 2.
    let arrivals = vec![(SLICE, 0usize), (SLICE * 2, 1usize)];
    let b = run_theoretical(MpdpPolicy::new(table.clone()), &arrivals, config).unwrap();
    println!("== Schedule B (A1 arrives at slice 1, A2 at slice 2) ==");
    print!("{}", render_gantt(&b.trace, 2, horizon, SLICE, &labels));
    println!();

    println!("narrative checks:");
    let a1_done = b
        .trace
        .completions_of(TaskId::new(3))
        .next()
        .expect("A1 completes");
    let a2_done = b
        .trace
        .completions_of(TaskId::new(4))
        .next()
        .expect("A2 completes");
    println!(
        "  A1: released slice {}, finished slice {} (interrupted by P1's promotion, resumed)",
        a1_done.release.as_u64() / SLICE.as_u64(),
        a1_done.finish.as_u64() / SLICE.as_u64()
    );
    println!(
        "  A2: released slice {}, finished slice {} (FIFO after A1)",
        a2_done.release.as_u64() / SLICE.as_u64(),
        a2_done.finish.as_u64() / SLICE.as_u64()
    );
    assert!(a2_done.finish >= a1_done.finish, "A2 must not overtake A1");
    println!(
        "  deadline misses: A={} B={}",
        a.trace.deadline_misses(),
        b.trace.deadline_misses()
    );

    if let Some(path) = trace_out {
        // Probed re-runs of both schedules; the figure's stdout above came
        // from the unprobed runs and is untouched.
        let none = CompiledFaults::none();
        let (_, rec_a) = run_theoretical_probed(
            MpdpPolicy::new(table.clone()),
            &[],
            config,
            &none,
            EventRecorder::new(2),
        )
        .unwrap();
        let (_, rec_b) = run_theoretical_probed(
            MpdpPolicy::new(table),
            &arrivals,
            config,
            &none,
            EventRecorder::new(2),
        )
        .unwrap();
        let doc = chrome_trace_json_multi(&[(&rec_a, "schedule-A"), (&rec_b, "schedule-B")]);
        validate_json(&doc).expect("trace JSON is well-formed");
        write_output(&path, &doc);
        eprintln!("open {path} in https://ui.perfetto.dev");
    }
}

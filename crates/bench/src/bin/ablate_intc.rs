//! Ablation: **the multiprocessor interrupt controller vs the stock
//! single-target controller**, plus the effect of peripheral booking.
//!
//! The paper motivates its controller by noting that "when multiple
//! processors are used, the standard interrupt controller integrated in the
//! Xilinx Embedded Developer Kit is ineffective, since it only permits to
//! propagate multiple interrupts to a single processor". This experiment
//! runs the same workload with (a) full distribution, (b) everything pinned
//! to processor 0, and (c) distribution with the camera peripheral booked
//! to processor 1, and compares aperiodic response and interrupt handling.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_intc`.

use mpdp_bench::experiment::{arrival_schedule, build_table, ExperimentConfig};
use mpdp_core::ids::{PeripheralId, ProcId};
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::time::Cycles;
use mpdp_sim::prototype::{PrototypeConfig, PrototypeSim};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    mpdp_bench::cli::check_known_flags(&args, &[], &[]);
    let config = ExperimentConfig::new();
    let n_procs = 3;
    let utilization = 0.5;
    let arrivals = arrival_schedule(&config);
    let horizon =
        arrivals.last().expect("arrivals").0 + config.activation_gap + Cycles::from_secs(5);

    println!("== INTC ablation: 3 processors, 50% utilization ==");
    println!(
        "{:<28} {:>10} {:>8} {:>8} {:>9} {:>8}",
        "configuration", "susan (s)", "misses", "acks", "timeouts", "ipis"
    );

    for (name, pin, booked) in [
        ("multiprocessor distribution", None, false),
        ("pinned to P0 (stock INTC)", Some(ProcId::new(0)), false),
        ("distribution + booking->P1", None, true),
    ] {
        let table = build_table(n_procs, utilization, &config);
        let susan = table.aperiodic()[0].id();
        let mut proto_config = PrototypeConfig::new(horizon).with_tick(config.tick);
        if let Some(p) = pin {
            proto_config = proto_config.with_pinned_interrupts(p);
        }
        let mut sim = PrototypeSim::new(MpdpPolicy::new(table), proto_config);
        if booked {
            // The camera (peripheral 0 — the susan trigger) is booked to P1,
            // as one would for an IP-core read-back path.
            sim.intc_mut()
                .book(PeripheralId::new(0), Some(ProcId::new(1)));
        }
        let outcome = sim.run(&arrivals).expect("sorted arrivals");
        let response = outcome
            .trace
            .mean_response(susan)
            .map_or(f64::NAN, |c| c.as_secs_f64());
        println!(
            "{:<28} {:>10.3} {:>8} {:>8} {:>9} {:>8}",
            name,
            response,
            outcome.trace.deadline_misses(),
            outcome.intc.acknowledged,
            outcome.intc.timeouts,
            outcome.kernel.ipis
        );
    }
    println!();
    println!("expected: pinning serializes scheduling + release ISRs on P0, degrading");
    println!("aperiodic response; booking only changes which processor runs the release ISR.");
}

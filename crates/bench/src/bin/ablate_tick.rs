//! Ablation: **scheduling-period sensitivity**.
//!
//! The paper fixes the tick at 0.1 s ("Scheduling phase is triggered each
//! 0.1 seconds by the system timer"). This sweep shows the trade-off that
//! choice navigates: a faster tick reacts sooner (promotions and releases
//! land closer to their nominal instants) but burns more kernel cycles and
//! bus traffic; a slower tick quantizes promotions so coarsely the offline
//! analysis loses most of its slack.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_tick`.

use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_bench::experiment::ExperimentConfig;
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::time::Cycles;
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};
use mpdp_workload::automotive_task_set;

fn main() {
    let base = ExperimentConfig::new();
    let n_procs = 2;
    let utilization = 0.5;

    println!("== tick-period ablation: 2 processors, 50% utilization ==");
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>10}",
        "tick", "susan (s)", "misses", "sched passes", "switches"
    );

    for tick_ms in [10u64, 50, 100, 200, 500] {
        let tick = Cycles::from_millis(tick_ms);
        // Periods are synthesized on the same grid so every tick choice is
        // given its best case.
        let set = automotive_task_set(utilization, n_procs, tick);
        let table = prepare(
            set.periodic,
            set.aperiodic,
            n_procs,
            ToolOptions::new()
                .with_quantization(tick)
                .with_wcet_margin(base.wcet_margin),
        )
        .expect("schedulable at 50%");
        let susan = table.aperiodic()[0].id();
        let arrivals = vec![(Cycles::from_secs(1), 0usize)];
        let outcome = run_prototype(
            MpdpPolicy::new(table),
            &arrivals,
            PrototypeConfig::new(Cycles::from_secs(12)).with_tick(tick),
        );
        let response = outcome
            .trace
            .mean_response(susan)
            .map_or(f64::NAN, |c| c.as_secs_f64());
        println!(
            "{:<10} {:>10.3} {:>8} {:>12} {:>10}",
            format!("{tick_ms} ms"),
            response,
            outcome.trace.deadline_misses(),
            outcome.kernel.sched_passes,
            outcome.kernel.context_switches
        );
    }
    println!();
    println!("expected: scheduling passes scale inversely with the tick; response is");
    println!("largely tick-insensitive while the system has slack (MPDP serves aperiodics");
    println!("on arrival and on completion, not only at ticks).");
}

//! Ablation: **scheduling-period sensitivity**.
//!
//! The paper fixes the tick at 0.1 s ("Scheduling phase is triggered each
//! 0.1 seconds by the system timer"). This sweep shows the trade-off that
//! choice navigates: a faster tick reacts sooner (promotions and releases
//! land closer to their nominal instants) but burns more kernel cycles and
//! bus traffic; a slower tick quantizes promotions so coarsely the offline
//! analysis loses most of its slack.
//!
//! One `mpdp-sweep` knob per tick; the grid runs in parallel and the output
//! is deterministic regardless of `--workers`.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_tick --
//! [--workers N]`.

use mpdp_bench::cli::{check_known_flags, runtime_error, workers_flag};
use mpdp_core::time::Cycles;
use mpdp_sweep::{run_sweep, ArrivalSpec, Knobs, SweepSpec, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(&args, &["--workers"], &["--workers"]);
    let workers = workers_flag(&args);

    let tick_ms = [10u64, 50, 100, 200, 500];
    let spec = SweepSpec {
        utilizations: vec![0.5],
        proc_counts: vec![2],
        seeds: vec![0],
        // Periods are synthesized on the same grid so every tick choice is
        // given its best case.
        knobs: tick_ms
            .iter()
            .map(|&ms| Knobs::named(format!("{ms} ms")).with_tick(Cycles::from_millis(ms)))
            .collect(),
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Explicit {
            arrivals: vec![(Cycles::from_secs(1), 0usize)],
            horizon: Cycles::from_secs(12),
        },
        master_seed: 0,
    };
    let report = match run_sweep(&spec, workers) {
        Ok(report) => report,
        Err(e) => runtime_error(format_args!("sweep failed: {e}")),
    };
    eprintln!("swept {} cells in {:.2?}", report.cells.len(), report.wall);

    println!("== tick-period ablation: 2 processors, 50% utilization ==");
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>10}",
        "tick", "susan (s)", "misses", "sched passes", "switches"
    );
    for cell in &report.cells {
        let response = cell
            .real
            .aperiodic
            .finalize()
            .map_or(f64::NAN, |s| s.mean_s);
        println!(
            "{:<10} {:>10.3} {:>8} {:>12} {:>10}",
            cell.knob_label,
            response,
            cell.real.periodic.misses(),
            cell.real.sched_passes,
            cell.real.switches
        );
    }
    println!();
    println!("expected: scheduling passes scale inversely with the tick; response is");
    println!("largely tick-insensitive while the system has slack (MPDP serves aperiodics");
    println!("on arrival and on completion, not only at ticks).");
}

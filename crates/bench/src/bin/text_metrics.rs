//! Regenerates the §5 **in-text numbers**:
//!
//! * "The aperiodic task, on a single processor architecture, should execute
//!   in 5.438 seconds with the given dataset at 50 MHz."
//! * "the algorithm should execute the aperiodic task with very limited
//!   response times, almost near the execution time ... with the only
//!   overheads of context switching when moving the task on free processors
//!   (10.32 seconds in the worst case)."
//! * "On 4 processors, with a 60% workload, our architecture can reach a
//!   response time of 6.843 seconds" (the highest Real bar of Figure 4).
//!
//! Run with `cargo run --release -p mpdp-bench --bin text_metrics`.

use mpdp_bench::experiment::{arrival_schedule, build_table, fig4_point, ExperimentConfig};
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::time::Cycles;
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};
use mpdp_workload::wcet::{BenchSpec, Dataset, Program};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    mpdp_bench::cli::check_known_flags(&args, &[], &[]);
    let config = ExperimentConfig::new();
    let susan = BenchSpec::new(Program::Susan, Dataset::Large);

    println!("== §5 in-text metrics ==");
    println!(
        "susan-large execution demand:        {:.3} s  (paper: 5.438 s at 50 MHz)",
        susan.wcet().as_secs_f64()
    );

    // Single-processor response with no periodic workload: the pure
    // execution plus interrupt/switch overheads on the prototype stack.
    let mut lone_table = build_table(1, 0.05, &config);
    let susan_id = lone_table.aperiodic()[0].id();
    let _ = &mut lone_table;
    let arrivals = vec![(Cycles::from_secs(1), 0usize)];
    let lone = run_prototype(
        MpdpPolicy::new(lone_table),
        &arrivals,
        PrototypeConfig::new(Cycles::from_secs(10)).with_tick(config.tick),
    )
    .unwrap();
    println!(
        "1-processor response (5% bg load):   {:.3} s  (execution + interrupt/switch overheads)",
        lone.trace
            .mean_response(susan_id)
            .expect("susan completes")
            .as_secs_f64()
    );

    // Worst-case response observed across the full Figure 4 grid on the
    // prototype (the paper's 10.32 s "worst case" with context switching).
    let mut worst = 0.0f64;
    let mut worst_cell = (0usize, 0.0f64);
    for n_procs in [2usize, 3, 4] {
        for utilization in [0.4, 0.5, 0.6] {
            let table = build_table(n_procs, utilization, &config);
            let id = table.aperiodic()[0].id();
            let arrivals = arrival_schedule(&config);
            let horizon =
                arrivals.last().expect("arrivals").0 + config.activation_gap + Cycles::from_secs(5);
            let outcome = run_prototype(
                MpdpPolicy::new(table),
                &arrivals,
                PrototypeConfig::new(horizon).with_tick(config.tick),
            )
            .unwrap();
            let max = outcome
                .trace
                .max_response(id)
                .expect("susan completes")
                .as_secs_f64();
            if max > worst {
                worst = max;
                worst_cell = (n_procs, utilization);
            }
        }
    }
    println!(
        "worst-case response across the grid: {:.3} s  at {}P/{:.0}%  (paper: 10.32 s worst case)",
        worst,
        worst_cell.0,
        worst_cell.1 * 100.0
    );

    let p4_60 = fig4_point(4, 0.6, &config);
    println!(
        "4P at 60% workload:                  {:.3} s mean, {:+.1}% vs theoretical  (paper: 6.843 s, 25% worse)",
        p4_60.real_s,
        p4_60.slowdown_pct()
    );
}

//! Ablation: **context-switch traffic**.
//!
//! The paper singles out context switching as a first-order overhead: "task
//! switching, with movements of contexts and stacks for many applications
//! from and to shared memory, generates consistent traffic, even with a
//! clever implementation of the algorithm that limits switching only when
//! necessary". This sweep scales the modeled context size from zero (free
//! switches) to 16× and measures the effect on the aperiodic response.
//!
//! One `mpdp-sweep` knob per scale; the grid runs in parallel and the
//! output is deterministic regardless of `--workers`.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_switch_cost --
//! [--workers N]`.

use mpdp_bench::cli::{check_known_flags, runtime_error, workers_flag};
use mpdp_bench::experiment::{arrival_schedule, ExperimentConfig};
use mpdp_core::time::Cycles;
use mpdp_sweep::{run_sweep, ArrivalSpec, Knobs, SweepSpec, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(&args, &["--workers"], &["--workers"]);
    let workers = workers_flag(&args);

    let config = ExperimentConfig::new();
    let arrivals = arrival_schedule(&config);
    let horizon =
        arrivals.last().expect("arrivals").0 + config.activation_gap + Cycles::from_secs(5);
    let spec = SweepSpec {
        utilizations: vec![0.5],
        proc_counts: vec![3],
        seeds: vec![0],
        knobs: [0.0f64, 0.5, 1.0, 4.0, 16.0]
            .iter()
            .map(|&scale| Knobs::named(format!("{scale}x")).with_context_scale(scale))
            .collect(),
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Explicit { arrivals, horizon },
        master_seed: 0,
    };
    let report = match run_sweep(&spec, workers) {
        Ok(report) => report,
        Err(e) => runtime_error(format_args!("sweep failed: {e}")),
    };
    eprintln!("swept {} cells in {:.2?}", report.cells.len(), report.wall);

    println!("== context-switch cost ablation: 3 processors, 50% utilization ==");
    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>14}",
        "ctx scale", "susan (s)", "misses", "switches", "ctx words"
    );
    for cell in &report.cells {
        let response = cell
            .real
            .aperiodic
            .finalize()
            .map_or(f64::NAN, |s| s.mean_s);
        println!(
            "{:<12} {:>10.3} {:>8} {:>10} {:>14}",
            cell.knob_label,
            response,
            cell.real.periodic.misses(),
            cell.real.switches,
            cell.real.context_words
        );
    }
    println!();
    println!("expected: response grows monotonically with context size; at large scales");
    println!("switch traffic competes with susan's own memory accesses on the bus.");
}

//! Ablation: **context-switch traffic**.
//!
//! The paper singles out context switching as a first-order overhead: "task
//! switching, with movements of contexts and stacks for many applications
//! from and to shared memory, generates consistent traffic, even with a
//! clever implementation of the algorithm that limits switching only when
//! necessary". This sweep scales the modeled context size from zero (free
//! switches) to 16× and measures the effect on the aperiodic response.
//!
//! Run with `cargo run --release -p mpdp-bench --bin ablate_switch_cost`.

use mpdp_bench::experiment::{arrival_schedule, build_table, ExperimentConfig};
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::time::Cycles;
use mpdp_kernel::KernelCosts;
use mpdp_sim::prototype::{run_prototype, PrototypeConfig};

fn main() {
    let config = ExperimentConfig::new();
    let n_procs = 3;
    let utilization = 0.5;
    let arrivals = arrival_schedule(&config);
    let horizon =
        arrivals.last().expect("arrivals").0 + config.activation_gap + Cycles::from_secs(5);

    println!("== context-switch cost ablation: 3 processors, 50% utilization ==");
    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>14}",
        "ctx scale", "susan (s)", "misses", "switches", "ctx words"
    );

    for scale in [0.0f64, 0.5, 1.0, 4.0, 16.0] {
        let table = build_table(n_procs, utilization, &config);
        let susan = table.aperiodic()[0].id();
        let outcome = run_prototype(
            MpdpPolicy::new(table),
            &arrivals,
            PrototypeConfig::new(horizon)
                .with_tick(config.tick)
                .with_kernel_costs(KernelCosts::default().with_context_scale(scale)),
        );
        let response = outcome
            .trace
            .mean_response(susan)
            .map_or(f64::NAN, |c| c.as_secs_f64());
        println!(
            "{:<12} {:>10.3} {:>8} {:>10} {:>14}",
            format!("{scale}x"),
            response,
            outcome.trace.deadline_misses(),
            outcome.kernel.context_switches,
            outcome.kernel.context_words
        );
    }
    println!();
    println!("expected: response grows monotonically with context size; at large scales");
    println!("switch traffic competes with susan's own memory accesses on the bus.");
}

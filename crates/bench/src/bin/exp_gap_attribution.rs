//! Decomposes the **theoretical-vs-prototype response gap** into cycle
//! buckets — the observability layer's headline experiment.
//!
//! The paper reports the prototype 7–27% slower than the theoretical
//! simulation and attributes the gap to "the presence of the operating
//! system and of the contentions" (§5) without measuring either part. This
//! experiment reruns the Figure 4 grid with a cycle ledger threaded through
//! both stacks, so every cycle of every processor is attributed to exactly
//! one bucket: task work, scheduler passes, context switches, ISRs,
//! bus/memory stalls, lock contention, or idle. The conservation invariant
//! (buckets sum to `horizon × n_procs`) is checked on **every** cell of
//! both stacks before anything is printed.
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_gap_attribution --
//! [--quick] [--trace-out t.json] [--ledger-csv l.csv] [--ledger-json
//! l.json]`. `--quick` runs the single 2P/40% cell with one activation
//! (CI smoke); the default runs the full 2–4P × 40/50/60% grid.

use mpdp_bench::cli::{check_known_flags, flag_value, has_flag, write_output};
use mpdp_bench::experiment::{fig4_spec, ExperimentConfig};
use mpdp_obs::{chrome_trace_json_multi, ledger_csv, ledger_json, validate_json, Bucket, BUCKETS};
use mpdp_sweep::{run_cell_probed, CellObservation};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(
        &args,
        &["--quick", "--trace-out", "--ledger-csv", "--ledger-json"],
        &["--trace-out", "--ledger-csv", "--ledger-json"],
    );
    let quick = has_flag(&args, "--quick");
    let trace_out = flag_value(&args, "--trace-out");
    let ledger_csv_path = flag_value(&args, "--ledger-csv");
    let ledger_json_path = flag_value(&args, "--ledger-json");

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::new()
    };
    let mut spec = fig4_spec(&config);
    if quick {
        spec.proc_counts = vec![2];
        spec.utilizations = vec![0.4];
    }
    let cells = spec.cells();
    eprintln!(
        "gap attribution: {} cell(s), both stacks probed, conservation checked per cell ...",
        cells.len()
    );

    println!("== Theoretical-vs-prototype gap, attributed by cycle bucket ==");
    println!("(bucket columns: % of all prototype cycles, horizon x n_procs)");
    println!(
        "{:<5} {:>5} {:>8} {:>8} {:>7} | {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "arch",
        "util",
        "theo_s",
        "real_s",
        "gap%",
        "work",
        "sched",
        "switch",
        "isr",
        "bus",
        "cont",
        "idle"
    );

    let mut grand = [0u64; Bucket::COUNT];
    let mut first_obs: Option<CellObservation> = None;
    for cell in &cells {
        let (result, obs) = run_cell_probed(&spec, cell).expect("fig4 cells are valid");
        obs.theoretical
            .ledger()
            .check_conservation(obs.horizon)
            .expect("theoretical ledger partitions the timeline");
        obs.real
            .ledger()
            .check_conservation(obs.horizon)
            .expect("prototype ledger partitions the timeline");

        let theo_s = result
            .theoretical
            .aperiodic
            .finalize()
            .expect("susan completes in the theoretical run")
            .mean_s;
        let real_s = result
            .real
            .aperiodic
            .finalize()
            .expect("susan completes on the prototype")
            .mean_s;
        let ledger = obs.real.ledger();
        let total = ledger.grand_total() as f64;
        print!(
            "{:<5} {:>4.0}% {:>8.3} {:>8.3} {:>6.1}% |",
            format!("{}P", cell.n_procs),
            cell.utilization * 100.0,
            theo_s,
            real_s,
            100.0 * (real_s / theo_s - 1.0),
        );
        for (i, &b) in BUCKETS.iter().enumerate() {
            let cycles = ledger.bucket_total(b);
            grand[i] += cycles;
            print!(" {:>5.2}%", 100.0 * cycles as f64 / total);
        }
        println!();
        if first_obs.is_none() {
            first_obs = Some(obs);
        }
    }

    let grand_total: u64 = grand.iter().sum();
    println!();
    println!("== aggregate prototype cycle attribution across the grid ==");
    for (i, &b) in BUCKETS.iter().enumerate() {
        println!(
            "{:<12} {:>16} cycles {:>7.3}%",
            b.name(),
            grand[i],
            100.0 * grand[i] as f64 / grand_total as f64
        );
    }
    let overhead: u64 = BUCKETS
        .iter()
        .enumerate()
        .filter(|(_, b)| b.is_overhead())
        .map(|(i, _)| grand[i])
        .sum();
    println!(
        "overhead (sched+switch+isr+bus+contention): {:.3}% of all cycles",
        100.0 * overhead as f64 / grand_total as f64
    );
    println!(
        "paper's narrative: the prototype's 7-27% response gap is what these\n\
         buckets cost the aperiodic task; the theoretical stack folds them\n\
         into a flat {:.0}% demand inflation.",
        config.theoretical_overhead * 100.0
    );

    let obs = first_obs.expect("grid has at least one cell");
    if let Some(path) = ledger_csv_path {
        write_output(&path, &ledger_csv(obs.real.ledger()));
    }
    if let Some(path) = ledger_json_path {
        let doc = ledger_json(obs.real.ledger());
        validate_json(&doc).expect("ledger JSON is well-formed");
        write_output(&path, &doc);
    }
    if let Some(path) = trace_out {
        let doc =
            chrome_trace_json_multi(&[(&obs.theoretical, "theoretical"), (&obs.real, "prototype")]);
        validate_json(&doc).expect("trace JSON is well-formed");
        write_output(&path, &doc);
        eprintln!("open {path} in https://ui.perfetto.dev");
    }
}

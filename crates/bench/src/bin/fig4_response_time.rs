//! Regenerates **Figure 4** — "Response time in seconds of an aperiodic task
//! on our system with different periodic utilization and different number of
//! processors" — plus the §5 in-text slowdown matrix ("the real 2 processors
//! architecture is respectively 7%, 8% and 12% slower ... the prototype is
//! 15%, 22% and 27% slower ... 25% worse than the optimal response time").
//!
//! The grid runs through the `mpdp-sweep` engine, so `--workers N`
//! parallelizes it without changing a single output byte, and `--seeds K`
//! turns the figure into a K-seed Monte Carlo (randomized arrival phases)
//! with aggregate percentile curves.
//!
//! Run with `cargo run --release -p mpdp-bench --bin fig4_response_time --
//! [--workers N] [--seeds K] [--csv out.csv] [--json out.json]
//! [--profile] [--trace-out t.json] [--trace-cell I]
//! [--resume journal.mpdpj] [--monitor] [--telemetry-out m.json]
//! [--fleet-trace trace.json]`.
//!
//! `--profile` prints per-cell wall-time/throughput self-profiles to
//! stderr; `--trace-out` writes a Chrome trace-event JSON (open in
//! <https://ui.perfetto.dev>) of cell `--trace-cell` (default 0), captured
//! by a probed re-run so stdout stays byte-identical to an unprobed run.
//! `--resume` routes the sweep through the self-healing executor with an
//! fsynced checkpoint journal, so an interrupted run resumes where it
//! stopped with identical output bytes. `--telemetry-out` writes the
//! `mpdp-fleet-metrics/1` JSON snapshot of an instrumented (`--shards` or
//! `--resume`) run; `--fleet-trace` writes the Perfetto fleet timeline of
//! a `--shards` run. `--monitor` replays every cell
//! through the `mpdp-monitor` runtime invariant monitors and differential
//! oracle after the sweep: violations go to stderr and the exit status
//! turns non-zero, while stdout and every export stay byte-identical.

use mpdp_bench::audit_sweep;
use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, usage_error, workers_flag,
    write_output,
};
use mpdp_bench::experiment::{fig4_seeded_spec, ExperimentConfig};
use mpdp_obs::{chrome_trace_json_multi, validate_json};
use mpdp_shard::{
    metrics_path, parse_worker_invocation, run_worker, self_launcher, supervise_observed,
    SuperviseConfig, WorkerConfig,
};
use mpdp_sweep::{
    cells_csv, group_summaries, report_json, run_cell_probed, run_sweep,
    run_sweep_healing_observed, spec_fingerprint, HealConfig,
};
use mpdp_telemetry::{
    fleet_trace_json, metrics_json, snapshot_from_text, validate_metrics_json, FleetRecorder,
    MetricsRegistry, TranscriptObserver,
};

/// Hidden shard-worker mode: a `--shards` supervisor re-executed this
/// binary with a worker flag block. Rebuild the spec from the same
/// `--seeds` flag the parent saw, run the assigned range, exit.
fn shard_worker(args: &[String]) -> ! {
    let invocation = match parse_worker_invocation(args) {
        Some(Ok(invocation)) => invocation,
        Some(Err(e)) => usage_error(e),
        None => unreachable!("caller checked for the worker flag"),
    };
    let seeds: usize = parse_flag(args, "--seeds", "a seed count").unwrap_or(1);
    let spec = fig4_seeded_spec(&ExperimentConfig::new(), seeds);
    let cfg = WorkerConfig {
        threads: invocation.threads,
        throttle: invocation.throttle,
        ..WorkerConfig::default()
    };
    match run_worker(
        &spec,
        invocation.start..invocation.end,
        &invocation.journal,
        &invocation.heartbeat,
        &cfg,
    ) {
        Ok(_) => std::process::exit(0),
        Err(e) => runtime_error(format_args!("shard worker failed: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == mpdp_shard::WORKER_FLAG) {
        shard_worker(&args);
    }
    check_known_flags(
        &args,
        &[
            "--csv",
            "--json",
            "--workers",
            "--seeds",
            "--shards",
            "--shard-dir",
            "--profile",
            "--trace-out",
            "--trace-cell",
            "--resume",
            "--monitor",
            "--telemetry-out",
            "--fleet-trace",
        ],
        &[
            "--csv",
            "--json",
            "--workers",
            "--seeds",
            "--shards",
            "--shard-dir",
            "--trace-out",
            "--trace-cell",
            "--resume",
            "--telemetry-out",
            "--fleet-trace",
        ],
    );
    let csv_path = flag_value(&args, "--csv");
    let json_path = flag_value(&args, "--json");
    let workers = workers_flag(&args);
    let seeds: usize = parse_flag(&args, "--seeds", "a seed count").unwrap_or(1);
    let profile = has_flag(&args, "--profile");
    let trace_out = flag_value(&args, "--trace-out");
    let trace_cell: usize = parse_flag(&args, "--trace-cell", "a cell index").unwrap_or(0);
    let monitor = has_flag(&args, "--monitor");
    let resume = flag_value(&args, "--resume");
    let shards: Option<usize> = parse_flag(&args, "--shards", "a shard count");
    if shards.is_some() && resume.is_some() {
        usage_error("--shards and --resume are mutually exclusive (shards journal per worker)");
    }
    let telemetry_out = flag_value(&args, "--telemetry-out");
    let fleet_trace = flag_value(&args, "--fleet-trace");
    if fleet_trace.is_some() && shards.is_none() {
        usage_error("--fleet-trace needs the multi-process fleet: add --shards N");
    }
    if telemetry_out.is_some() && shards.is_none() && resume.is_none() {
        usage_error("--telemetry-out needs an instrumented run: add --shards N or --resume J");
    }

    let config = ExperimentConfig::new();
    // Monte Carlo mode (seeds > 1): per-seed arrival phases drawn from each
    // cell's RNG stream instead of the pinned classic schedule.
    let spec = fig4_seeded_spec(&config, seeds);
    eprintln!(
        "figure 4: mean response of susan-large (aperiodic), {} activations per cell, {} cells over {workers} worker(s) ...",
        config.activations,
        spec.cell_count()
    );
    let report = if let Some(n_shards) = shards {
        // Multi-process mode: supervise one worker process per shard; the
        // merged report's exports are byte-identical to the in-process run.
        let dir = flag_value(&args, "--shard-dir")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("mpdp-fig4-shards-{:016x}", spec_fingerprint(&spec)))
            });
        let mut passthrough = Vec::new();
        if seeds > 1 {
            passthrough.push("--seeds".to_string());
            passthrough.push(seeds.to_string());
        }
        let launch = match self_launcher(passthrough, 1, std::time::Duration::ZERO) {
            Ok(launch) => launch,
            Err(e) => runtime_error(format_args!("cannot resolve own executable: {e}")),
        };
        let cfg = SuperviseConfig::default()
            .with_shards(n_shards)
            .with_dir(dir);
        let transcript = TranscriptObserver::new(|line: &str| eprintln!("shard: {line}"));
        let registry = MetricsRegistry::new();
        let recorder = FleetRecorder::new();
        match supervise_observed(&spec, &cfg, launch, &(&transcript, &registry, &recorder)) {
            Ok(sup) => {
                let launches: u32 = sup.shards.iter().map(|s| s.launches).sum();
                eprintln!(
                    "supervised {} worker process(es) across {launches} launch(es)",
                    sup.shards.len()
                );
                if let Some(path) = &telemetry_out {
                    let mut fleet = registry.snapshot();
                    for shard in &sup.shards {
                        if let Ok(text) = std::fs::read_to_string(metrics_path(&shard.journal)) {
                            if let Ok(worker) = snapshot_from_text(&text) {
                                fleet.merge(&worker);
                            }
                        }
                    }
                    let json = metrics_json(&fleet);
                    if let Err(e) = validate_metrics_json(&json) {
                        runtime_error(format_args!("telemetry JSON failed validation: {e}"));
                    }
                    write_output(path, &json);
                }
                if let Some(path) = &fleet_trace {
                    write_output(
                        path,
                        &fleet_trace_json(&recorder.events(), sup.shards.len()),
                    );
                    eprintln!("open {path} in https://ui.perfetto.dev");
                }
                sup.report
            }
            Err(e) => runtime_error(format_args!("sharded sweep failed: {e}")),
        }
    } else {
        match &resume {
            Some(journal) => {
                let heal = HealConfig::default().with_journal(journal);
                let registry = MetricsRegistry::new();
                match run_sweep_healing_observed(&spec, workers, &heal, &registry) {
                    Ok(healed) => {
                        if healed.resumed > 0 {
                            eprintln!("resumed {} cell(s) from {journal}", healed.resumed);
                        }
                        if let Some(path) = &telemetry_out {
                            let json = metrics_json(&registry.snapshot());
                            if let Err(e) = validate_metrics_json(&json) {
                                runtime_error(format_args!(
                                    "telemetry JSON failed validation: {e}"
                                ));
                            }
                            write_output(path, &json);
                        }
                        healed.report
                    }
                    Err(e) => runtime_error(format_args!("sweep failed: {e}")),
                }
            }
            None => match run_sweep(&spec, workers) {
                Ok(report) => report,
                Err(e) => runtime_error(format_args!("sweep failed: {e}")),
            },
        }
    };
    eprintln!("swept {} cells in {:.2?}", report.cells.len(), report.wall);
    if profile {
        // Self-profile to stderr only: wall-clock is non-deterministic, so
        // it must never reach stdout or the exports.
        for p in &report.profiles {
            eprintln!(
                "cell {:>3}: {:>10.2?} wall, {:>8.1} Mcyc/s, {:>5} completions",
                p.index,
                p.wall,
                p.throughput_mcps(),
                p.completions
            );
        }
    }
    let groups = group_summaries(&report);

    println!("== Figure 4: aperiodic response time (seconds) ==");
    println!(
        "{:<6} {:>10} {:>12} {:>8} {:>8}",
        "arch", "util", "series", "resp", "misses"
    );
    for g in &groups {
        let theo = g.theoretical.finalize().expect("susan completes");
        let real = g.real.finalize().expect("susan completes");
        println!(
            "{:<6} {:>9.0}% {:>12} {:>8.3} {:>8}",
            format!("{}P", g.n_procs),
            g.utilization * 100.0,
            "theoretical",
            theo.mean_s,
            "-"
        );
        println!(
            "{:<6} {:>9.0}% {:>12} {:>8.3} {:>8}",
            format!("{}P", g.n_procs),
            g.utilization * 100.0,
            "real",
            real.mean_s,
            g.periodic.misses()
        );
    }

    println!();
    println!("== §5 slowdown matrix: real vs theoretical (paper: 2P 7/8/12%, 3P 15/22/27%, 4P ≈25% @60%) ==");
    print!("{:<6}", "");
    for u in [40, 50, 60] {
        print!(" {u:>7}%");
    }
    println!();
    let group_at = |m: usize, u: f64| {
        groups
            .iter()
            .find(|g| g.n_procs == m && (g.utilization - u).abs() < 1e-9)
            .expect("sweep covers every cell")
    };
    for m in [2usize, 3, 4] {
        print!("{:<6}", format!("{m}P"));
        for u in [0.4, 0.5, 0.6] {
            print!(
                " {:>7.1}%",
                group_at(m, u)
                    .slowdown_pct()
                    .expect("both stacks completed")
            );
        }
        println!();
    }

    println!();
    println!("== bar series (for plotting; matches the paper's x-axis grouping) ==");
    for u in [0.4, 0.5, 0.6] {
        let mean = |m: usize, real: bool| {
            let g = group_at(m, u);
            let acc = if real { &g.real } else { &g.theoretical };
            format!("{:.3}", acc.finalize().expect("completions").mean_s)
        };
        let theo: Vec<String> = [2usize, 3, 4].iter().map(|&m| mean(m, false)).collect();
        let real: Vec<String> = [2usize, 3, 4].iter().map(|&m| mean(m, true)).collect();
        println!(
            "{:>2.0}%  2P/3P/4P theoretical: {}   real: {}",
            u * 100.0,
            theo.join(" "),
            real.join(" ")
        );
    }

    if seeds > 1 {
        println!();
        println!("== Monte Carlo percentile curve: real susan response (s), {seeds} seeds ==");
        println!(
            "{:<6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "arch", "util", "p25", "p50", "p75", "p90", "p95", "p99"
        );
        for g in &groups {
            let curve = g
                .real
                .percentiles(&mpdp_sweep::report::CURVE_QS)
                .expect("samples");
            print!(
                "{:<6} {:>5.0}%",
                format!("{}P", g.n_procs),
                g.utilization * 100.0
            );
            for v in curve {
                print!(" {v:>9.3}");
            }
            println!();
        }
    }

    // Per-point misses sanity line, as in the paper ("no periodic deadline
    // is ever missed in the tested configurations").
    let total_misses: usize = report.cells.iter().map(|c| c.real.periodic.misses()).sum();
    println!();
    println!(
        "total periodic deadline misses across {} cells: {total_misses}",
        report.cells.len()
    );

    if let Some(path) = csv_path {
        write_output(&path, &cells_csv(&report));
    }
    if let Some(path) = json_path {
        write_output(&path, &report_json(&report));
    }
    if let Some(path) = trace_out {
        let cells = spec.cells();
        let Some(cell) = cells.get(trace_cell) else {
            runtime_error(format_args!(
                "--trace-cell {trace_cell} is outside the {}-cell grid",
                cells.len()
            ));
        };
        let (_, obs) = match run_cell_probed(&spec, cell) {
            Ok(traced) => traced,
            Err(e) => runtime_error(format_args!("traced cell failed: {e}")),
        };
        let doc =
            chrome_trace_json_multi(&[(&obs.theoretical, "theoretical"), (&obs.real, "prototype")]);
        validate_json(&doc).expect("trace JSON is well-formed");
        write_output(&path, &doc);
        eprintln!("open {path} in https://ui.perfetto.dev");
    }

    if monitor {
        eprintln!(
            "auditing {} cells against the invariant monitors ...",
            report.cells.len()
        );
        let audit = match audit_sweep(&spec) {
            Ok(audit) => audit,
            Err(e) => runtime_error(format_args!("audit failed: {e}")),
        };
        for line in audit.diagnostics() {
            eprintln!("{line}");
        }
        if !audit.is_clean() {
            runtime_error(format_args!(
                "monitor audit found {} invariant violation(s)",
                audit.violation_count()
            ));
        }
        eprintln!("monitor audit clean: {} cells", audit.audits.len());
    }
}

//! Regenerates **Figure 4** — "Response time in seconds of an aperiodic task
//! on our system with different periodic utilization and different number of
//! processors" — plus the §5 in-text slowdown matrix ("the real 2 processors
//! architecture is respectively 7%, 8% and 12% slower ... the prototype is
//! 15%, 22% and 27% slower ... 25% worse than the optimal response time").
//!
//! Run with `cargo run --release -p mpdp-bench --bin fig4_response_time`.

use mpdp_bench::experiment::{fig4_sweep, ExperimentConfig};

fn main() {
    // Optional: `fig4_response_time --csv out.csv` also writes the grid as
    // CSV for external plotting.
    let args: Vec<String> = std::env::args().collect();
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let config = ExperimentConfig::new();
    eprintln!(
        "figure 4: mean response of susan-large (aperiodic), {} activations per cell ...",
        config.activations
    );
    let points = fig4_sweep(&config);

    println!("== Figure 4: aperiodic response time (seconds) ==");
    println!(
        "{:<6} {:>10} {:>12} {:>8} {:>8}",
        "arch", "util", "series", "resp", "misses"
    );
    for p in &points {
        println!(
            "{:<6} {:>9.0}% {:>12} {:>8.3} {:>8}",
            format!("{}P", p.n_procs),
            p.utilization * 100.0,
            "theoretical",
            p.theoretical_s,
            "-"
        );
        println!(
            "{:<6} {:>9.0}% {:>12} {:>8.3} {:>8}",
            format!("{}P", p.n_procs),
            p.utilization * 100.0,
            "real",
            p.real_s,
            p.misses
        );
    }

    println!();
    println!("== §5 slowdown matrix: real vs theoretical (paper: 2P 7/8/12%, 3P 15/22/27%, 4P ≈25% @60%) ==");
    print!("{:<6}", "");
    for u in [40, 50, 60] {
        print!(" {u:>7}%");
    }
    println!();
    for m in [2usize, 3, 4] {
        print!("{:<6}", format!("{m}P"));
        for u in [0.4, 0.5, 0.6] {
            let p = points
                .iter()
                .find(|p| p.n_procs == m && (p.utilization - u).abs() < 1e-9)
                .expect("sweep covers every cell");
            print!(" {:>7.1}%", p.slowdown_pct());
        }
        println!();
    }

    println!();
    println!("== bar series (for plotting; matches the paper's x-axis grouping) ==");
    for u in [0.4, 0.5, 0.6] {
        let theo: Vec<String> = [2usize, 3, 4]
            .iter()
            .map(|&m| {
                format!(
                    "{:.3}",
                    points
                        .iter()
                        .find(|p| p.n_procs == m && (p.utilization - u).abs() < 1e-9)
                        .expect("cell")
                        .theoretical_s
                )
            })
            .collect();
        let real: Vec<String> = [2usize, 3, 4]
            .iter()
            .map(|&m| {
                format!(
                    "{:.3}",
                    points
                        .iter()
                        .find(|p| p.n_procs == m && (p.utilization - u).abs() < 1e-9)
                        .expect("cell")
                        .real_s
                )
            })
            .collect();
        println!(
            "{:>2.0}%  2P/3P/4P theoretical: {}   real: {}",
            u * 100.0,
            theo.join(" "),
            real.join(" ")
        );
    }

    if let Some(path) = csv_path {
        let mut csv =
            String::from("n_procs,utilization,theoretical_s,real_s,slowdown_pct,misses\n");
        for p in &points {
            csv.push_str(&format!(
                "{},{:.2},{:.6},{:.6},{:.3},{}\n",
                p.n_procs,
                p.utilization,
                p.theoretical_s,
                p.real_s,
                p.slowdown_pct(),
                p.misses
            ));
        }
        std::fs::write(&path, csv).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

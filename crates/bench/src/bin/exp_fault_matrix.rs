//! The fault matrix: graceful degradation under injected faults, swept
//! over fault intensity × processor count × scheduling policy.
//!
//! Each intensity level layers more of the fault model onto the paper's
//! automotive workload: WCET overruns (with a heavy tail at the top
//! level), an aperiodic overload burst, lost/spurious timer interrupts, a
//! transient bus-latency spike, and — at the highest level — a processor
//! fail-stop with online re-admission of the dead core's partition. The
//! three policies are the paper's MPDP dual-priority scheduler and the two
//! §5 baselines (background service, aperiodic-first).
//!
//! The whole grid runs through the `mpdp-sweep` engine, so `--workers N`
//! parallelizes it without changing a single output byte.
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_fault_matrix --
//! [--workers N] [--seeds K] [--csv out.csv] [--json out.json] [--quick]`.

use mpdp_core::policy::{DegradationPolicy, OverrunAction};
use mpdp_core::time::Cycles;
use mpdp_faults::{BusSpike, FailStop, FaultPlan, InterruptFaults, OverloadBurst, WcetOverrun};
use mpdp_sweep::{
    cells_csv, group_summaries, report_json, run_sweep, ArrivalSpec, Knobs, PolicyKind, SweepSpec,
    WorkloadSpec,
};

/// The swept fault intensities, mildest first.
const INTENSITIES: [&str; 3] = ["none", "stress", "failover"];

/// The degradation configuration every faulted knob runs: kill jobs that
/// blow past 1.5× their nominal WCET, shed aperiodic arrivals beyond four
/// queued jobs.
fn degradation() -> DegradationPolicy {
    DegradationPolicy::default()
        .with_overrun(OverrunAction::Kill)
        .with_budget_margin(1.5)
        .with_shed_limit(4)
}

/// The fault plan for one intensity level.
fn plan_of(intensity: &str) -> FaultPlan {
    match intensity {
        "none" => FaultPlan::default(),
        "stress" => FaultPlan::default()
            .with_wcet(WcetOverrun::new(0.05, 1.3))
            .with_burst(OverloadBurst::new(
                Cycles::from_secs(3),
                3,
                Cycles::from_millis(400),
            ))
            .with_interrupts(InterruptFaults {
                lost_probability: 0.02,
                spurious: vec![Cycles::from_secs(2), Cycles::from_secs(9)],
            })
            .with_bus_spike(BusSpike::new(
                Cycles::from_secs(5),
                Cycles::from_millis(500),
                2.0,
            )),
        _ => FaultPlan::default()
            .with_wcet(WcetOverrun::new(0.10, 1.3).with_tail(0.01, 3.0))
            .with_burst(OverloadBurst::new(
                Cycles::from_secs(3),
                5,
                Cycles::from_millis(400),
            ))
            .with_interrupts(InterruptFaults {
                lost_probability: 0.05,
                spurious: vec![Cycles::from_secs(2), Cycles::from_secs(9)],
            })
            .with_bus_spike(BusSpike::new(
                Cycles::from_secs(5),
                Cycles::from_secs(1),
                3.0,
            ))
            // Processor 1 dies mid-run on every column of the grid.
            .with_fail_stop(FailStop::new(1, Cycles::from_secs(6))),
    }
}

/// The full fault-matrix spec: one knob per (intensity × policy), over the
/// given processor counts at 50% utilization.
pub fn fault_matrix_spec(proc_counts: Vec<usize>, seeds: usize) -> SweepSpec {
    let mut knobs = Vec::new();
    for intensity in INTENSITIES {
        for policy in [
            PolicyKind::Mpdp,
            PolicyKind::Background,
            PolicyKind::AperiodicFirst,
        ] {
            knobs.push(
                Knobs::named(format!("{intensity}/{}", policy.name()))
                    .with_policy(policy)
                    .with_faults(plan_of(intensity))
                    .with_degradation(degradation()),
            );
        }
    }
    SweepSpec {
        utilizations: vec![0.5],
        proc_counts,
        seeds: (0..seeds as u64).collect(),
        knobs,
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Bursts {
            activations: 2,
            gap: Cycles::from_secs(12),
        },
        master_seed: 0xFA_17,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let csv_path = flag_value(&args, "--csv");
    let json_path = flag_value(&args, "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let workers: usize = flag_value(&args, "--workers")
        .map(|v| v.parse().expect("--workers takes a count"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let seeds: usize = flag_value(&args, "--seeds")
        .map(|v| v.parse().expect("--seeds takes a count"))
        .unwrap_or(if quick { 1 } else { 2 });

    let proc_counts = if quick { vec![2] } else { vec![2, 3, 4] };
    let spec = fault_matrix_spec(proc_counts, seeds);
    eprintln!(
        "fault matrix: {} intensities x 3 policies, {} cells over {workers} worker(s) ...",
        INTENSITIES.len(),
        spec.cell_count()
    );
    let report = run_sweep(&spec, workers).expect("the fault-matrix spec is valid");
    eprintln!("swept {} cells in {:.2?}", report.cells.len(), report.wall);
    let groups = group_summaries(&report);

    println!("== fault matrix: survivability per (intensity/policy, processors) ==");
    println!(
        "{:<24} {:>5} {:>7} {:>9} {:>6} {:>6} {:>6} {:>9} {:>11}",
        "knob", "procs", "misses", "overruns", "kills", "shed", "lost", "recov_s", "guaranteed"
    );
    for g in &groups {
        let s = &g.survival;
        println!(
            "{:<24} {:>5} {:>7} {:>9} {:>6} {:>6} {:>6} {:>9} {:>10.0}%",
            g.knob_label,
            g.n_procs,
            s.miss_events,
            s.overruns,
            s.kills,
            s.shed,
            s.lost_irqs,
            s.recovery_latency()
                .map(|c| format!("{:.3}", c.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            s.guaranteed_fraction() * 100.0
        );
    }

    // The headline claim: after a processor fail-stop, MPDP's offline
    // promotions leave a larger guaranteed-task fraction than serving
    // aperiodics at top priority, at every processor count.
    println!();
    println!("== guaranteed-task fraction after fail-stop (failover intensity) ==");
    let fraction = |policy: &str, m: usize| {
        groups
            .iter()
            .find(|g| g.knob_label == format!("failover/{policy}") && g.n_procs == m)
            .map(|g| g.survival.guaranteed_fraction())
    };
    for &m in spec.proc_counts.iter() {
        let mpdp = fraction("mpdp", m).unwrap_or(f64::NAN);
        let bg = fraction("background", m).unwrap_or(f64::NAN);
        let apf = fraction("aperiodic-first", m).unwrap_or(f64::NAN);
        println!(
            "{m}P  mpdp {:>5.1}%  background {:>5.1}%  aperiodic-first {:>5.1}%  {}",
            mpdp * 100.0,
            bg * 100.0,
            apf * 100.0,
            if mpdp > apf { "(mpdp ahead)" } else { "(!)" }
        );
    }

    if let Some(path) = csv_path {
        std::fs::write(&path, cells_csv(&report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report_json(&report))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}

//! The fault matrix: graceful degradation under injected faults, swept
//! over fault intensity × processor count × scheduling policy.
//!
//! Each intensity level layers more of the fault model onto the paper's
//! automotive workload: WCET overruns (with a heavy tail at the top
//! level), an aperiodic overload burst, lost/spurious timer interrupts, a
//! transient bus-latency spike, and — at the highest level — a processor
//! fail-stop with online re-admission of the dead core's partition. The
//! three policies are the paper's MPDP dual-priority scheduler and the two
//! §5 baselines (background service, aperiodic-first). The grid itself
//! lives in `mpdp_bench::fault_matrix_spec` so tests and the audit binary
//! sweep the exact same cells.
//!
//! The whole grid runs through the `mpdp-sweep` engine, so `--workers N`
//! parallelizes it without changing a single output byte. `--resume
//! journal.mpdpj` runs it through the self-healing executor with an
//! fsynced checkpoint journal — re-running after an interruption picks up
//! where it stopped and still exports identical bytes. `--monitor`
//! replays every cell through the runtime invariant monitors afterwards
//! and exits non-zero if any MPDP invariant was violated.
//!
//! Run with `cargo run --release -p mpdp-bench --bin exp_fault_matrix --
//! [--workers N] [--seeds K] [--csv out.csv] [--json out.json] [--quick]
//! [--resume journal.mpdpj] [--monitor]`. `--max-cells N` (only with
//! `--resume`) stops the executor after N fresh cells — a deterministic
//! stand-in for a mid-sweep crash, used by the CI resume smoke.

use mpdp_bench::cli::{
    check_known_flags, flag_value, has_flag, parse_flag, runtime_error, workers_flag, write_output,
};
use mpdp_bench::{audit_sweep, fault_matrix_spec, INTENSITIES};
use mpdp_sweep::{
    cells_csv, group_summaries, report_json, run_sweep, run_sweep_healing, HealConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    check_known_flags(
        &args,
        &[
            "--csv",
            "--json",
            "--workers",
            "--seeds",
            "--quick",
            "--resume",
            "--monitor",
            "--max-cells",
        ],
        &[
            "--csv",
            "--json",
            "--workers",
            "--seeds",
            "--resume",
            "--max-cells",
        ],
    );
    let csv_path = flag_value(&args, "--csv");
    let json_path = flag_value(&args, "--json");
    let quick = has_flag(&args, "--quick");
    let monitor = has_flag(&args, "--monitor");
    let resume = flag_value(&args, "--resume");
    let max_cells: Option<usize> = parse_flag(&args, "--max-cells", "a cell count");
    if max_cells.is_some() && resume.is_none() {
        mpdp_bench::cli::usage_error(format_args!("--max-cells requires --resume <journal>"));
    }
    let workers = workers_flag(&args);
    let seeds: usize =
        parse_flag(&args, "--seeds", "a seed count").unwrap_or(if quick { 1 } else { 2 });

    let proc_counts = if quick { vec![2] } else { vec![2, 3, 4] };
    let spec = fault_matrix_spec(proc_counts, seeds);
    eprintln!(
        "fault matrix: {} intensities x 3 policies, {} cells over {workers} worker(s) ...",
        INTENSITIES.len(),
        spec.cell_count()
    );
    let report = match &resume {
        Some(journal) => {
            let mut heal = HealConfig::default().with_journal(journal);
            if let Some(n) = max_cells {
                heal = heal.with_max_cells(n);
            }
            match run_sweep_healing(&spec, workers, &heal) {
                Ok(healed) => {
                    if healed.resumed > 0 {
                        eprintln!("resumed {} cell(s) from {journal}", healed.resumed);
                    }
                    healed.report
                }
                Err(e) => runtime_error(format_args!("sweep failed: {e}")),
            }
        }
        None => match run_sweep(&spec, workers) {
            Ok(report) => report,
            Err(e) => runtime_error(format_args!("sweep failed: {e}")),
        },
    };
    eprintln!("swept {} cells in {:.2?}", report.cells.len(), report.wall);
    let groups = group_summaries(&report);

    println!("== fault matrix: survivability per (intensity/policy, processors) ==");
    println!(
        "{:<24} {:>5} {:>7} {:>9} {:>6} {:>6} {:>6} {:>9} {:>11}",
        "knob", "procs", "misses", "overruns", "kills", "shed", "lost", "recov_s", "guaranteed"
    );
    for g in &groups {
        let s = &g.survival;
        println!(
            "{:<24} {:>5} {:>7} {:>9} {:>6} {:>6} {:>6} {:>9} {:>10.0}%",
            g.knob_label,
            g.n_procs,
            s.miss_events,
            s.overruns,
            s.kills,
            s.shed,
            s.lost_irqs,
            s.recovery_latency()
                .map(|c| format!("{:.3}", c.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            s.guaranteed_fraction() * 100.0
        );
    }

    // The headline claim: after a processor fail-stop, MPDP's offline
    // promotions leave a larger guaranteed-task fraction than serving
    // aperiodics at top priority, at every processor count.
    println!();
    println!("== guaranteed-task fraction after fail-stop (failover intensity) ==");
    let fraction = |policy: &str, m: usize| {
        groups
            .iter()
            .find(|g| g.knob_label == format!("failover/{policy}") && g.n_procs == m)
            .map(|g| g.survival.guaranteed_fraction())
    };
    for &m in spec.proc_counts.iter() {
        let mpdp = fraction("mpdp", m).unwrap_or(f64::NAN);
        let bg = fraction("background", m).unwrap_or(f64::NAN);
        let apf = fraction("aperiodic-first", m).unwrap_or(f64::NAN);
        println!(
            "{m}P  mpdp {:>5.1}%  background {:>5.1}%  aperiodic-first {:>5.1}%  {}",
            mpdp * 100.0,
            bg * 100.0,
            apf * 100.0,
            if mpdp > apf { "(mpdp ahead)" } else { "(!)" }
        );
    }

    if let Some(path) = csv_path {
        write_output(&path, &cells_csv(&report));
    }
    if let Some(path) = json_path {
        write_output(&path, &report_json(&report));
    }

    if monitor {
        eprintln!(
            "auditing {} cells against the invariant monitors ...",
            report.cells.len()
        );
        let audit = match audit_sweep(&spec) {
            Ok(audit) => audit,
            Err(e) => runtime_error(format_args!("audit failed: {e}")),
        };
        for line in audit.diagnostics() {
            eprintln!("{line}");
        }
        if !audit.is_clean() {
            runtime_error(format_args!(
                "monitor audit found {} invariant violation(s)",
                audit.violation_count()
            ));
        }
        eprintln!("monitor audit clean: {} cells", audit.audits.len());
    }
}

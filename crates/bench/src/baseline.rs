//! Typed loading of `BENCH_sweep.json` perf baselines.
//!
//! The perf gate compares a fresh run against a committed baseline file.
//! A missing, truncated, or schema-drifted baseline used to die wherever
//! the scanner happened to trip; here each failure mode is a
//! [`BaselineError`] the caller maps to a usage exit (the baseline is an
//! *input* the user named, so a bad one is a usage error, not a runtime
//! crash).

use std::error::Error;
use std::fmt;

use mpdp_obs::validate_json;

/// The schema marker every readable baseline must carry.
pub const BASELINE_SCHEMA: &str = "mpdp-bench-sweep/1";

/// Why a perf baseline could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The file could not be read at all.
    Missing {
        /// The path that was named.
        path: String,
        /// The OS diagnosis.
        detail: String,
    },
    /// The file is not well-formed JSON — a truncated write, a merge
    /// conflict, or a non-JSON file named by mistake.
    Invalid {
        /// The path that was named.
        path: String,
        /// The validator's diagnosis.
        detail: String,
    },
    /// The file is valid JSON but not a `mpdp-bench-sweep/1` report (wrong
    /// schema marker, a malformed bench entry, or no entries at all).
    Schema {
        /// The path that was named.
        path: String,
        /// What was wrong with the shape.
        detail: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Missing { path, detail } => {
                write!(f, "baseline {path} cannot be read: {detail}")
            }
            BaselineError::Invalid { path, detail } => {
                write!(
                    f,
                    "baseline {path} is not valid JSON ({detail}); truncated write?"
                )
            }
            BaselineError::Schema { path, detail } => {
                write!(f, "baseline {path} is not a usable bench report: {detail}")
            }
        }
    }
}

impl Error for BaselineError {}

/// Extracts `(name, wall_ms)` pairs from the entry lines of a validated
/// report body. The format is fixed (this repo writes it), so a line
/// scanner is enough; a line that looks like a bench entry but does not
/// parse is a typed error rather than a silently skipped gate.
fn parse_entries(path: &str, doc: &str) -> Result<Vec<(String, f64)>, BaselineError> {
    let schema_err = |detail: String| BaselineError::Schema {
        path: path.to_string(),
        detail,
    };
    let mut out = Vec::new();
    for line in doc.lines() {
        let Some(name_at) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else {
            return Err(schema_err(format!(
                "malformed bench entry: {}",
                line.trim()
            )));
        };
        let name = rest[..name_end].to_string();
        let Some(wall_at) = line.find("\"wall_ms\": ") else {
            return Err(schema_err(format!(
                "bench entry without wall_ms: {}",
                line.trim()
            )));
        };
        let tail = &line[wall_at + 11..];
        let digits: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        match digits.parse::<f64>() {
            Ok(ms) => out.push((name, ms)),
            Err(_) => {
                return Err(schema_err(format!(
                    "unparsable wall_ms in entry: {}",
                    line.trim()
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(schema_err("no bench entries".to_string()));
    }
    Ok(out)
}

/// Loads a `BENCH_sweep.json` baseline, returning its `(name, wall_ms)`
/// pairs.
///
/// # Errors
///
/// [`BaselineError::Missing`] when the file cannot be read,
/// [`BaselineError::Invalid`] when it is not well-formed JSON (which is
/// what a truncated write looks like), [`BaselineError::Schema`] when it
/// is JSON but not a recognizable bench report.
pub fn load_baseline(path: &str) -> Result<Vec<(String, f64)>, BaselineError> {
    load_baseline_with_schema(path, BASELINE_SCHEMA)
}

/// [`load_baseline`] generalized over the schema marker, so every gate in
/// the repo (`bench_sweep`'s `mpdp-bench-sweep/1`, `exp_serve_load`'s
/// `mpdp-bench-serve/1`) shares one loader and one error taxonomy.
///
/// # Errors
///
/// The same taxonomy as [`load_baseline`], with the schema check applied
/// to `schema` instead of [`BASELINE_SCHEMA`].
pub fn load_baseline_with_schema(
    path: &str,
    schema: &str,
) -> Result<Vec<(String, f64)>, BaselineError> {
    let doc = std::fs::read_to_string(path).map_err(|e| BaselineError::Missing {
        path: path.to_string(),
        detail: e.to_string(),
    })?;
    if let Err(e) = validate_json(&doc) {
        return Err(BaselineError::Invalid {
            path: path.to_string(),
            detail: e.to_string(),
        });
    }
    if !doc.contains(&format!("\"schema\": \"{schema}\"")) {
        return Err(BaselineError::Schema {
            path: path.to_string(),
            detail: format!("missing schema marker \"{schema}\""),
        });
    }
    parse_entries(path, &doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str, contents: Option<&str>) -> String {
        let path =
            std::env::temp_dir().join(format!("mpdp-baseline-{}-{name}.json", std::process::id()));
        match contents {
            Some(doc) => std::fs::write(&path, doc).expect("write baseline"),
            None => {
                let _ = std::fs::remove_file(&path);
            }
        }
        path.display().to_string()
    }

    const GOOD: &str = "{\n  \"schema\": \"mpdp-bench-sweep/1\",\n  \"benches\": [\n    \
        {\"name\": \"a\", \"cells\": 1, \"workers\": 1, \"wall_ms\": 1.500, \"cells_per_s\": 666.7},\n    \
        {\"name\": \"b\", \"cells\": 104, \"workers\": 8, \"wall_ms\": 20.000, \"cells_per_s\": 5200.0}\n  ]\n}\n";

    #[test]
    fn good_baseline_loads_every_entry() {
        let path = temp("good", Some(GOOD));
        let entries = load_baseline(&path).expect("loads");
        assert_eq!(
            entries,
            vec![("a".to_string(), 1.5), ("b".to_string(), 20.0)]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let path = temp("absent", None);
        assert!(matches!(
            load_baseline(&path),
            Err(BaselineError::Missing { .. })
        ));
    }

    #[test]
    fn truncated_json_is_invalid_not_a_panic() {
        // Chop the document mid-entry, as a torn write would.
        let path = temp("torn", Some(&GOOD[..GOOD.len() / 2]));
        assert!(matches!(
            load_baseline(&path),
            Err(BaselineError::Invalid { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wrong_schema_marker_is_rejected() {
        let path = temp(
            "marker",
            Some("{\"schema\": \"other/9\", \"benches\": []}\n"),
        );
        match load_baseline(&path) {
            Err(BaselineError::Schema { detail, .. }) => {
                assert!(detail.contains("schema marker"), "{detail}");
            }
            other => panic!("expected Schema, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn the_schema_marker_is_parameterizable() {
        let doc = "{\n  \"schema\": \"mpdp-bench-serve/1\",\n  \"benches\": [\n    \
            {\"name\": \"serve_load\", \"wall_ms\": 42.000, \"rps\": 1000.0}\n  ]\n}\n";
        let path = temp("serve-schema", Some(doc));
        let entries =
            load_baseline_with_schema(&path, "mpdp-bench-serve/1").expect("loads serve schema");
        assert_eq!(entries, vec![("serve_load".to_string(), 42.0)]);
        // The sweep-schema loader refuses the serve report, and vice versa.
        assert!(matches!(
            load_baseline(&path),
            Err(BaselineError::Schema { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn entry_without_wall_ms_is_rejected() {
        let doc = "{\n  \"schema\": \"mpdp-bench-sweep/1\",\n  \"benches\": [\n    \
            {\"name\": \"a\", \"cells\": 1}\n  ]\n}\n";
        let path = temp("no-wall", Some(doc));
        match load_baseline(&path) {
            Err(BaselineError::Schema { detail, .. }) => {
                assert!(detail.contains("wall_ms"), "{detail}");
            }
            other => panic!("expected Schema, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_bench_list_is_rejected() {
        let doc = "{\n  \"schema\": \"mpdp-bench-sweep/1\",\n  \"benches\": []\n}\n";
        let path = temp("empty", Some(doc));
        match load_baseline(&path) {
            Err(BaselineError::Schema { detail, .. }) => {
                assert!(detail.contains("no bench entries"), "{detail}");
            }
            other => panic!("expected Schema, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}

//! Shared command-line handling for the experiment binaries.
//!
//! Every binary parses its flags through these helpers so that invalid
//! arguments and unwritable output paths fail the same way everywhere:
//! a **one-line diagnostic on stderr** and a **non-zero exit** (2 for
//! usage errors, 1 for runtime failures) — never a panic with a backtrace,
//! which buries the actual problem and reports success-shaped exit codes
//! to shell pipelines on some platforms.

use std::fmt::Display;
use std::process::exit;
use std::str::FromStr;

/// Exit code for invalid command-line usage.
pub const USAGE_ERROR: i32 = 2;
/// Exit code for runtime failures (unwritable outputs, failed sweeps).
pub const RUNTIME_ERROR: i32 = 1;

/// Prints a one-line diagnostic and exits with `USAGE_ERROR`.
pub fn usage_error(message: impl Display) -> ! {
    eprintln!("error: {message}");
    exit(USAGE_ERROR);
}

/// Prints a one-line diagnostic and exits with `RUNTIME_ERROR`.
pub fn runtime_error(message: impl Display) -> ! {
    eprintln!("error: {message}");
    exit(RUNTIME_ERROR);
}

/// The raw value following `flag`, if present. A flag at the end of the
/// argument list with no value is a usage error.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => usage_error(format_args!("{flag} requires a value")),
    }
}

/// Whether the bare `flag` is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses the value of `flag` as a `T`, exiting with a one-line usage
/// diagnostic when the value does not parse. `what` names the expected
/// shape (e.g. `"a worker count"`).
pub fn parse_flag<T: FromStr>(args: &[String], flag: &str, what: &str) -> Option<T> {
    let raw = flag_value(args, flag)?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => usage_error(format_args!("{flag} takes {what}, got `{raw}`")),
    }
}

/// Rejects unknown `--flags`, catching typos like `--worker` before hours
/// of sweeping begin. `known` lists every flag the binary accepts; flag
/// values (the token after a value-taking flag) are skipped.
pub fn check_known_flags(args: &[String], known: &[&str], value_flags: &[&str]) {
    let mut i = 1; // skip argv[0]
    while i < args.len() {
        let arg = &args[i];
        if arg.starts_with("--") {
            if !known.contains(&arg.as_str()) {
                if known.is_empty() {
                    usage_error(format_args!(
                        "unknown flag `{arg}` (this binary takes no flags)"
                    ));
                }
                usage_error(format_args!(
                    "unknown flag `{arg}` (known: {})",
                    known.join(", ")
                ));
            }
            if value_flags.contains(&arg.as_str()) {
                i += 1; // skip the value token
            }
        } else {
            usage_error(format_args!("unexpected argument `{arg}`"));
        }
        i += 1;
    }
}

/// The worker count: `--workers N`, defaulting to available parallelism.
pub fn workers_flag(args: &[String]) -> usize {
    parse_flag(args, "--workers", "a thread count")
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Writes `contents` to `path`, exiting with a one-line diagnostic when
/// the path is unwritable, and confirms on stderr.
pub fn write_output(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        runtime_error(format_args!("cannot write {path}: {e}"));
    }
    eprintln!("wrote {path}");
}

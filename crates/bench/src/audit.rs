//! Runtime-verification audits over sweep cells.
//!
//! Re-runs cells with an [`mpdp_obs::EventRecorder`] threaded through both
//! simulator stacks, replays the recorded streams through an
//! [`InvariantMonitor`] per stack, and cross-checks the two streams with
//! the differential oracle. This is how the `--monitor` flags and the
//! `exp_monitor_audit` binary validate a sweep: the *exported* numbers stay
//! byte-identical (observation never perturbs the simulation — the audited
//! run is a separate probed re-run), while every MPDP invariant is checked
//! against the paper's scheduling rules.
//!
//! ## Tolerances
//!
//! The two stacks stamp events with different fidelity, so they get
//! different monitor configurations:
//!
//! - **theoretical**: releases and promotions are stamped at the
//!   scheduling pass that applies them, so stamps trail nominal times by
//!   at most one tick — late-tolerance of one tick, zero early slack.
//! - **prototype**: stamps are taken inside ISRs and carry interrupt
//!   latency, which can also make a promotion *appear* earlier than a
//!   late-stamped release — late-tolerance of two ticks plus one tick of
//!   early slack.
//!
//! The oracle compares occurrence *histories* (per-task release and
//! completion counts and met/missed verdicts), never raw stamps, so it is
//! immune to the prototype's latency shift; it is only sound for
//! fault-free cells, where both stacks see the same workload.

use mpdp_monitor::{
    diff_streams, InvariantMonitor, MonitorConfig, MonitorReport, OracleReport, TaskCatalog,
};
use mpdp_sweep::{cell_table, run_cell_probed, CellSpec, Knobs, SweepError, SweepSpec};

/// Whether a knob setting leaves both stacks fault-free: empty fault plan
/// and an inert degradation policy. Only then do the guaranteed-deadline,
/// FIFO, and band-ordering invariants (and the oracle) apply.
pub fn knob_is_fault_free(knob: &Knobs) -> bool {
    knob.faults.is_empty() && knob.degradation.is_inert()
}

/// Monitor configuration for the theoretical stack of a cell.
pub fn theoretical_config(knob: &Knobs) -> MonitorConfig {
    if knob_is_fault_free(knob) {
        MonitorConfig::fault_free(knob.tick)
    } else {
        MonitorConfig::faulted(knob.tick)
    }
}

/// Monitor configuration for the prototype stack of a cell.
pub fn prototype_config(knob: &Knobs) -> MonitorConfig {
    let tolerance = knob.tick.saturating_add(knob.tick);
    let base = if knob_is_fault_free(knob) {
        MonitorConfig::fault_free(tolerance)
    } else {
        MonitorConfig::faulted(tolerance)
    };
    base.with_early_slack(knob.tick)
}

/// Verdict of auditing one sweep cell: an invariant report per stack plus
/// the differential oracle's cross-check (fault-free cells only).
#[derive(Debug, Clone)]
pub struct CellAudit {
    /// The audited cell's grid coordinates.
    pub cell: CellSpec,
    /// Label of the knob setting the cell ran under.
    pub knob_label: String,
    /// Whether the offline analysis admitted the task set. Unschedulable
    /// cells run nothing and carry trivially clean reports.
    pub schedulable: bool,
    /// Invariant report for the theoretical stack.
    pub theoretical: MonitorReport,
    /// Invariant report for the prototype stack.
    pub real: MonitorReport,
    /// Differential cross-check, `None` for faulted knobs (the stacks
    /// legitimately diverge once faults land).
    pub oracle: Option<OracleReport>,
}

impl CellAudit {
    /// Whether both stacks were violation-free and the oracle (if run)
    /// found the streams in agreement.
    pub fn is_clean(&self) -> bool {
        self.theoretical.is_clean()
            && self.real.is_clean()
            && self.oracle.as_ref().is_none_or(OracleReport::is_agreed)
    }

    /// Total violations across both stacks.
    pub fn violation_count(&self) -> usize {
        self.theoretical.violations.len() + self.real.violations.len()
    }
}

/// Audits one cell: probed re-run, monitor replay per stack, oracle for
/// fault-free knobs.
///
/// # Errors
///
/// Propagates any [`SweepError`] from the underlying cell run.
pub fn audit_cell(spec: &SweepSpec, cell: &CellSpec) -> Result<CellAudit, SweepError> {
    let knob = &spec.knobs[cell.knob_index];
    let (result, obs) = run_cell_probed(spec, cell)?;
    if !result.schedulable {
        return Ok(CellAudit {
            cell: *cell,
            knob_label: result.knob_label,
            schedulable: false,
            theoretical: MonitorReport::default(),
            real: MonitorReport::default(),
            oracle: None,
        });
    }
    let (table, _target) =
        cell_table(spec, cell).expect("schedulable cell reconstructs its task table");
    let catalog = TaskCatalog::new(&table);

    let mut theo = InvariantMonitor::new(catalog.clone(), theoretical_config(knob));
    theo.replay(&obs.theoretical);
    let theoretical = theo.finish(obs.horizon);

    let mut proto = InvariantMonitor::new(catalog, prototype_config(knob));
    proto.replay(&obs.real);
    let real = proto.finish(obs.horizon);

    let oracle =
        knob_is_fault_free(knob).then(|| diff_streams(obs.theoretical.events(), obs.real.events()));

    Ok(CellAudit {
        cell: *cell,
        knob_label: result.knob_label,
        schedulable: true,
        theoretical,
        real,
        oracle,
    })
}

/// Aggregate verdict of auditing every cell of a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepAudit {
    /// Per-cell audits, in cell-index order.
    pub audits: Vec<CellAudit>,
}

impl SweepAudit {
    /// Whether every cell came back clean.
    pub fn is_clean(&self) -> bool {
        self.audits.iter().all(CellAudit::is_clean)
    }

    /// Total invariant violations across all cells and both stacks.
    pub fn violation_count(&self) -> usize {
        self.audits.iter().map(CellAudit::violation_count).sum()
    }

    /// Cells whose oracle found the streams diverged.
    pub fn disagreements(&self) -> impl Iterator<Item = &CellAudit> {
        self.audits
            .iter()
            .filter(|a| a.oracle.as_ref().is_some_and(|o| !o.is_agreed()))
    }

    /// One diagnostic line per dirty cell (empty when clean), suitable for
    /// stderr: the first violation of each stack and the first divergence.
    pub fn diagnostics(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for a in &self.audits {
            if a.is_clean() {
                continue;
            }
            let coord = format!(
                "cell {} ({}, {} procs, util {:.2}, seed {})",
                a.cell.index, a.knob_label, a.cell.n_procs, a.cell.utilization, a.cell.seed
            );
            if let Some(v) = a.theoretical.violations.first() {
                lines.push(format!("{coord}: theoretical: {v}"));
            }
            if let Some(v) = a.real.violations.first() {
                lines.push(format!("{coord}: prototype: {v}"));
            }
            if let Some(d) = a.oracle.as_ref().and_then(|o| o.divergence.as_ref()) {
                lines.push(format!("{coord}: oracle: {d}"));
            }
        }
        lines
    }
}

/// Audits every cell of a sweep, sequentially (cells are short; auditing
/// is for correctness runs, not throughput).
///
/// # Errors
///
/// Propagates the first [`SweepError`] from the underlying cell runs.
pub fn audit_sweep(spec: &SweepSpec) -> Result<SweepAudit, SweepError> {
    let mut audits = Vec::with_capacity(spec.cells().len());
    for cell in spec.cells() {
        audits.push(audit_cell(spec, &cell)?);
    }
    Ok(SweepAudit { audits })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::figure4();
        spec.proc_counts = vec![2];
        spec.utilizations = vec![0.4];
        spec.seeds = vec![0];
        spec
    }

    #[test]
    fn figure4_cell_audits_clean() {
        let spec = tiny_spec();
        let audit = audit_sweep(&spec).expect("sweep runs");
        assert_eq!(audit.audits.len(), 1);
        assert!(
            audit.is_clean(),
            "expected a clean audit, got:\n{}",
            audit.diagnostics().join("\n")
        );
        let cell = &audit.audits[0];
        assert!(cell.schedulable);
        assert!(cell.theoretical.events_seen > 0);
        assert!(cell.real.events_seen > 0);
        assert!(cell.oracle.as_ref().is_some_and(|o| o.matched > 0));
    }

    #[test]
    fn prototype_tolerances_are_wider() {
        let knob = Knobs::default();
        let theo = theoretical_config(&knob);
        let proto = prototype_config(&knob);
        assert!(theo.fault_free && proto.fault_free);
        assert!(proto.tolerance > theo.tolerance);
        assert!(proto.early_slack > theo.early_slack);
        assert_eq!(theo.early_slack.as_u64(), 0);
    }
}

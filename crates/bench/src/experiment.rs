//! The Figure 4 experiment: mean aperiodic response time, Theoretical vs
//! Real, over 2–4 processors and 40/50/60% periodic utilization.
//!
//! Workload per the paper (§5): the 18-periodic MiBench automotive set with
//! periods synthesized for the target utilization, plus the `susan`-large
//! aperiodic task "triggered by an interrupt ... that, for example, can
//! signal the arrival of the image to analyse from the cameras". The
//! offline tool quantizes promotions to the 0.1 s tick and budgets kernel
//! and contention overheads with a WCET margin.

use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_core::task::TaskTable;
use mpdp_core::time::{Cycles, DEFAULT_TICK};
use mpdp_sweep::{
    run_sweep, ArrivalSpec, CellResult, Knobs, PolicyKind, SweepReport, SweepSpec, WorkloadSpec,
};
use mpdp_workload::automotive_task_set;

/// Knobs of the Figure 4 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Scheduler tick (paper: 0.1 s).
    pub tick: Cycles,
    /// Theoretical overhead fraction (paper: 2%).
    pub theoretical_overhead: f64,
    /// Analysis-time WCET margin budgeting kernel + contention overheads on
    /// the prototype.
    pub wcet_margin: f64,
    /// Number of aperiodic activations to average over.
    pub activations: usize,
    /// Gap between aperiodic activations (must exceed the worst response so
    /// activations do not overlap, as in the paper's one-at-a-time setup).
    pub activation_gap: Cycles,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            tick: DEFAULT_TICK,
            theoretical_overhead: 0.02,
            wcet_margin: 1.15,
            activations: 4,
            activation_gap: Cycles::from_secs(12),
        }
    }
}

impl ExperimentConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A faster configuration for tests (fewer activations).
    pub fn quick() -> Self {
        ExperimentConfig {
            activations: 1,
            ..Self::default()
        }
    }
}

/// One cell of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Processor count.
    pub n_procs: usize,
    /// Target system utilization.
    pub utilization: f64,
    /// Mean `susan`-large response time, theoretical simulator (seconds).
    pub theoretical_s: f64,
    /// Mean `susan`-large response time, prototype stack (seconds).
    pub real_s: f64,
    /// Periodic deadline misses observed on the prototype (the paper's
    /// configurations have none).
    pub misses: usize,
}

impl Fig4Point {
    /// Percentage by which the prototype is slower than the theoretical
    /// simulation (the paper's 7–27% numbers).
    pub fn slowdown_pct(&self) -> f64 {
        100.0 * (self.real_s / self.theoretical_s - 1.0)
    }
}

/// Builds the analyzed task table for an experiment cell.
///
/// # Panics
///
/// Panics if the workload is unschedulable at this utilization (does not
/// happen for the paper's 40–60% range).
pub fn build_table(n_procs: usize, utilization: f64, config: &ExperimentConfig) -> TaskTable {
    let set = automotive_task_set(utilization, n_procs, config.tick);
    prepare(
        set.periodic,
        set.aperiodic,
        n_procs,
        ToolOptions::new()
            .with_quantization(config.tick)
            .with_wcet_margin(config.wcet_margin),
    )
    .expect("the 40-60% automotive workload is schedulable")
}

/// The aperiodic arrival schedule: `activations` triggers of aperiodic task
/// 0 (susan-large), one at a time, with a deterministic phase jitter so the
/// mean response covers different alignments against the 0.1 s scheduler
/// tick (the camera is not synchronized to the scheduler).
pub fn arrival_schedule(config: &ExperimentConfig) -> Vec<(Cycles, usize)> {
    (0..config.activations)
        .map(|i| {
            let jitter = Cycles::from_millis((37 * i as u64 + 13) % 100);
            (
                Cycles::from_secs(1) + config.activation_gap * i as u64 + jitter,
                0usize,
            )
        })
        .collect()
}

/// The sweep-engine knob setting equivalent to an [`ExperimentConfig`].
pub fn knobs_of(config: &ExperimentConfig) -> Knobs {
    Knobs {
        label: "paper".to_string(),
        tick: config.tick,
        theoretical_overhead: config.theoretical_overhead,
        wcet_margin: config.wcet_margin,
        context_scale: 1.0,
        policy: PolicyKind::Mpdp,
        ..Knobs::default()
    }
}

/// The declarative Figure 4 sweep: 2–4 processors × 40/50/60% utilization,
/// automotive workload, with the classic deterministic arrival schedule
/// pinned explicitly so the figure's numbers do not depend on RNG plumbing.
pub fn fig4_spec(config: &ExperimentConfig) -> SweepSpec {
    let arrivals = arrival_schedule(config);
    let horizon = arrivals.last().expect("at least one activation").0
        + config.activation_gap
        + Cycles::from_secs(5);
    SweepSpec {
        utilizations: vec![0.4, 0.5, 0.6],
        proc_counts: vec![2, 3, 4],
        seeds: vec![0],
        knobs: vec![knobs_of(config)],
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Explicit { arrivals, horizon },
        master_seed: 0,
    }
}

/// [`fig4_spec`] with a `seeds`-seed Monte Carlo transform: for `seeds >
/// 1` the pinned classic arrival schedule is replaced by per-seed
/// randomized burst phases drawn from each cell's RNG stream. This is the
/// one place the transform lives, so the `fig4_response_time` binary, its
/// shard workers, and any merge invocation agree on the spec (and thus the
/// journal fingerprint) by construction.
pub fn fig4_seeded_spec(config: &ExperimentConfig, seeds: usize) -> SweepSpec {
    let mut spec = fig4_spec(config);
    if seeds > 1 {
        spec.arrivals = ArrivalSpec::Bursts {
            activations: config.activations,
            gap: config.activation_gap,
        };
        spec.seeds = (0..seeds as u64).collect();
    }
    spec
}

/// The 104-cell benchmark grid: the same shape as the determinism
/// regression grid (2 utilizations × 2 processors × 26 seeds × 2 knob
/// settings, single-burst arrivals) so the perf trajectory and the
/// byte-identity contract exercise one and the same workload.
pub fn bench104_spec() -> SweepSpec {
    SweepSpec {
        utilizations: vec![0.4, 0.5],
        proc_counts: vec![2],
        seeds: (0..26).collect(),
        knobs: vec![
            Knobs::default(),
            Knobs::named("fast-tick").with_tick(Cycles::from_millis(50)),
        ],
        workload: WorkloadSpec::Automotive,
        arrivals: ArrivalSpec::Bursts {
            activations: 1,
            gap: Cycles::from_secs(8),
        },
        master_seed: 0xD1CE,
    }
}

/// [`bench104_spec`] with exactly one grid-axis literal edited: the last
/// seed value. The edit invalidates the 4 cells that use that seed (2
/// utilizations × 2 knobs) and leaves the other 100 untouched, so a warm
/// cell cache primed by `bench104` must answer 100/104 lookups (96.2%
/// hits) when this spec re-runs. CI's cache job pins that ratio.
pub fn bench104_edited_spec() -> SweepSpec {
    let mut spec = bench104_spec();
    *spec.seeds.last_mut().expect("bench104 has seeds") = 1000;
    spec
}

/// Converts one sweep cell into the Figure 4 point shape.
///
/// # Panics
///
/// Panics if either stack recorded no aperiodic completion (the Figure 4
/// horizon is sized so this cannot happen).
pub fn point_from_cell(cell: &CellResult) -> Fig4Point {
    Fig4Point {
        n_procs: cell.cell.n_procs,
        utilization: cell.cell.utilization,
        theoretical_s: cell
            .theoretical
            .aperiodic
            .finalize()
            .expect("susan completes in the theoretical run")
            .mean_s,
        real_s: cell
            .real
            .aperiodic
            .finalize()
            .expect("susan completes on the prototype")
            .mean_s,
        misses: cell.real.periodic.misses(),
    }
}

/// Runs one cell of Figure 4 on both stacks, through the sweep engine.
///
/// # Panics
///
/// Panics if the aperiodic task never completes within the horizon (the
/// horizon is sized to fit every activation).
pub fn fig4_point(n_procs: usize, utilization: f64, config: &ExperimentConfig) -> Fig4Point {
    let mut spec = fig4_spec(config);
    spec.proc_counts = vec![n_procs];
    spec.utilizations = vec![utilization];
    let report = run_sweep(&spec, 1).expect("the Figure 4 spec is valid");
    point_from_cell(&report.cells[0])
}

/// Runs the full Figure 4 grid through the sweep engine over `workers`
/// threads and returns the raw report (cells in canonical order).
///
/// # Panics
///
/// Panics if the built-in Figure 4 spec fails validation (a bug, not an
/// input condition).
pub fn fig4_report(config: &ExperimentConfig, workers: usize) -> SweepReport {
    run_sweep(&fig4_spec(config), workers).expect("the Figure 4 spec is valid")
}

/// The full Figure 4 sweep: 2–4 processors × 40/50/60% utilization,
/// parallelized over the machine's cores (deterministic regardless — see
/// the `mpdp_sweep` determinism contract).
pub fn fig4_sweep(config: &ExperimentConfig) -> Vec<Fig4Point> {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    fig4_report(config, workers)
        .cells
        .iter()
        .map(point_from_cell)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_reproduces_the_papers_shape() {
        let point = fig4_point(2, 0.4, &ExperimentConfig::quick());
        // Response at least susan's execution time.
        assert!(point.theoretical_s >= 5.438, "{point:?}");
        // Prototype slower than theoretical, but not absurdly so.
        assert!(point.real_s > point.theoretical_s, "{point:?}");
        assert!(point.slowdown_pct() < 60.0, "{point:?}");
        assert_eq!(point.misses, 0, "{point:?}");
    }

    #[test]
    fn arrival_schedule_is_sorted_and_sized() {
        let cfg = ExperimentConfig::new();
        let arr = arrival_schedule(&cfg);
        assert_eq!(arr.len(), cfg.activations);
        assert!(arr.windows(2).all(|w| w[0].0 < w[1].0));
    }
}

//! Property gate for torn-tail recovery at the exact record boundary.
//!
//! Both durable line formats — the sweep checkpoint journal (`MPDPJ1`)
//! and the cell-cache segment (`MPDPC1`) — end every record with a
//! ` #<16-hex FNV-1a>` trailer and a newline, and recover a crash by
//! truncating at the first malformed line. The subtle cuts are the ones
//! landing *on* that boundary: one byte into the newline, anywhere
//! inside the 16-hex checksum, or exactly at the `#`. A cut there leaves
//! a line that is almost — but not quite — a record, and an off-by-one
//! in the recovery scan would either accept a half-checksummed record
//! (corrupt data survives) or reject the intact previous record (a
//! durably completed cell is lost). This test sweeps every cut position
//! across the whole final record, newline and checksum included, and
//! pins the invariant: the torn record is dropped, every earlier record
//! survives, recovery is idempotent, and the file accepts new appends.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use mpdp_sweep::{run_cell, CellCache, Journal, SweepSpec};

fn spec() -> SweepSpec {
    let mut spec = SweepSpec::figure4();
    spec.proc_counts = vec![2];
    spec.utilizations = vec![0.4];
    spec.seeds = vec![0, 1, 2];
    spec
}

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpdp-prop-tears-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Pristine bytes of a 3-record artifact plus the byte offset where its
/// final record's line starts. Built once — the cells are real runs, and
/// proptest replays the tear many times over the same bytes.
struct Pristine {
    text: String,
    last_line_start: usize,
    records: usize,
}

impl Pristine {
    fn from_file(path: &std::path::Path, records: usize) -> Self {
        let text = std::fs::read_to_string(path).expect("pristine artifact reads");
        assert_eq!(text.lines().count(), records + 1, "header + records");
        let last_line_start = text[..text.len() - 1]
            .rfind('\n')
            .expect("more than one line")
            + 1;
        Pristine {
            text,
            last_line_start,
            records,
        }
    }
}

fn pristine_journal() -> &'static Pristine {
    static CELL: OnceLock<Pristine> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = spec();
        let dir = tempdir("journal-pristine");
        let path = dir.join("pristine.mpdpj");
        let journal = Journal::open(&path, &spec).expect("journal opens");
        for cell in &spec.cells() {
            let result = run_cell(&spec, cell).expect("cell runs");
            journal
                .append(spec.cell_stream(cell), &result)
                .expect("appends");
        }
        Pristine::from_file(&path, spec.cell_count())
    })
}

fn pristine_segment() -> &'static Pristine {
    static CELL: OnceLock<Pristine> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = spec();
        let dir = tempdir("segment-pristine");
        let cache = CellCache::open(&dir).expect("cache opens");
        for cell in &spec.cells() {
            let result = run_cell(&spec, cell).expect("cell runs");
            cache.insert(&spec, cell, &result);
        }
        assert_eq!(cache.len(), spec.cell_count());
        let segment = dir.join(format!("seg-{}.mpdpc", std::process::id()));
        Pristine::from_file(&segment, spec.cell_count())
    })
}

/// Plants `pristine` truncated to `cut` bytes at `path`.
fn plant(pristine: &Pristine, cut: usize, path: &std::path::Path) {
    std::fs::write(path, &pristine.text.as_bytes()[..cut]).expect("plant torn artifact");
}

proptest! {
    // Every cut position across the final record — its first body byte
    // through the trailing newline — plus the intact file (back = 0).
    // Exhaustive over the boundary by construction: `back` ranges past
    // the ~19-byte ` #<16-hex>\n` trailer into the record body.
    #[test]
    fn sweep_journal_survives_tears_on_the_last_record_boundary(back in 0usize..64) {
        let pristine = pristine_journal();
        let cut = pristine.text.len() - back;
        prop_assume!(cut >= pristine.last_line_start);
        let spec = spec();
        let dir = tempdir("journal");
        let path = dir.join("torn.mpdpj");
        plant(pristine, cut, &path);

        let expected = if back == 0 {
            pristine.records
        } else {
            // Any strict prefix of the last line — even one missing only
            // the final newline — must be dropped, never half-parsed.
            pristine.records - 1
        };
        let journal = Journal::open(&path, &spec).expect("recovery succeeds");
        prop_assert_eq!(journal.recovered().len(), expected);
        drop(journal);

        // Recovery truncated the tear away: a second open is a no-op,
        // and the journal accepts the lost cell back.
        let journal = Journal::open(&path, &spec).expect("recovered file reopens");
        prop_assert_eq!(journal.recovered().len(), expected);
        if expected < pristine.records {
            let cells = spec.cells();
            let lost = &cells[pristine.records - 1];
            let result = run_cell(&spec, lost).expect("lost cell re-runs");
            journal.append(spec.cell_stream(lost), &result).expect("append after tear");
            drop(journal);
            let journal = Journal::open(&path, &spec).expect("reopens complete");
            prop_assert_eq!(journal.recovered().len(), pristine.records);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_segment_survives_tears_on_the_last_record_boundary(back in 0usize..64) {
        let pristine = pristine_segment();
        let cut = pristine.text.len() - back;
        prop_assume!(cut >= pristine.last_line_start);
        let spec = spec();
        let dir = tempdir("segment");
        // The torn file is this process's *own* segment, so reopening the
        // directory recovers it through the same truncate-at-tear path
        // the journal uses (a foreign segment would merely stop loading).
        plant(pristine, cut, &dir.join(format!("seg-{}.mpdpc", std::process::id())));

        let expected = if back == 0 {
            pristine.records
        } else {
            pristine.records - 1
        };
        let cache = CellCache::open(&dir).expect("cache recovers the torn segment");
        prop_assert_eq!(cache.len(), expected);
        // The surviving records still answer lookups; the torn record
        // misses and can be re-inserted.
        let cells = spec.cells();
        for (i, cell) in cells.iter().enumerate() {
            let hit = cache.lookup(&spec, cell).is_some();
            prop_assert_eq!(hit, i < expected, "cell {} cached={}", i, hit);
        }
        if expected < pristine.records {
            let lost = &cells[pristine.records - 1];
            let result = run_cell(&spec, lost).expect("lost cell re-runs");
            cache.insert(&spec, lost, &result);
            drop(cache);
            let cache = CellCache::open(&dir).expect("cache reopens complete");
            prop_assert_eq!(cache.len(), pristine.records);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The generic crash-safe append-only line journal underneath
//! [`Journal`](crate::Journal) — extracted so other subsystems (the
//! `mpdpd` admission daemon's session journal) can reuse the exact
//! recovery discipline the sweep checkpoints proved out:
//!
//! - a header line `<MAGIC> fp=<16-hex fingerprint>` binding the file to
//!   one writer configuration; a mismatch is an error, a torn header (a
//!   kill mid-first-write) resets the file;
//! - one record per line, each carrying a ` #<16-hex FNV-1a>` checksum of
//!   its body, fsynced as written;
//! - on open, records are recovered in order and the file is truncated at
//!   the first torn or checksum-failing line — a crash loses at most the
//!   record being written, never the file.
//!
//! This layer knows nothing about record *content*: callers get the
//! recovered bodies back as strings, validate them domain-side, and may
//! [`truncate_to`](LineJournal::truncate_to) a shorter prefix if a
//! checksum-clean record fails semantic validation.

use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a over a byte string; the journal's fingerprint and record
/// checksum. Not cryptographic — it detects torn writes and accidental
/// configuration drift, which is all a local checkpoint needs.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Why a [`LineJournal`] could not be opened or written.
#[derive(Debug)]
pub struct LineJournalError {
    /// The journal file involved.
    pub path: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for LineJournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

impl Error for LineJournalError {}

/// An open append-only journal: the record bodies recovered from disk
/// plus an append handle. Appends are serialized through an internal
/// mutex and fsynced one by one, so the file is consistent after a kill
/// at any instant.
#[derive(Debug)]
pub struct LineJournal {
    path: PathBuf,
    file: Mutex<File>,
    header_len: u64,
    /// On-disk byte length of each recovered record line (including the
    /// checksum suffix and newline), for [`truncate_to`](Self::truncate_to).
    spans: Vec<u64>,
    recovered: Vec<String>,
}

impl LineJournal {
    /// Opens (or creates) the journal at `path`, expecting the header
    /// `<magic> fp=<fingerprint>`.
    ///
    /// An existing file is recovered: the header must match (a mismatch
    /// is an error — appending to someone else's journal would silently
    /// mix incompatible records; a torn, newline-less header prefix is
    /// reset instead), every checksum-clean line's body is returned by
    /// [`recovered`](Self::recovered), and the file is truncated at the
    /// first torn or checksum-failing line.
    ///
    /// # Errors
    ///
    /// [`LineJournalError`] on I/O failure or header mismatch.
    pub fn open(path: &Path, magic: &str, fingerprint: u64) -> Result<Self, LineJournalError> {
        let err = |detail: String| LineJournalError {
            path: path.display().to_string(),
            detail,
        };
        let header = format!("{magic} fp={fingerprint:016x}\n");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| err(format!("cannot open: {e}")))?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)
            .map_err(|e| err(format!("cannot read: {e}")))?;

        let mut recovered = Vec::new();
        let mut spans = Vec::new();
        if contents.is_empty() {
            file.write_all(header.as_bytes())
                .map_err(|e| err(format!("cannot write header: {e}")))?;
            file.sync_data()
                .map_err(|e| err(format!("cannot sync: {e}")))?;
        } else if !contents.contains('\n') && header.starts_with(&contents) {
            // A kill landed mid-header-write: the file holds a strict
            // prefix of the expected header. Nothing was journaled yet, so
            // reset the file rather than reject it as a different writer.
            file.set_len(0)
                .map_err(|e| err(format!("cannot reset torn header: {e}")))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| err(format!("cannot seek: {e}")))?;
            file.write_all(header.as_bytes())
                .map_err(|e| err(format!("cannot write header: {e}")))?;
            file.sync_data()
                .map_err(|e| err(format!("cannot sync: {e}")))?;
        } else {
            let mut lines = contents.split_inclusive('\n');
            let head = lines.next().unwrap_or("");
            if head.trim_end() != header.trim_end() {
                return Err(err(format!(
                    "fingerprint mismatch (journal was written for a different \
                     configuration); expected header `{}`",
                    header.trim_end()
                )));
            }
            // Recover records until the first torn or checksum-failing
            // line, then truncate there: a torn final write loses one
            // record, never the file.
            let mut good = head.len() as u64;
            for line in lines {
                if !line.ends_with('\n') {
                    break; // torn tail
                }
                let Some(body) = verify_checksum(line.trim_end()) else {
                    break;
                };
                recovered.push(body.to_string());
                spans.push(line.len() as u64);
                good += line.len() as u64;
            }
            if good < contents.len() as u64 {
                file.set_len(good)
                    .map_err(|e| err(format!("cannot truncate recovered tail: {e}")))?;
            }
            file.seek(SeekFrom::End(0))
                .map_err(|e| err(format!("cannot seek: {e}")))?;
        }
        Ok(LineJournal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            header_len: header.len() as u64,
            spans,
            recovered,
        })
    }

    /// The record bodies recovered from disk at open, in file order, with
    /// checksum suffixes verified and stripped.
    pub fn recovered(&self) -> &[String] {
        &self.recovered
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Keeps only the first `keep` recovered records, truncating the file
    /// to match. Domain layers call this when a checksum-clean record
    /// fails semantic validation: everything from that record on is
    /// dropped, exactly as if the write had torn. A `keep` at or past the
    /// recovered count is a no-op.
    ///
    /// # Errors
    ///
    /// [`LineJournalError`] if the truncation itself fails.
    pub fn truncate_to(&mut self, keep: usize) -> Result<(), LineJournalError> {
        if keep >= self.recovered.len() {
            return Ok(());
        }
        let err = |detail: String| LineJournalError {
            path: self.path.display().to_string(),
            detail,
        };
        let len = self.header_len + self.spans[..keep].iter().sum::<u64>();
        let file = self.file.get_mut().unwrap_or_else(|e| e.into_inner());
        file.set_len(len)
            .map_err(|e| err(format!("cannot truncate invalid tail: {e}")))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| err(format!("cannot seek: {e}")))?;
        self.recovered.truncate(keep);
        self.spans.truncate(keep);
        Ok(())
    }

    /// Appends one record and fsyncs. The checksum suffix is added here;
    /// `body` must be a single line.
    ///
    /// # Errors
    ///
    /// [`LineJournalError`] if `body` contains a newline or I/O fails.
    pub fn append(&self, body: &str) -> Result<(), LineJournalError> {
        let err = |detail: String| LineJournalError {
            path: self.path.display().to_string(),
            detail,
        };
        if body.contains('\n') {
            return Err(err("record body must be a single line".to_string()));
        }
        let line = format!("{body} #{:016x}\n", fnv1a(body.as_bytes()));
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())
            .map_err(|e| err(format!("cannot append: {e}")))?;
        file.sync_data()
            .map_err(|e| err(format!("cannot sync: {e}")))
    }
}

/// Splits a record line into its body, verifying the ` #<16-hex>`
/// checksum suffix. `None` if the suffix is missing, malformed, or wrong.
fn verify_checksum(line: &str) -> Option<&str> {
    let (body, crc) = line.rsplit_once(" #")?;
    if crc.len() != 16 {
        return None;
    }
    let crc = u64::from_str_radix(crc, 16).ok()?;
    (crc == fnv1a(body.as_bytes())).then_some(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(name: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("mpdp-ljnl-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn records_survive_reopen_and_torn_tails_truncate() {
        let path = tempfile("roundtrip");
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("creates");
        assert!(j.recovered().is_empty());
        j.append("alpha 1").expect("appends");
        j.append("beta 2").expect("appends");
        drop(j);
        // Tear the tail mid-record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"gamma 3 #dead").expect("tear");
        }
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("recovers");
        assert_eq!(j.recovered(), ["alpha 1", "beta 2"]);
        j.append("gamma 3").expect("appends after truncation");
        drop(j);
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("reopens");
        assert_eq!(j.recovered(), ["alpha 1", "beta 2", "gamma 3"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected_but_torn_header_resets() {
        let path = tempfile("fp");
        drop(LineJournal::open(&path, "TESTJ1", 7).expect("creates"));
        let err = LineJournal::open(&path, "TESTJ1", 8).expect_err("different fingerprint");
        assert!(err.detail.contains("fingerprint mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "TESTJ1 fp=00").expect("torn header");
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("torn header resets");
        assert!(j.recovered().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_to_drops_a_semantically_bad_suffix() {
        let path = tempfile("semantic");
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("creates");
        for body in ["good 1", "bad 2", "good 3"] {
            j.append(body).expect("appends");
        }
        drop(j);
        let mut j = LineJournal::open(&path, "TESTJ1", 7).expect("reopens");
        assert_eq!(j.recovered().len(), 3);
        // The domain layer deems record 1 invalid: keep only the prefix.
        j.truncate_to(1).expect("truncates");
        assert_eq!(j.recovered(), ["good 1"]);
        j.append("good 2").expect("appends after truncate");
        drop(j);
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("reopens");
        assert_eq!(j.recovered(), ["good 1", "good 2"]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multiline_bodies_are_refused() {
        let path = tempfile("multiline");
        let j = LineJournal::open(&path, "TESTJ1", 7).expect("creates");
        let err = j.append("two\nlines").expect_err("newline refused");
        assert!(err.detail.contains("single line"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}

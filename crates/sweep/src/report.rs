//! Sweep aggregation and machine-readable export.
//!
//! Cells are folded into group aggregates — one group per `(knob,
//! processor count, utilization)` — by merging the cells' response
//! accumulators **in cell-index order**, so the aggregate (and every byte
//! of the exports) is independent of the worker count that produced the
//! report. Wall-clock metadata never appears in an export.

//! When a sweep injects faults (or enforces degradation), every export
//! grows a survivability block — miss counts, first-miss time, recovery
//! latency, guaranteed-task fraction — gated on
//! [`SweepReport::faulted`] so fault-free sweeps stay byte-identical to
//! builds that predate the fault subsystem.

use std::fmt::Write as _;

use mpdp_core::time::Cycles;
use mpdp_sim::stats::{ResponseAccumulator, SurvivalStats};

use crate::engine::{CellResult, SweepReport};

/// Quantiles of the aggregate percentile curve, in export order.
pub const CURVE_QS: [f64; 6] = [0.25, 0.50, 0.75, 0.90, 0.95, 0.99];

/// Aggregate over every seed of one `(knob, n_procs, utilization)` point.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Knob label.
    pub knob_label: String,
    /// Processor count.
    pub n_procs: usize,
    /// Target utilization.
    pub utilization: f64,
    /// Cells merged into this group.
    pub cells: usize,
    /// Cells the offline analysis rejected.
    pub unschedulable: usize,
    /// Merged aperiodic responses, theoretical stack.
    pub theoretical: ResponseAccumulator,
    /// Merged aperiodic responses, prototype stack.
    pub real: ResponseAccumulator,
    /// Merged periodic completions (miss bookkeeping), prototype stack.
    pub periodic: ResponseAccumulator,
    /// Merged survivability bookkeeping, prototype stack (all-zero in
    /// fault-free sweeps; exported only when the report is faulted).
    pub survival: SurvivalStats,
}

impl GroupSummary {
    /// Prototype mean over theoretical mean as a slowdown percentage,
    /// `None` when either stack has no aperiodic completions.
    pub fn slowdown_pct(&self) -> Option<f64> {
        let theo = self.theoretical.finalize()?.mean_s;
        let real = self.real.finalize()?.mean_s;
        Some(100.0 * (real / theo - 1.0))
    }
}

/// Folds the report's cells into group aggregates, in first-appearance
/// (cell-index) order.
pub fn group_summaries(report: &SweepReport) -> Vec<GroupSummary> {
    let mut groups: Vec<GroupSummary> = Vec::new();
    for cell in &report.cells {
        fold_into_groups(&mut groups, cell);
    }
    groups
}

/// Merges one cell into the running group aggregates — the single fold
/// step shared by [`group_summaries`] and [`StreamingReport`].
fn fold_into_groups(groups: &mut Vec<GroupSummary>, cell: &CellResult) {
    let key = (
        cell.knob_label.as_str(),
        cell.cell.n_procs,
        cell.cell.utilization,
    );
    let at = match groups
        .iter()
        .position(|g| (g.knob_label.as_str(), g.n_procs, g.utilization) == key)
    {
        Some(p) => p,
        None => {
            groups.push(GroupSummary {
                knob_label: cell.knob_label.clone(),
                n_procs: cell.cell.n_procs,
                utilization: cell.cell.utilization,
                cells: 0,
                unschedulable: 0,
                theoretical: ResponseAccumulator::new(),
                real: ResponseAccumulator::new(),
                periodic: ResponseAccumulator::new(),
                survival: SurvivalStats::default(),
            });
            groups.len() - 1
        }
    };
    let group = &mut groups[at];
    group.cells += 1;
    if !cell.schedulable {
        group.unschedulable += 1;
    }
    group.theoretical.merge(&cell.theoretical.aperiodic);
    group.real.merge(&cell.real.aperiodic);
    group.periodic.merge(&cell.real.periodic);
    group.survival.merge(&cell.real.survival);
}

fn fmt_opt(value: Option<f64>) -> String {
    value.map(|v| format!("{v:.6}")).unwrap_or_default()
}

fn fmt_opt_secs(value: Option<Cycles>) -> String {
    value
        .map(|c| format!("{:.6}", c.as_secs_f64()))
        .unwrap_or_default()
}

/// Survivability column names under `prefix` (`theo`/`real`/`group`),
/// comma-joined with a leading comma.
fn survival_header(prefix: &str) -> String {
    [
        "miss_events",
        "first_miss_s",
        "overruns",
        "kills",
        "demotions",
        "shed",
        "lost_irqs",
        "spurious_irqs",
        "failed_proc",
        "recovery_s",
        "guaranteed",
    ]
    .iter()
    .fold(String::new(), |mut acc, col| {
        let _ = write!(acc, ",{prefix}_{col}");
        acc
    })
}

fn csv_survival(out: &mut String, s: &SurvivalStats) {
    let _ = write!(
        out,
        ",{},{},{},{},{},{},{},{},{},{},{:.6}",
        s.miss_events,
        fmt_opt_secs(s.first_miss),
        s.overruns,
        s.kills,
        s.demotions,
        s.shed,
        s.lost_irqs,
        s.spurious_irqs,
        s.failed_proc.map(|p| p.to_string()).unwrap_or_default(),
        fmt_opt_secs(s.recovery_latency()),
        s.guaranteed_fraction(),
    );
}

fn json_survival(out: &mut String, s: &SurvivalStats) {
    let _ = write!(out, "{{\"miss_events\":{},\"first_miss_s\":", s.miss_events);
    json_opt_secs(out, s.first_miss);
    let _ = write!(
        out,
        ",\"overruns\":{},\"kills\":{},\"demotions\":{},\"shed\":{},\"lost_irqs\":{},\"spurious_irqs\":{},\"failed_proc\":",
        s.overruns, s.kills, s.demotions, s.shed, s.lost_irqs, s.spurious_irqs
    );
    match s.failed_proc {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"recovery_s\":");
    json_opt_secs(out, s.recovery_latency());
    let _ = write!(out, ",\"guaranteed\":{:.6}}}", s.guaranteed_fraction());
}

fn json_opt_secs(out: &mut String, value: Option<Cycles>) {
    match value {
        Some(c) => {
            let _ = write!(out, "{:.6}", c.as_secs_f64());
        }
        None => out.push_str("null"),
    }
}

fn csv_stack(out: &mut String, acc: &ResponseAccumulator) {
    match acc.finalize() {
        Some(s) => {
            let _ = write!(
                out,
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                s.count, s.mean_s, s.p50_s, s.p95_s, s.p99_s, s.p999_s, s.max_s
            );
        }
        None => out.push_str("0,,,,,,"),
    }
}

/// One CSV row per cell, in cell-index order.
///
/// Columns: `cell,knob,n_procs,utilization,seed,schedulable,` then
/// `{theo,real}_{jobs,mean_s,p50_s,p95_s,p99_s,p999_s,max_s}`, then
/// `slowdown_pct,periodic_misses,miss_ratio,theo_switches,real_switches,sched_passes,context_words`.
pub fn cells_csv(report: &SweepReport) -> String {
    let mut out = cells_csv_header(report.faulted);
    for c in &report.cells {
        csv_cell_row(&mut out, c, report.faulted);
    }
    out
}

/// The `cells.csv` header line (with trailing newline).
fn cells_csv_header(faulted: bool) -> String {
    let mut out = String::from(
        "cell,knob,n_procs,utilization,seed,schedulable,\
         theo_jobs,theo_mean_s,theo_p50_s,theo_p95_s,theo_p99_s,theo_p999_s,theo_max_s,\
         real_jobs,real_mean_s,real_p50_s,real_p95_s,real_p99_s,real_p999_s,real_max_s,\
         slowdown_pct,periodic_misses,miss_ratio,\
         theo_switches,real_switches,sched_passes,context_words",
    );
    if faulted {
        out.push_str(&survival_header("theo"));
        out.push_str(&survival_header("real"));
    }
    out.push('\n');
    out
}

/// One `cells.csv` row (with trailing newline).
fn csv_cell_row(out: &mut String, c: &CellResult, faulted: bool) {
    let _ = write!(
        out,
        "{},{},{},{:.4},{},{},",
        c.cell.index, c.knob_label, c.cell.n_procs, c.cell.utilization, c.cell.seed, c.schedulable
    );
    csv_stack(out, &c.theoretical.aperiodic);
    out.push(',');
    csv_stack(out, &c.real.aperiodic);
    let _ = write!(
        out,
        ",{},{},{:.6},{},{},{},{}",
        fmt_opt(c.slowdown_pct()),
        c.real.periodic.misses(),
        c.real.periodic.miss_ratio(),
        c.theoretical.switches,
        c.real.switches,
        c.real.sched_passes,
        c.real.context_words
    );
    if faulted {
        csv_survival(out, &c.theoretical.survival);
        csv_survival(out, &c.real.survival);
    }
    out.push('\n');
}

/// One CSV row per group aggregate, with the percentile curve of the
/// prototype stack's aperiodic responses.
pub fn summary_csv(report: &SweepReport) -> String {
    summary_csv_from(&group_summaries(report), report.faulted)
}

/// Renders `summary.csv` from already-folded group aggregates.
fn summary_csv_from(groups: &[GroupSummary], faulted: bool) -> String {
    let mut out = String::from(
        "knob,n_procs,utilization,cells,unschedulable,\
         theo_jobs,theo_mean_s,theo_p50_s,theo_p95_s,theo_p99_s,theo_p999_s,theo_max_s,\
         real_jobs,real_mean_s,real_p50_s,real_p95_s,real_p99_s,real_p999_s,real_max_s,\
         slowdown_pct,periodic_misses,miss_ratio,\
         real_p25_s,real_p50c_s,real_p75_s,real_p90_s,real_p95c_s,real_p99_s",
    );
    if faulted {
        out.push_str(&survival_header("real"));
    }
    out.push('\n');
    for g in groups {
        let _ = write!(
            out,
            "{},{},{:.4},{},{},",
            g.knob_label, g.n_procs, g.utilization, g.cells, g.unschedulable
        );
        csv_stack(&mut out, &g.theoretical);
        out.push(',');
        csv_stack(&mut out, &g.real);
        let _ = write!(
            out,
            ",{},{},{:.6}",
            fmt_opt(g.slowdown_pct()),
            g.periodic.misses(),
            g.periodic.miss_ratio()
        );
        match g.real.percentiles(&CURVE_QS) {
            Some(curve) => {
                for v in curve {
                    let _ = write!(out, ",{v:.6}");
                }
            }
            None => out.push_str(",,,,,,"),
        }
        if faulted {
            csv_survival(&mut out, &g.survival);
        }
        out.push('\n');
    }
    out
}

fn json_stack(out: &mut String, acc: &ResponseAccumulator) {
    match acc.finalize() {
        Some(s) => {
            let _ = write!(
                out,
                "{{\"jobs\":{},\"mean_s\":{:.6},\"p50_s\":{:.6},\"p95_s\":{:.6},\"p99_s\":{:.6},\"p999_s\":{:.6},\"max_s\":{:.6}}}",
                s.count, s.mean_s, s.p50_s, s.p95_s, s.p99_s, s.p999_s, s.max_s
            );
        }
        None => out.push_str("null"),
    }
}

fn json_opt(out: &mut String, value: Option<f64>) {
    match value {
        Some(v) => {
            let _ = write!(out, "{v:.6}");
        }
        None => out.push_str("null"),
    }
}

/// The whole report as one JSON document with a stable key order: a
/// `cells` array in cell-index order and a `groups` array of aggregates
/// (with the prototype percentile curve). Byte-identical across worker
/// counts; contains no timing metadata.
pub fn report_json(report: &SweepReport) -> String {
    let mut out = String::from("{\"cells\":[");
    for (i, c) in report.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_cell_fragment(&mut out, c, report.faulted);
    }
    json_groups_tail(&mut out, &group_summaries(report), report.faulted);
    out
}

/// One cell object of the JSON `cells` array (no separating comma).
fn json_cell_fragment(out: &mut String, c: &CellResult, faulted: bool) {
    let _ = write!(
        out,
        "{{\"cell\":{},\"knob\":\"{}\",\"n_procs\":{},\"utilization\":{:.4},\"seed\":{},\"schedulable\":{},\"theoretical\":",
        c.cell.index, c.knob_label, c.cell.n_procs, c.cell.utilization, c.cell.seed, c.schedulable
    );
    json_stack(out, &c.theoretical.aperiodic);
    out.push_str(",\"real\":");
    json_stack(out, &c.real.aperiodic);
    out.push_str(",\"slowdown_pct\":");
    json_opt(out, c.slowdown_pct());
    let _ = write!(
        out,
        ",\"periodic_misses\":{},\"miss_ratio\":{:.6},\"theo_switches\":{},\"real_switches\":{},\"sched_passes\":{},\"context_words\":{}",
        c.real.periodic.misses(),
        c.real.periodic.miss_ratio(),
        c.theoretical.switches,
        c.real.switches,
        c.real.sched_passes,
        c.real.context_words
    );
    if faulted {
        out.push_str(",\"survival\":{\"theoretical\":");
        json_survival(out, &c.theoretical.survival);
        out.push_str(",\"real\":");
        json_survival(out, &c.real.survival);
        out.push('}');
    }
    out.push('}');
}

/// Closes the `cells` array and renders the `groups` array plus the
/// document's closing brace.
fn json_groups_tail(out: &mut String, groups: &[GroupSummary], faulted: bool) {
    out.push_str("],\"groups\":[");
    for (i, g) in groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"knob\":\"{}\",\"n_procs\":{},\"utilization\":{:.4},\"cells\":{},\"unschedulable\":{},\"theoretical\":",
            g.knob_label, g.n_procs, g.utilization, g.cells, g.unschedulable
        );
        json_stack(out, &g.theoretical);
        out.push_str(",\"real\":");
        json_stack(out, &g.real);
        out.push_str(",\"slowdown_pct\":");
        json_opt(out, g.slowdown_pct());
        let _ = write!(
            out,
            ",\"periodic_misses\":{},\"miss_ratio\":{:.6},\"curve\":",
            g.periodic.misses(),
            g.periodic.miss_ratio()
        );
        match g.real.percentiles(&CURVE_QS) {
            Some(curve) => {
                out.push('[');
                for (j, v) in curve.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v:.6}");
                }
                out.push(']');
            }
            None => out.push_str("null"),
        }
        if faulted {
            out.push_str(",\"survival\":");
            json_survival(out, &g.survival);
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// Finished exports of a [`StreamingReport`] — the same three documents
/// [`cells_csv`], [`summary_csv`], and [`report_json`] produce, byte for
/// byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingExports {
    /// Per-cell CSV (see [`cells_csv`]).
    pub cells_csv: String,
    /// Group-aggregate CSV (see [`summary_csv`]).
    pub summary_csv: String,
    /// The full JSON document (see [`report_json`]).
    pub report_json: String,
}

/// Streaming export finalization: folds cell results **as they arrive**
/// into the growing CSV/JSON documents and the running group aggregates,
/// instead of accumulating every [`CellResult`] and rendering at the end.
///
/// Results may be pushed in any order; a small reorder buffer (bounded by
/// how far ahead of the lowest unfinished cell the workers run — in
/// practice O(workers)) holds early arrivals until the next cell in index
/// order lands, then each folded cell is **dropped**. Memory is therefore
/// O(open accumulators + groups), not O(cells).
///
/// The exports are byte-identical to the batch renderers by construction:
/// both call the same row/fragment writers, and the fold consumes cells
/// in exactly the cell-index order the batch path iterates in.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    faulted: bool,
    next_index: usize,
    folded: usize,
    peak_pending: usize,
    pending: std::collections::BTreeMap<usize, CellResult>,
    groups: Vec<GroupSummary>,
    cells_csv: String,
    json_cells: String,
}

impl StreamingReport {
    /// An empty stream. `faulted` must match the spec's
    /// [`is_faulted`](crate::SweepSpec::is_faulted) (it gates the
    /// survivability columns, which are part of the header).
    pub fn new(faulted: bool) -> Self {
        StreamingReport {
            faulted,
            next_index: 0,
            folded: 0,
            peak_pending: 0,
            pending: std::collections::BTreeMap::new(),
            groups: Vec::new(),
            cells_csv: cells_csv_header(faulted),
            json_cells: String::from("{\"cells\":["),
        }
    }

    /// Accepts one cell result, in any order. Duplicate indices are
    /// last-write-wins while buffered; a duplicate of an already-folded
    /// index is silently dropped (it was already exported).
    pub fn push(&mut self, result: CellResult) {
        if result.cell.index < self.next_index {
            return;
        }
        self.pending.insert(result.cell.index, result);
        self.peak_pending = self.peak_pending.max(self.pending.len());
        while let Some(cell) = self.pending.remove(&self.next_index) {
            self.fold(&cell);
            self.next_index += 1;
        }
    }

    fn fold(&mut self, cell: &CellResult) {
        csv_cell_row(&mut self.cells_csv, cell, self.faulted);
        if self.folded > 0 {
            self.json_cells.push(',');
        }
        json_cell_fragment(&mut self.json_cells, cell, self.faulted);
        fold_into_groups(&mut self.groups, cell);
        self.folded += 1;
    }

    /// Cells folded into the exports so far.
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// Results buffered waiting for a lower index to arrive.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of the reorder buffer over the stream's lifetime —
    /// the observable bound on the streaming path's extra memory.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Renders the group aggregates and closes the documents. Buffered
    /// out-of-order results whose predecessors never arrived are
    /// discarded — the exports only ever contain a gap-free index prefix.
    pub fn finish(mut self) -> StreamingExports {
        let summary_csv = summary_csv_from(&self.groups, self.faulted);
        json_groups_tail(&mut self.json_cells, &self.groups, self.faulted);
        StreamingExports {
            cells_csv: self.cells_csv,
            summary_csv,
            report_json: self.json_cells,
        }
    }
}

/// Convenience: find one cell by grid coordinates (first match in index
/// order).
pub fn find_cell(report: &SweepReport, n_procs: usize, utilization: f64) -> Option<&CellResult> {
    report
        .cells
        .iter()
        .find(|c| c.cell.n_procs == n_procs && (c.cell.utilization - utilization).abs() < 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StackResult;
    use crate::spec::CellSpec;
    use mpdp_core::time::Cycles;
    use std::time::Duration;

    fn acc(samples: &[u64]) -> ResponseAccumulator {
        let mut a = ResponseAccumulator::new();
        for &s in samples {
            a.observe(Cycles::new(s));
        }
        a
    }

    fn cell(index: usize, seed: u64, theo: &[u64], real: &[u64]) -> CellResult {
        CellResult {
            cell: CellSpec {
                index,
                knob_index: 0,
                n_procs: 2,
                utilization: 0.4,
                seed,
            },
            knob_label: "paper".into(),
            schedulable: true,
            theoretical: StackResult {
                aperiodic: acc(theo),
                ..StackResult::default()
            },
            real: StackResult {
                aperiodic: acc(real),
                ..StackResult::default()
            },
        }
    }

    fn report(cells: Vec<CellResult>) -> SweepReport {
        SweepReport {
            cells,
            faulted: false,
            workers: 1,
            wall: Duration::ZERO,
            profiles: Vec::new(),
        }
    }

    #[test]
    fn groups_merge_seeds_in_index_order() {
        let r = report(vec![cell(0, 0, &[100], &[150]), cell(1, 1, &[200], &[250])]);
        let groups = group_summaries(&r);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.cells, 2);
        assert_eq!(g.theoretical.len(), 2);
        let stats = g.real.finalize().expect("samples");
        assert_eq!(stats.count, 2);
        assert!((stats.mean_s - 200.0 / 5e7).abs() < 1e-12);
    }

    #[test]
    fn exports_are_stable_and_header_shaped() {
        let r = report(vec![cell(0, 0, &[100, 200], &[150, 300])]);
        let csv = cells_csv(&r);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("cell,knob,n_procs,utilization,seed,schedulable,"));
        // Tail-latency columns ride along in every export flavor.
        assert!(csv.lines().next().expect("header").contains("real_p99_s"));
        assert!(csv.lines().next().expect("header").contains("real_p999_s"));
        assert!(report_json(&r).contains("\"p999_s\":"));
        assert!(csv
            .lines()
            .nth(1)
            .expect("row")
            .starts_with("0,paper,2,0.4000,0,true,2,"));
        let sum = summary_csv(&r);
        assert_eq!(sum.lines().count(), 2);
        // Byte-stable across repeated renderings.
        assert_eq!(csv, cells_csv(&r));
        assert_eq!(sum, summary_csv(&r));
        assert_eq!(report_json(&r), report_json(&r));
        assert!(report_json(&r).starts_with("{\"cells\":[{\"cell\":0,"));
        // Wall-clock must never leak into exports.
        let mut timed = r.clone();
        timed.wall = Duration::from_secs(123);
        timed.workers = 7;
        assert_eq!(report_json(&r), report_json(&timed));
        assert_eq!(cells_csv(&r), cells_csv(&timed));
        assert_eq!(summary_csv(&r), summary_csv(&timed));
    }

    #[test]
    fn streaming_exports_match_batch_bytes_even_out_of_order() {
        for faulted in [false, true] {
            let mut cells = vec![
                cell(0, 0, &[100], &[150]),
                cell(1, 1, &[200], &[250]),
                cell(2, 0, &[300], &[350]),
                cell(3, 1, &[400], &[450]),
            ];
            for c in &mut cells[2..] {
                c.cell.n_procs = 4; // a second group
            }
            let mut r = report(cells.clone());
            r.faulted = faulted;

            let mut stream = StreamingReport::new(faulted);
            for i in [2usize, 0, 3, 1] {
                stream.push(cells[i].clone());
            }
            assert_eq!(stream.folded(), 4);
            assert_eq!(stream.pending(), 0);
            // Worst moment: {1,2,3} buffered just before 1 unblocks the drain.
            assert_eq!(stream.peak_pending(), 3);
            let exports = stream.finish();
            assert_eq!(exports.cells_csv, cells_csv(&r));
            assert_eq!(exports.summary_csv, summary_csv(&r));
            assert_eq!(exports.report_json, report_json(&r));
        }
    }

    #[test]
    fn streaming_ignores_duplicates_of_folded_cells() {
        let cells = vec![cell(0, 0, &[100], &[150]), cell(1, 1, &[200], &[250])];
        let r = report(cells.clone());
        let mut stream = StreamingReport::new(false);
        stream.push(cells[0].clone());
        stream.push(cells[0].clone()); // already folded: dropped
        stream.push(cells[1].clone());
        let exports = stream.finish();
        assert_eq!(exports.cells_csv, cells_csv(&r));
        assert_eq!(exports.report_json, report_json(&r));
    }

    #[test]
    fn empty_stacks_export_blanks_and_null() {
        let mut c = cell(0, 0, &[], &[]);
        c.schedulable = false;
        let r = report(vec![c]);
        let row = cells_csv(&r);
        assert!(row
            .lines()
            .nth(1)
            .expect("row")
            .contains(",false,0,,,,,,,0,,,,,,,"));
        assert!(report_json(&r).contains("\"theoretical\":null"));
        assert!(report_json(&r).contains("\"slowdown_pct\":null"));
    }
}

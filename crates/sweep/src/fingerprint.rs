//! Canonical input fingerprints: spec identity for journals, per-cell
//! digests for the content-addressed cell cache.
//!
//! Both fingerprints walk the spec field by field and fold the *values*
//! into an FNV-1a digest — never a `Debug` rendering, whose bytes shift
//! with cosmetic formatting and which prints `-0.0` and `0.0`
//! differently even though every consumer of a rate treats them as the
//! same number. Floats are canonicalized (`v + 0.0`) before hashing so
//! the two zeros collapse to one key.
//!
//! The two fingerprints answer different questions:
//!
//! - [`spec_fingerprint`] — *is this journal from exactly this sweep?*
//!   It covers every field of the [`SweepSpec`], including cosmetic ones
//!   like knob labels (labels appear in export bytes, and a journal must
//!   reproduce a byte-identical report).
//! - [`cell_fingerprint`] — *would this cell compute the same result?*
//!   It covers only the inputs that reach the cell's simulation: the
//!   workload and arrival generators, the cell's own knob **minus its
//!   label** (pure presentation, reattached from the live spec on a
//!   cache hit), the grid coordinates, and the cell's RNG stream id
//!   (which already folds in `master_seed`, the cell index, and the seed
//!   coordinate — everything the fault compiler and arrival sampler
//!   draw from). Editing one grid-axis value therefore invalidates only
//!   the cells that read that value; renaming a knob invalidates none.

use mpdp_core::policy::{DegradationPolicy, OverrunAction};
use mpdp_core::time::Cycles;
use mpdp_faults::FaultPlan;

use crate::spec::{ArrivalSpec, CellSpec, Knobs, SweepSpec, WorkloadSpec};

/// Version tag of the cell-execution semantics. Folded into every cache
/// segment header, so a change to what a cell *computes* (simulator
/// behaviour, accumulator contents, record layout) orphans old cache
/// entries instead of replaying stale results. Bump it whenever cell
/// outputs can change for unchanged inputs.
pub const ENGINE_VERSION: &str = "mpdp-cell-engine/1";

/// The canonical bit pattern of a float key: `-0.0` and `+0.0` compare
/// equal everywhere downstream, so they must hash equal here too.
pub(crate) fn canonical_bits(v: f64) -> u64 {
    (v + 0.0).to_bits()
}

/// An incremental FNV-1a digest over a framed byte stream. Variable-size
/// fields are length-prefixed and enum variants tagged, so two different
/// field sequences cannot collide by concatenation.
pub(crate) struct Digest(u64);

impl Digest {
    pub(crate) fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(canonical_bits(v));
    }

    pub(crate) fn cycles(&mut self, c: Cycles) {
        self.u64(c.as_u64());
    }

    pub(crate) fn tag(&mut self, t: u8) {
        self.bytes(&[t]);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

fn hash_workload(d: &mut Digest, workload: &WorkloadSpec) {
    match workload {
        WorkloadSpec::Automotive => d.tag(0),
        WorkloadSpec::Random {
            tasks,
            aperiodic_exec,
        } => {
            d.tag(1);
            d.usize(*tasks);
            d.cycles(*aperiodic_exec);
        }
    }
}

fn hash_arrivals(d: &mut Digest, arrivals: &ArrivalSpec) {
    match arrivals {
        ArrivalSpec::Bursts { activations, gap } => {
            d.tag(0);
            d.usize(*activations);
            d.cycles(*gap);
        }
        ArrivalSpec::Poisson { mean_gap, window } => {
            d.tag(1);
            d.cycles(*mean_gap);
            d.cycles(*window);
        }
        ArrivalSpec::Explicit { arrivals, horizon } => {
            d.tag(2);
            d.usize(arrivals.len());
            for (at, task) in arrivals {
                d.cycles(*at);
                d.usize(*task);
            }
            d.cycles(*horizon);
        }
    }
}

fn hash_faults(d: &mut Digest, plan: &FaultPlan) {
    match &plan.wcet {
        None => d.tag(0),
        Some(w) => {
            d.tag(1);
            d.f64(w.probability);
            d.f64(w.factor);
            d.f64(w.tail_probability);
            d.f64(w.tail_factor);
        }
    }
    d.usize(plan.bursts.len());
    for b in &plan.bursts {
        d.cycles(b.at);
        d.usize(b.arrivals);
        d.cycles(b.gap);
        d.usize(b.task);
    }
    match &plan.fail_stop {
        None => d.tag(0),
        Some(f) => {
            d.tag(1);
            d.usize(f.proc);
            d.cycles(f.at);
        }
    }
    match &plan.interrupts {
        None => d.tag(0),
        Some(i) => {
            d.tag(1);
            d.f64(i.lost_probability);
            d.usize(i.spurious.len());
            for &at in &i.spurious {
                d.cycles(at);
            }
        }
    }
    d.usize(plan.bus_spikes.len());
    for s in &plan.bus_spikes {
        d.cycles(s.at);
        d.cycles(s.duration);
        d.f64(s.factor);
    }
}

fn hash_degradation(d: &mut Digest, policy: &DegradationPolicy) {
    match &policy.overrun {
        None => d.tag(0),
        Some(OverrunAction::RunToCompletion) => d.tag(1),
        Some(OverrunAction::Kill) => d.tag(2),
        Some(OverrunAction::Demote) => d.tag(3),
    }
    d.f64(policy.budget_margin);
    match policy.shed_limit {
        None => d.tag(0),
        Some(limit) => {
            d.tag(1);
            d.usize(limit);
        }
    }
}

/// Every knob field that reaches the simulation — the label is pure
/// presentation and is deliberately excluded.
fn hash_knob_semantics(d: &mut Digest, knob: &Knobs) {
    d.cycles(knob.tick);
    d.f64(knob.theoretical_overhead);
    d.f64(knob.wcet_margin);
    d.f64(knob.context_scale);
    d.str(knob.policy.name());
    hash_faults(d, &knob.faults);
    hash_degradation(d, &knob.degradation);
}

/// The identity fingerprint binding a journal to one spec: a canonical
/// field-by-field digest of the **whole** [`SweepSpec`], labels included.
/// Two specs that would produce byte-identical reports from identical
/// journals — and only those — share a fingerprint; in particular the
/// float canonicalization makes a `-0.0` grid literal fingerprint-equal
/// to `0.0`, where the old `Debug`-form hash split them.
pub fn spec_fingerprint(spec: &SweepSpec) -> u64 {
    let mut d = Digest::new();
    d.str("mpdp-spec/1");
    d.usize(spec.utilizations.len());
    for &u in &spec.utilizations {
        d.f64(u);
    }
    d.usize(spec.proc_counts.len());
    for &p in &spec.proc_counts {
        d.usize(p);
    }
    d.usize(spec.seeds.len());
    for &s in &spec.seeds {
        d.u64(s);
    }
    d.usize(spec.knobs.len());
    for knob in &spec.knobs {
        d.str(&knob.label);
        hash_knob_semantics(&mut d, knob);
    }
    hash_workload(&mut d, &spec.workload);
    hash_arrivals(&mut d, &spec.arrivals);
    d.u64(spec.master_seed);
    d.finish()
}

/// The content digest of one cell's inputs — the cache key. Hashes only
/// what determines the cell's outcome: workload and arrival generators,
/// the cell's knob semantics (label excluded), the grid coordinates, and
/// the cell's RNG stream id. NOT the whole spec: appending seeds,
/// reordering equal-value axis literals, or renaming a knob leaves
/// untouched cells' digests — and therefore their cache entries — valid.
pub fn cell_fingerprint(spec: &SweepSpec, cell: &CellSpec) -> u64 {
    let mut d = Digest::new();
    d.str("mpdp-cell/1");
    hash_workload(&mut d, &spec.workload);
    hash_arrivals(&mut d, &spec.arrivals);
    hash_knob_semantics(&mut d, &spec.knobs[cell.knob_index]);
    d.usize(cell.n_procs);
    d.f64(cell.utilization);
    // The stream id folds in master_seed, the cell index, and the seed
    // coordinate — everything the arrival sampler, workload generator,
    // and fault compiler draw randomness from.
    d.u64(spec.cell_stream(cell));
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Knobs;

    fn base() -> SweepSpec {
        SweepSpec::figure4().with_seed_count(2)
    }

    fn cell_digests(spec: &SweepSpec) -> Vec<u64> {
        spec.cells()
            .iter()
            .map(|c| cell_fingerprint(spec, c))
            .collect()
    }

    #[test]
    fn negative_zero_hashes_like_positive_zero() {
        let mut plus = base();
        plus.knobs[0].theoretical_overhead = 0.0;
        let mut minus = base();
        minus.knobs[0].theoretical_overhead = -0.0;
        assert_eq!(spec_fingerprint(&plus), spec_fingerprint(&minus));
        assert_eq!(cell_digests(&plus), cell_digests(&minus));
    }

    #[test]
    fn reordering_equal_value_axis_literals_keeps_cell_fingerprints() {
        // Two axis vectors holding the same values at the same positions —
        // one built from literals "reordered" at the source level (0.5
        // written as 2.0/4.0) — must agree cell for cell.
        let mut a = base();
        a.utilizations = vec![0.4, 0.5];
        let mut b = base();
        b.utilizations = vec![0.4, 2.0 / 4.0];
        assert_eq!(cell_digests(&a), cell_digests(&b));
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn knob_label_renames_do_not_touch_cell_fingerprints() {
        let a = base();
        let mut b = base();
        b.knobs[0].label = "renamed".to_string();
        // Cell digests survive the rename; the spec identity does not
        // (labels are export bytes).
        assert_eq!(cell_digests(&a), cell_digests(&b));
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn editing_one_seed_value_invalidates_only_that_seeds_cells() {
        let a = base();
        let mut b = base();
        let edited = *b.seeds.last().expect("has seeds");
        *b.seeds.last_mut().expect("has seeds") = edited + 1000;
        let da = cell_digests(&a);
        let db = cell_digests(&b);
        let changed: Vec<usize> = (0..da.len()).filter(|&i| da[i] != db[i]).collect();
        let expected: Vec<usize> = a
            .cells()
            .iter()
            .filter(|c| c.seed == edited)
            .map(|c| c.index)
            .collect();
        assert_eq!(changed, expected, "only the edited seed's cells change");
        assert!(!changed.is_empty());
    }

    #[test]
    fn semantic_knob_edits_change_every_cell_of_that_knob() {
        let a = base();
        let mut b = base();
        b.knobs[0].wcet_margin = 1.3;
        let da = cell_digests(&a);
        let db = cell_digests(&b);
        assert!((0..da.len()).all(|i| da[i] != db[i]));
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&b));
    }

    #[test]
    fn cell_digests_are_distinct_within_a_grid() {
        let spec = SweepSpec::figure4().with_seed_count(4);
        let mut digests = cell_digests(&spec);
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), spec.cell_count(), "digest collision");
    }

    #[test]
    fn duplicate_knob_contents_under_different_labels_share_cell_digests() {
        // Same semantics, different label → the cache can serve both from
        // one entry family (per-cell streams still differ by index).
        let mut spec = base();
        spec.knobs = vec![Knobs::named("a"), Knobs::named("b")];
        let cells = spec.cells();
        let half = cells.len() / 2;
        for i in 0..half {
            // Cells i and i+half differ only in knob label and index; the
            // index feeds the stream, so digests differ — but the knob
            // contribution itself is label-free, which the rename test
            // already pins. Here we only sanity-check enumeration shape.
            assert_eq!(cells[i].n_procs, cells[i + half].n_procs);
        }
    }
}

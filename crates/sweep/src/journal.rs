//! Crash-safe checkpoint journal for interrupted sweeps.
//!
//! The journal is an append-only text file: a header binding it to one
//! [`SweepSpec`], then one record per completed cell, fsynced as written.
//! On open, the file is recovered: the header's spec fingerprint must
//! match, records are parsed in order, and the file is truncated at the
//! first malformed record (a torn final write from a crash loses at most
//! that one cell). Each record is keyed by the cell's RNG stream id, so a
//! record can never be replayed against a spec that would have simulated
//! different inputs.
//!
//! # Format
//!
//! ```text
//! MPDPJ1 fp=<16-hex canonical spec fingerprint>
//! cell <index> <16-hex stream> <0|1 schedulable> <theoretical> <real> #<16-hex FNV-1a of the line body>
//! ```
//!
//! Each stack serializes as
//! `<hard>:<missed>:<samples…>;<hard>:<missed>:<samples…>;<switches>;<passes>;<words>;<survival…>`
//! (aperiodic accumulator, periodic accumulator, kernel counters, the 13
//! survival fields comma-joined with `-` for absent instants). Samples are
//! raw cycles, comma-joined, in observation order — the accumulator
//! round-trips bit for bit, which is what makes a resumed sweep's exports
//! byte-identical to an uninterrupted run's.

use std::collections::BTreeMap;
use std::path::Path;

use mpdp_core::time::Cycles;
use mpdp_sim::stats::{ResponseAccumulator, SurvivalStats};

use crate::engine::{CellResult, StackResult};
use crate::error::SweepError;
use crate::fingerprint::spec_fingerprint;
use crate::linejournal::{fnv1a, LineJournal, LineJournalError};
use crate::spec::SweepSpec;

/// Magic + version tag of the journal header line.
pub(crate) const MAGIC: &str = "MPDPJ1";

/// Parses a journal header line (no trailing newline) into its spec
/// fingerprint, `None` if the line is not a well-formed header.
pub(crate) fn parse_header(line: &str) -> Option<u64> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(" fp=")?;
    if rest.len() != 16 {
        return None;
    }
    u64::from_str_radix(rest, 16).ok()
}

/// An open checkpoint journal: the records recovered from disk plus an
/// append handle. Appends are serialized through an internal mutex and
/// fsynced one by one, so the file is consistent after a kill at any
/// instant.
///
/// The file mechanics (header binding, per-record checksums, torn-tail
/// truncation, fsync discipline) live in the generic [`LineJournal`];
/// this type adds the sweep-domain record format and its semantic
/// validation against the [`SweepSpec`].
#[derive(Debug)]
pub struct Journal {
    inner: LineJournal,
    recovered: BTreeMap<usize, CellResult>,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for `spec`.
    ///
    /// An existing file is recovered: the header fingerprint must match
    /// `spec` (a mismatch is an error — resuming someone else's sweep
    /// would silently mix incompatible results), every well-formed record
    /// whose stream id matches the spec's derivation is returned in
    /// [`recovered`](Self::recovered), and the file is truncated at the
    /// first malformed or mismatched record.
    ///
    /// # Errors
    ///
    /// [`SweepError::Journal`] on I/O failure or fingerprint mismatch.
    pub fn open(path: &Path, spec: &SweepSpec) -> Result<Self, SweepError> {
        let mut inner =
            LineJournal::open(path, MAGIC, spec_fingerprint(spec)).map_err(journal_err)?;
        // Validate recovered bodies domain-side until the first record
        // that does not parse against the spec, then truncate there:
        // checksum-clean garbage is dropped exactly like a torn write.
        // Cells are enumerated once up front: record validation is then
        // O(1) per record instead of O(grid) per record.
        let cells = spec.cells();
        let mut recovered = BTreeMap::new();
        let mut good = 0usize;
        for body in inner.recovered() {
            match parse_record_body(body, spec, &cells) {
                Some((index, result)) => {
                    recovered.insert(index, result);
                    good += 1;
                }
                None => break,
            }
        }
        inner.truncate_to(good).map_err(journal_err)?;
        Ok(Journal { inner, recovered })
    }

    /// The records recovered from disk at open, keyed by cell index.
    pub fn recovered(&self) -> &BTreeMap<usize, CellResult> {
        &self.recovered
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        self.inner.path()
    }

    /// Appends one completed cell and fsyncs. `stream` must be the cell's
    /// [`SweepSpec::cell_stream`] id — it is what lets a later open refuse
    /// records that no longer match the spec.
    ///
    /// # Errors
    ///
    /// [`SweepError::Journal`] on I/O failure.
    pub fn append(&self, stream: u64, result: &CellResult) -> Result<(), SweepError> {
        self.inner
            .append(&format_record_body(stream, result))
            .map_err(|e| SweepError::Journal {
                path: e.path,
                detail: format!("cell {}: {}", result.cell.index, e.detail),
            })
    }
}

/// Maps the generic journal error into the sweep error taxonomy.
fn journal_err(e: LineJournalError) -> SweepError {
    SweepError::Journal {
        path: e.path,
        detail: e.detail,
    }
}

fn format_accumulator(acc: &ResponseAccumulator) -> String {
    let samples: Vec<String> = acc.samples().iter().map(u64::to_string).collect();
    format!(
        "{}:{}:{}",
        acc.hard_count(),
        acc.misses(),
        samples.join(",")
    )
}

fn parse_accumulator(field: &str) -> Option<ResponseAccumulator> {
    let mut parts = field.splitn(3, ':');
    let hard: usize = parts.next()?.parse().ok()?;
    let missed: usize = parts.next()?.parse().ok()?;
    let raw = parts.next()?;
    let samples = if raw.is_empty() {
        Vec::new()
    } else {
        raw.split(',')
            .map(|s| s.parse().ok())
            .collect::<Option<Vec<u64>>>()?
    };
    Some(ResponseAccumulator::from_parts(samples, hard, missed))
}

fn opt_cycles_str(c: Option<Cycles>) -> String {
    c.map_or_else(|| "-".to_string(), |c| c.as_u64().to_string())
}

fn parse_opt_cycles(s: &str) -> Option<Option<Cycles>> {
    if s == "-" {
        Some(None)
    } else {
        s.parse().ok().map(|v| Some(Cycles::new(v)))
    }
}

fn format_survival(sv: &SurvivalStats) -> String {
    let failed = sv
        .failed_proc
        .map_or_else(|| "-".to_string(), |p| p.to_string());
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{}",
        sv.miss_events,
        opt_cycles_str(sv.first_miss),
        sv.overruns,
        sv.kills,
        sv.demotions,
        sv.shed,
        sv.lost_irqs,
        sv.spurious_irqs,
        failed,
        opt_cycles_str(sv.fail_at),
        opt_cycles_str(sv.recovery_at),
        sv.guaranteed_tasks,
        sv.total_tasks
    )
}

fn parse_survival(field: &str) -> Option<SurvivalStats> {
    let parts: Vec<&str> = field.split(',').collect();
    let [me, fm, ov, ki, de, sh, li, si, fp, fa, ra, gt, tt] = parts.as_slice() else {
        return None;
    };
    Some(SurvivalStats {
        miss_events: me.parse().ok()?,
        first_miss: parse_opt_cycles(fm)?,
        overruns: ov.parse().ok()?,
        kills: ki.parse().ok()?,
        demotions: de.parse().ok()?,
        shed: sh.parse().ok()?,
        lost_irqs: li.parse().ok()?,
        spurious_irqs: si.parse().ok()?,
        failed_proc: if *fp == "-" {
            None
        } else {
            Some(fp.parse().ok()?)
        },
        fail_at: parse_opt_cycles(fa)?,
        recovery_at: parse_opt_cycles(ra)?,
        guaranteed_tasks: gt.parse().ok()?,
        total_tasks: tt.parse().ok()?,
    })
}

pub(crate) fn format_stack(s: &StackResult) -> String {
    format!(
        "{};{};{};{};{};{}",
        format_accumulator(&s.aperiodic),
        format_accumulator(&s.periodic),
        s.switches,
        s.sched_passes,
        s.context_words,
        format_survival(&s.survival)
    )
}

pub(crate) fn parse_stack(field: &str) -> Option<StackResult> {
    let parts: Vec<&str> = field.split(';').collect();
    let [ap, pe, sw, sp, cw, sv] = parts.as_slice() else {
        return None;
    };
    Some(StackResult {
        aperiodic: parse_accumulator(ap)?,
        periodic: parse_accumulator(pe)?,
        switches: sw.parse().ok()?,
        sched_passes: sp.parse().ok()?,
        context_words: cw.parse().ok()?,
        survival: parse_survival(sv)?,
    })
}

/// The record body (no checksum suffix, no newline) for one completed
/// cell; [`LineJournal::append`] adds the checksum.
fn format_record_body(stream: u64, result: &CellResult) -> String {
    format!(
        "cell {} {stream:016x} {} {} {}",
        result.cell.index,
        u8::from(result.schedulable),
        format_stack(&result.theoretical),
        format_stack(&result.real)
    )
}

/// Parses one full record line (with its ` #<16-hex>` checksum suffix, no
/// trailing newline) against a pre-enumerated cell list — the entry point
/// for readers that scan journal files without a [`LineJournal`] (the
/// merge). Returns `None` for any malformed, checksum-failing, or
/// spec-mismatched record — the caller truncates (or stops reading) there.
pub(crate) fn parse_record_with(
    line: &str,
    spec: &SweepSpec,
    cells: &[crate::spec::CellSpec],
) -> Option<(usize, CellResult)> {
    let (body, crc) = line.rsplit_once(" #")?;
    let crc: u64 = u64::from_str_radix(crc, 16).ok()?;
    if crc != fnv1a(body.as_bytes()) {
        return None;
    }
    parse_record_body(body, spec, cells)
}

/// Parses one checksum-verified record body against a pre-enumerated cell
/// list — the domain half of record validation.
fn parse_record_body(
    body: &str,
    spec: &SweepSpec,
    cells: &[crate::spec::CellSpec],
) -> Option<(usize, CellResult)> {
    let mut tokens = body.split(' ');
    if tokens.next()? != "cell" {
        return None;
    }
    let index: usize = tokens.next()?.parse().ok()?;
    let stream = u64::from_str_radix(tokens.next()?, 16).ok()?;
    let schedulable = match tokens.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let theoretical = parse_stack(tokens.next()?)?;
    let real = parse_stack(tokens.next()?)?;
    if tokens.next().is_some() {
        return None;
    }
    // Re-derive the cell from the spec and refuse records whose stream id
    // no longer matches — the spec must be byte-for-byte the one that
    // wrote the journal (the header fingerprint already guarantees this;
    // the per-record check catches hand-edited or spliced files).
    let cell = *cells.get(index)?;
    if spec.cell_stream(&cell) != stream {
        return None;
    }
    Some((
        index,
        CellResult {
            cell,
            knob_label: spec.knobs[cell.knob_index].label.clone(),
            schedulable,
            theoretical,
            real,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_cell;
    use crate::spec::{ArrivalSpec, Knobs, WorkloadSpec};
    use std::fs::OpenOptions;
    use std::io::Write;
    use std::path::PathBuf;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            utilizations: vec![0.4],
            proc_counts: vec![2],
            seeds: vec![0, 1],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 1,
                gap: Cycles::from_secs(12),
            },
            master_seed: 42,
        }
    }

    fn tempfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpdp-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    #[test]
    fn record_round_trips_bit_for_bit() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        let stream = spec.cell_stream(&cells[0]);
        let body = format_record_body(stream, &result);
        let line = format!("{body} #{:016x}", fnv1a(body.as_bytes()));
        let (index, parsed) = parse_record_with(&line, &spec, &cells).expect("parses");
        assert_eq!(index, 0);
        assert_eq!(parsed, result);
    }

    #[test]
    fn torn_header_resets_instead_of_rejecting() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let path = tempfile("torn-header");
        // A kill mid-header-write leaves a newline-less header prefix.
        let header = format!("{MAGIC} fp={:016x}", spec_fingerprint(&spec));
        std::fs::write(&path, &header[..4]).expect("tear header");
        let journal = Journal::open(&path, &spec).expect("recovers from a torn header");
        assert!(journal.recovered().is_empty());
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        journal
            .append(spec.cell_stream(&cells[0]), &result)
            .expect("appends after reset");
        drop(journal);
        let journal = Journal::open(&path, &spec).expect("reopens");
        assert_eq!(journal.recovered().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_recovers_appends_and_truncates_torn_tail() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let path = tempfile("recover");
        let results: Vec<CellResult> = cells
            .iter()
            .map(|c| run_cell(&spec, c).expect("cell runs"))
            .collect();

        let journal = Journal::open(&path, &spec).expect("creates");
        assert!(journal.recovered().is_empty());
        journal
            .append(spec.cell_stream(&cells[0]), &results[0])
            .expect("appends");
        drop(journal);

        // Simulate a crash mid-append: a torn, newline-less partial record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"cell 1 deadbeef").expect("tear");
        }
        let len_torn = std::fs::metadata(&path).expect("stat").len();
        let journal = Journal::open(&path, &spec).expect("recovers");
        assert_eq!(journal.recovered().len(), 1);
        assert_eq!(journal.recovered()[&0], results[0]);
        assert!(std::fs::metadata(&path).expect("stat").len() < len_torn);

        // The recovered handle appends cleanly after the truncation.
        journal
            .append(spec.cell_stream(&cells[1]), &results[1])
            .expect("appends after recovery");
        drop(journal);
        let journal = Journal::open(&path, &spec).expect("reopens");
        assert_eq!(journal.recovered().len(), 2);
        assert_eq!(journal.recovered()[&1], results[1]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_refuses_a_different_spec() {
        let spec = tiny_spec();
        let path = tempfile("fingerprint");
        drop(Journal::open(&path, &spec).expect("creates"));
        let mut other = tiny_spec();
        other.master_seed = 7;
        match Journal::open(&path, &other) {
            Err(SweepError::Journal { detail, .. }) => {
                assert!(detail.contains("fingerprint mismatch"), "{detail}");
            }
            other => panic!("expected fingerprint rejection, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_record_is_dropped_not_fatal() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let path = tempfile("corrupt");
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        let journal = Journal::open(&path, &spec).expect("creates");
        journal
            .append(spec.cell_stream(&cells[0]), &result)
            .expect("appends");
        drop(journal);

        // Flip one byte inside the record body: the checksum must catch it.
        let mut contents = std::fs::read_to_string(&path).expect("read");
        let flip = contents.len() - 30;
        // A digit is always safe to flip to a different digit.
        let original = contents.as_bytes()[flip];
        let replacement = if original == b'7' { b'8' } else { b'7' };
        contents.replace_range(flip..flip + 1, std::str::from_utf8(&[replacement]).unwrap());
        std::fs::write(&path, &contents).expect("write");

        let journal = Journal::open(&path, &spec).expect("recovers");
        assert!(journal.recovered().is_empty(), "corrupt record must drop");
        let _ = std::fs::remove_file(&path);
    }
}

//! # mpdp-sweep — deterministic parallel scenario sweeps
//!
//! A batch-simulation engine for Monte Carlo and ablation studies over the
//! MPDP simulator stacks. A declarative [`SweepSpec`] names a grid —
//! utilizations × processor counts × RNG seeds × configuration
//! [`Knobs`] — and [`run_sweep`] fans its cells over a scoped-thread
//! worker pool, runs **both** the theoretical simulator and the prototype
//! stack per cell, and merges the per-cell statistics into an aggregate
//! report with percentile curves and byte-stable CSV/JSON exports.
//!
//! ## Determinism contract
//!
//! Running the same spec with one worker or N workers produces
//! byte-identical exports. Each cell's RNG stream is derived from
//! `(master_seed, cell index, seed coordinate)`; no mutable state is
//! shared between cells; aggregation folds results in cell-index order and
//! keeps statistics in integer cycles until formatting (see
//! `mpdp_sim::stats::ResponseAccumulator`). Wall-clock time is reported to
//! the caller but never exported.
//!
//! ```
//! use mpdp_sweep::{run_sweep, SweepSpec};
//!
//! # fn main() -> Result<(), mpdp_sweep::SweepError> {
//! let mut spec = SweepSpec::figure4();
//! spec.proc_counts = vec![2];
//! spec.utilizations = vec![0.4];
//! let report = run_sweep(&spec, 2)?;
//! assert_eq!(report.cells.len(), 1);
//! assert!(report.cells[0].slowdown_pct().expect("both stacks ran") > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Fault injection
//!
//! A knob may carry a declarative [`mpdp_faults::FaultPlan`] (compiled per
//! cell from the cell's RNG stream) and a
//! [`mpdp_core::policy::DegradationPolicy`]; the report then grows
//! survivability columns. Both default to inert, in which case every
//! export byte is identical to a fault-free build.
//!
//! ## Self-healing execution
//!
//! [`run_sweep_healing`] runs the same grid with per-cell panic isolation,
//! an optional watchdog deadline, bounded seed-preserving retries, and an
//! fsynced checkpoint [`Journal`] — an interrupted sweep resumes where it
//! stopped and still exports byte-identical files, because every cell is a
//! pure function of `(spec, cell index)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod journal;
pub mod linejournal;
pub mod merge;
pub mod report;
pub mod resilient;
pub mod shard;
pub mod spec;

pub use cache::{CacheStats, CellCache, DEFAULT_CACHE_CAP_BYTES};
pub use engine::{
    cell_table, run_cell, run_cell_cached, run_cell_probed, run_sweep, run_sweep_streaming,
    run_sweep_traced, run_sweep_with_cache, CellObservation, CellProfile, CellResult, StackResult,
    StreamedSweep, SweepReport, TableCache,
};
pub use error::SweepError;
pub use fingerprint::{cell_fingerprint, spec_fingerprint, ENGINE_VERSION};
pub use journal::Journal;
pub use linejournal::{LineJournal, LineJournalError};
pub use merge::{merge_journal_files, read_shard_journal, MergeError};
pub use report::{
    cells_csv, find_cell, group_summaries, report_json, summary_csv, GroupSummary,
    StreamingExports, StreamingReport,
};
pub use resilient::{
    run_shard_healing, run_shard_healing_observed, run_sweep_healing, run_sweep_healing_observed,
    run_sweep_healing_with, run_sweep_healing_with_observed, CellOutcome, HealConfig, HealedSweep,
    ShardRun,
};
pub use shard::{plan_shards, plan_spec_shards, ShardPlan};
pub use spec::{ArrivalSpec, CellSpec, Knobs, PolicyKind, SweepSpec, WorkloadSpec};

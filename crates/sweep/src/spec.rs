//! Declarative sweep specifications: the full cross product of utilization
//! grid × processor counts × RNG seeds × configuration knobs, enumerated in
//! a fixed row-major order so every cell has a stable index.
//!
//! The cell index is load-bearing: each cell's RNG stream is derived from
//! `(master_seed, cell index)` (plus the cell's own seed coordinate), so a
//! cell's inputs — and therefore its results — depend only on the spec,
//! never on which worker thread happens to execute it.

use mpdp_core::policy::DegradationPolicy;
use mpdp_core::time::{Cycles, DEFAULT_TICK};
use mpdp_faults::FaultPlan;

use crate::error::SweepError;

/// Scheduling policy to analyze the task set under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Dual priority with offline promotion analysis (the paper's system).
    Mpdp,
    /// Partitioned fixed priority, aperiodics served in background idle.
    Background,
    /// Aperiodics at top priority, unconditionally.
    AperiodicFirst,
}

impl PolicyKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Mpdp => "mpdp",
            PolicyKind::Background => "background",
            PolicyKind::AperiodicFirst => "aperiodic-first",
        }
    }
}

/// One knob setting: everything about a cell that is not a grid coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct Knobs {
    /// Label used in reports and exports (must be unique within a spec).
    pub label: String,
    /// Scheduler tick (paper: 0.1 s).
    pub tick: Cycles,
    /// Theoretical-simulator overhead fraction (paper: 2%).
    pub theoretical_overhead: f64,
    /// Offline-analysis WCET margin on the prototype.
    pub wcet_margin: f64,
    /// Context-size scale for the prototype's switch-cost model (1.0 =
    /// measured size).
    pub context_scale: f64,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Declarative fault plan, compiled per cell from the cell's RNG
    /// stream. The default (empty) plan injects nothing and leaves every
    /// export byte untouched.
    pub faults: FaultPlan,
    /// Detection-and-degradation configuration the scheduler runs under.
    /// The default is inert: no budget enforcement, no shedding.
    pub degradation: DegradationPolicy,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            label: "paper".to_string(),
            tick: DEFAULT_TICK,
            theoretical_overhead: 0.02,
            wcet_margin: 1.15,
            context_scale: 1.0,
            policy: PolicyKind::Mpdp,
            faults: FaultPlan::default(),
            degradation: DegradationPolicy::default(),
        }
    }
}

impl Knobs {
    /// The paper's configuration under the given label.
    pub fn named(label: impl Into<String>) -> Self {
        Knobs {
            label: label.into(),
            ..Self::default()
        }
    }

    /// Sets the scheduler tick.
    pub fn with_tick(mut self, tick: Cycles) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the context-size scale.
    pub fn with_context_scale(mut self, scale: f64) -> Self {
        self.context_scale = scale;
        self
    }

    /// Sets the WCET margin.
    pub fn with_wcet_margin(mut self, margin: f64) -> Self {
        self.wcet_margin = margin;
        self
    }

    /// Sets the policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the degradation policy.
    pub fn with_degradation(mut self, degradation: DegradationPolicy) -> Self {
        self.degradation = degradation;
        self
    }
}

/// Which task set a cell simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's 18-task MiBench automotive set plus `susan`-large,
    /// periods synthesized for the cell's utilization. Deterministic given
    /// the grid coordinates; seeds only vary the arrival stream.
    Automotive,
    /// UUniFast-synthesized periodic sets (Monte Carlo mode): `tasks` per
    /// processor, plus one aperiodic task of `aperiodic_exec` execution
    /// time. The set itself is drawn from the cell's RNG stream.
    Random {
        /// Periodic tasks per processor.
        tasks: usize,
        /// Aperiodic execution time.
        aperiodic_exec: Cycles,
    },
}

/// How aperiodic arrivals are generated for a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// The paper's one-at-a-time setup: `activations` triggers of aperiodic
    /// task 0, spaced `gap` apart starting at 1 s, each with a sub-tick
    /// phase jitter drawn from the cell's RNG stream.
    Bursts {
        /// Number of activations.
        activations: usize,
        /// Spacing (must exceed the worst response).
        gap: Cycles,
    },
    /// A Poisson stream of mean inter-arrival `mean_gap` over `[0, window)`.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Cycles,
        /// Arrival window; the simulation horizon extends past it to let
        /// late arrivals complete.
        window: Cycles,
    },
    /// A fixed, caller-provided schedule `(instant, aperiodic index)` used
    /// verbatim in every cell (seeds then only matter for `Random`
    /// workloads). Must be sorted by instant.
    Explicit {
        /// The arrival schedule.
        arrivals: Vec<(Cycles, usize)>,
        /// Simulation horizon.
        horizon: Cycles,
    },
}

/// A declarative sweep: the grid, the knobs, and the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Target system utilizations (fraction of total capacity).
    pub utilizations: Vec<f64>,
    /// Processor counts.
    pub proc_counts: Vec<usize>,
    /// Seed coordinates — one cell per seed per grid point. Each is mixed
    /// with `master_seed` and the cell index into the cell's RNG stream.
    pub seeds: Vec<u64>,
    /// Knob settings (each multiplies the grid).
    pub knobs: Vec<Knobs>,
    /// Task-set source.
    pub workload: WorkloadSpec,
    /// Arrival-stream source.
    pub arrivals: ArrivalSpec,
    /// Root of every cell's RNG derivation.
    pub master_seed: u64,
}

impl SweepSpec {
    /// The paper's Figure 4 grid: 2–4 processors × 40/50/60% utilization,
    /// automotive workload, paper knobs, one seed.
    pub fn figure4() -> Self {
        SweepSpec {
            utilizations: vec![0.4, 0.5, 0.6],
            proc_counts: vec![2, 3, 4],
            seeds: vec![0],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 4,
                gap: Cycles::from_secs(12),
            },
            master_seed: 0,
        }
    }

    /// Sets the seed coordinates to `0..n`.
    pub fn with_seed_count(mut self, n: usize) -> Self {
        self.seeds = (0..n as u64).collect();
        self
    }

    /// Sets the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Number of cells in the cross product.
    pub fn cell_count(&self) -> usize {
        self.knobs.len() * self.proc_counts.len() * self.utilizations.len() * self.seeds.len()
    }

    /// Enumerates every cell in the canonical order: knobs outermost, then
    /// processor counts, utilizations, and seeds innermost. The returned
    /// order (and each cell's `index`) is part of the determinism contract —
    /// exports list cells in exactly this order regardless of worker count.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for (knob_index, _) in self.knobs.iter().enumerate() {
            for &n_procs in &self.proc_counts {
                for &utilization in &self.utilizations {
                    for &seed in &self.seeds {
                        out.push(CellSpec {
                            index: out.len(),
                            knob_index,
                            n_procs,
                            utilization,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }

    /// The RNG stream seed for one cell: a SplitMix64-style mix of the
    /// master seed, the cell index, and the cell's seed coordinate.
    pub fn cell_stream(&self, cell: &CellSpec) -> u64 {
        mix(mix(self.master_seed, cell.index as u64), cell.seed)
    }

    /// Whether any knob injects faults or runs a non-inert degradation
    /// policy. Reports gate their survivability columns on this so that
    /// fault-free sweeps export byte-identical files to older builds.
    pub fn is_faulted(&self) -> bool {
        self.knobs
            .iter()
            .any(|k| !k.faults.is_empty() || !k.degradation.is_inert())
    }

    /// Checks the spec before any cell runs.
    ///
    /// # Errors
    ///
    /// - [`SweepError::EmptyAxis`] when a grid axis has no entries;
    /// - [`SweepError::InvalidUtilization`] for NaN, infinite, or
    ///   non-positive utilizations;
    /// - [`SweepError::ZeroProcs`] for a zero processor count;
    /// - [`SweepError::InvalidKnob`] for non-finite or non-positive knob
    ///   numerics (a zero overhead is allowed; a zero tick is not);
    /// - [`SweepError::DuplicateKnobLabel`] when two knobs share a label;
    /// - [`SweepError::InvalidFaultPlan`] when a knob's fault plan fails
    ///   validation against any of the spec's processor counts.
    pub fn validate(&self) -> Result<(), SweepError> {
        for (axis, empty) in [
            ("utilizations", self.utilizations.is_empty()),
            ("proc_counts", self.proc_counts.is_empty()),
            ("seeds", self.seeds.is_empty()),
            ("knobs", self.knobs.is_empty()),
        ] {
            if empty {
                return Err(SweepError::EmptyAxis(axis));
            }
        }
        for &u in &self.utilizations {
            if !u.is_finite() || u <= 0.0 {
                return Err(SweepError::InvalidUtilization(u));
            }
        }
        if self.proc_counts.contains(&0) {
            return Err(SweepError::ZeroProcs);
        }
        for (i, knob) in self.knobs.iter().enumerate() {
            let bad = |field| SweepError::InvalidKnob {
                label: knob.label.clone(),
                field,
            };
            if knob.tick == Cycles::ZERO {
                return Err(bad("tick"));
            }
            if !knob.theoretical_overhead.is_finite() || knob.theoretical_overhead < 0.0 {
                return Err(bad("theoretical_overhead"));
            }
            if !knob.wcet_margin.is_finite() || knob.wcet_margin <= 0.0 {
                return Err(bad("wcet_margin"));
            }
            // Zero is meaningful: the switch-cost ablation's "free
            // switches" point. Only negative or non-finite scales are out.
            if !knob.context_scale.is_finite() || knob.context_scale < 0.0 {
                return Err(bad("context_scale"));
            }
            if !knob.degradation.budget_margin.is_finite() || knob.degradation.budget_margin <= 0.0
            {
                return Err(bad("degradation.budget_margin"));
            }
            if self.knobs[..i].iter().any(|k| k.label == knob.label) {
                return Err(SweepError::DuplicateKnobLabel(knob.label.clone()));
            }
            // Validate against the widest grid column: `FaultPlan::compile`
            // deliberately drops a fail-stop on cells with fewer processors
            // so one plan can sweep processor counts.
            let max_procs = self.proc_counts.iter().copied().max().unwrap_or(1);
            knob.faults
                .validate(max_procs)
                .map_err(|source| SweepError::InvalidFaultPlan {
                    label: knob.label.clone(),
                    source,
                })?;
        }
        Ok(())
    }
}

/// One point of the cross product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Position in the canonical enumeration order.
    pub index: usize,
    /// Index into [`SweepSpec::knobs`].
    pub knob_index: usize,
    /// Processor count.
    pub n_procs: usize,
    /// Target system utilization.
    pub utilization: f64,
    /// Seed coordinate.
    pub seed: u64,
}

/// SplitMix64 finalizer over `seed ⊕ γ·index` — the same mixing family the
/// vendored `StdRng::seed_from_u64` uses, so nearby cell indices yield
/// statistically independent streams.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_row_major_and_indexed() {
        let spec = SweepSpec::figure4().with_seed_count(2);
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), 18);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Seeds vary fastest, then utilizations, then processor counts.
        assert_eq!(
            (cells[0].n_procs, cells[0].utilization, cells[0].seed),
            (2, 0.4, 0)
        );
        assert_eq!(
            (cells[1].n_procs, cells[1].utilization, cells[1].seed),
            (2, 0.4, 1)
        );
        assert_eq!(
            (cells[2].n_procs, cells[2].utilization, cells[2].seed),
            (2, 0.5, 0)
        );
        assert_eq!(cells[17].n_procs, 4);
    }

    #[test]
    fn validate_accepts_the_paper_grid() {
        assert_eq!(SweepSpec::figure4().validate(), Ok(()));
        assert!(!SweepSpec::figure4().is_faulted());
    }

    #[test]
    fn validate_rejects_each_empty_axis() {
        for axis in ["utilizations", "proc_counts", "seeds", "knobs"] {
            let mut spec = SweepSpec::figure4();
            match axis {
                "utilizations" => spec.utilizations.clear(),
                "proc_counts" => spec.proc_counts.clear(),
                "seeds" => spec.seeds.clear(),
                _ => spec.knobs.clear(),
            }
            assert_eq!(spec.validate(), Err(SweepError::EmptyAxis(axis)));
        }
    }

    #[test]
    fn validate_rejects_bad_utilizations() {
        for u in [0.0, -0.4, f64::NAN, f64::INFINITY] {
            let mut spec = SweepSpec::figure4();
            spec.utilizations = vec![u];
            match spec.validate() {
                Err(SweepError::InvalidUtilization(got)) => {
                    assert!(got == u || (got.is_nan() && u.is_nan()));
                }
                other => panic!("utilization {u} accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_zero_processors() {
        let mut spec = SweepSpec::figure4();
        spec.proc_counts = vec![2, 0];
        assert_eq!(spec.validate(), Err(SweepError::ZeroProcs));
    }

    #[test]
    fn validate_rejects_nan_and_nonpositive_knobs() {
        type Poison = fn(&mut Knobs);
        let cases: [(&str, Poison); 5] = [
            ("tick", |k| k.tick = Cycles::ZERO),
            ("theoretical_overhead", |k| {
                k.theoretical_overhead = f64::NAN
            }),
            ("wcet_margin", |k| k.wcet_margin = 0.0),
            ("context_scale", |k| k.context_scale = -1.0),
            ("degradation.budget_margin", |k| {
                k.degradation.budget_margin = f64::NAN
            }),
        ];
        for (field, poison) in cases {
            let mut spec = SweepSpec::figure4();
            poison(&mut spec.knobs[0]);
            assert_eq!(
                spec.validate(),
                Err(SweepError::InvalidKnob {
                    label: "paper".into(),
                    field,
                }),
                "field {field}"
            );
        }
    }

    #[test]
    fn validate_rejects_duplicate_knob_labels() {
        let mut spec = SweepSpec::figure4();
        spec.knobs = vec![Knobs::named("x"), Knobs::named("x")];
        assert_eq!(
            spec.validate(),
            Err(SweepError::DuplicateKnobLabel("x".into()))
        );
    }

    #[test]
    fn validate_rejects_fault_plans_out_of_processor_range() {
        use mpdp_faults::FailStop;
        let mut spec = SweepSpec::figure4();
        // Figure 4 sweeps 2–4 processors. A fail-stop of processor 3 fits
        // the widest column (compile drops it on the narrower ones); a
        // fail-stop of processor 5 fits nowhere.
        spec.knobs[0].faults =
            FaultPlan::default().with_fail_stop(FailStop::new(3, Cycles::from_secs(2)));
        assert_eq!(spec.validate(), Ok(()));
        assert!(spec.is_faulted());
        spec.knobs[0].faults =
            FaultPlan::default().with_fail_stop(FailStop::new(5, Cycles::from_secs(2)));
        assert!(matches!(
            spec.validate(),
            Err(SweepError::InvalidFaultPlan { .. })
        ));
    }

    #[test]
    fn cell_streams_are_distinct_and_stable() {
        let spec = SweepSpec::figure4().with_seed_count(4);
        let cells = spec.cells();
        let streams: Vec<u64> = cells.iter().map(|c| spec.cell_stream(c)).collect();
        let mut unique = streams.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), streams.len(), "stream collision");
        // Stable across identical spec constructions.
        let again = SweepSpec::figure4().with_seed_count(4);
        assert_eq!(
            streams,
            again
                .cells()
                .iter()
                .map(|c| again.cell_stream(c))
                .collect::<Vec<_>>()
        );
        // And sensitive to the master seed.
        let other = spec.clone().with_master_seed(1);
        assert_ne!(streams[0], other.cell_stream(&other.cells()[0]));
    }
}

//! Declarative sweep specifications: the full cross product of utilization
//! grid × processor counts × RNG seeds × configuration knobs, enumerated in
//! a fixed row-major order so every cell has a stable index.
//!
//! The cell index is load-bearing: each cell's RNG stream is derived from
//! `(master_seed, cell index)` (plus the cell's own seed coordinate), so a
//! cell's inputs — and therefore its results — depend only on the spec,
//! never on which worker thread happens to execute it.

use mpdp_core::time::{Cycles, DEFAULT_TICK};

/// Scheduling policy to analyze the task set under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Dual priority with offline promotion analysis (the paper's system).
    Mpdp,
    /// Partitioned fixed priority, aperiodics served in background idle.
    Background,
    /// Aperiodics at top priority, unconditionally.
    AperiodicFirst,
}

impl PolicyKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Mpdp => "mpdp",
            PolicyKind::Background => "background",
            PolicyKind::AperiodicFirst => "aperiodic-first",
        }
    }
}

/// One knob setting: everything about a cell that is not a grid coordinate.
#[derive(Debug, Clone, PartialEq)]
pub struct Knobs {
    /// Label used in reports and exports (must be unique within a spec).
    pub label: String,
    /// Scheduler tick (paper: 0.1 s).
    pub tick: Cycles,
    /// Theoretical-simulator overhead fraction (paper: 2%).
    pub theoretical_overhead: f64,
    /// Offline-analysis WCET margin on the prototype.
    pub wcet_margin: f64,
    /// Context-size scale for the prototype's switch-cost model (1.0 =
    /// measured size).
    pub context_scale: f64,
    /// Scheduling policy.
    pub policy: PolicyKind,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            label: "paper".to_string(),
            tick: DEFAULT_TICK,
            theoretical_overhead: 0.02,
            wcet_margin: 1.15,
            context_scale: 1.0,
            policy: PolicyKind::Mpdp,
        }
    }
}

impl Knobs {
    /// The paper's configuration under the given label.
    pub fn named(label: impl Into<String>) -> Self {
        Knobs {
            label: label.into(),
            ..Self::default()
        }
    }

    /// Sets the scheduler tick.
    pub fn with_tick(mut self, tick: Cycles) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the context-size scale.
    pub fn with_context_scale(mut self, scale: f64) -> Self {
        self.context_scale = scale;
        self
    }

    /// Sets the WCET margin.
    pub fn with_wcet_margin(mut self, margin: f64) -> Self {
        self.wcet_margin = margin;
        self
    }

    /// Sets the policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

/// Which task set a cell simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's 18-task MiBench automotive set plus `susan`-large,
    /// periods synthesized for the cell's utilization. Deterministic given
    /// the grid coordinates; seeds only vary the arrival stream.
    Automotive,
    /// UUniFast-synthesized periodic sets (Monte Carlo mode): `tasks` per
    /// processor, plus one aperiodic task of `aperiodic_exec` execution
    /// time. The set itself is drawn from the cell's RNG stream.
    Random {
        /// Periodic tasks per processor.
        tasks: usize,
        /// Aperiodic execution time.
        aperiodic_exec: Cycles,
    },
}

/// How aperiodic arrivals are generated for a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// The paper's one-at-a-time setup: `activations` triggers of aperiodic
    /// task 0, spaced `gap` apart starting at 1 s, each with a sub-tick
    /// phase jitter drawn from the cell's RNG stream.
    Bursts {
        /// Number of activations.
        activations: usize,
        /// Spacing (must exceed the worst response).
        gap: Cycles,
    },
    /// A Poisson stream of mean inter-arrival `mean_gap` over `[0, window)`.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: Cycles,
        /// Arrival window; the simulation horizon extends past it to let
        /// late arrivals complete.
        window: Cycles,
    },
    /// A fixed, caller-provided schedule `(instant, aperiodic index)` used
    /// verbatim in every cell (seeds then only matter for `Random`
    /// workloads). Must be sorted by instant.
    Explicit {
        /// The arrival schedule.
        arrivals: Vec<(Cycles, usize)>,
        /// Simulation horizon.
        horizon: Cycles,
    },
}

/// A declarative sweep: the grid, the knobs, and the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Target system utilizations (fraction of total capacity).
    pub utilizations: Vec<f64>,
    /// Processor counts.
    pub proc_counts: Vec<usize>,
    /// Seed coordinates — one cell per seed per grid point. Each is mixed
    /// with `master_seed` and the cell index into the cell's RNG stream.
    pub seeds: Vec<u64>,
    /// Knob settings (each multiplies the grid).
    pub knobs: Vec<Knobs>,
    /// Task-set source.
    pub workload: WorkloadSpec,
    /// Arrival-stream source.
    pub arrivals: ArrivalSpec,
    /// Root of every cell's RNG derivation.
    pub master_seed: u64,
}

impl SweepSpec {
    /// The paper's Figure 4 grid: 2–4 processors × 40/50/60% utilization,
    /// automotive workload, paper knobs, one seed.
    pub fn figure4() -> Self {
        SweepSpec {
            utilizations: vec![0.4, 0.5, 0.6],
            proc_counts: vec![2, 3, 4],
            seeds: vec![0],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 4,
                gap: Cycles::from_secs(12),
            },
            master_seed: 0,
        }
    }

    /// Sets the seed coordinates to `0..n`.
    pub fn with_seed_count(mut self, n: usize) -> Self {
        self.seeds = (0..n as u64).collect();
        self
    }

    /// Sets the master seed.
    pub fn with_master_seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Number of cells in the cross product.
    pub fn cell_count(&self) -> usize {
        self.knobs.len() * self.proc_counts.len() * self.utilizations.len() * self.seeds.len()
    }

    /// Enumerates every cell in the canonical order: knobs outermost, then
    /// processor counts, utilizations, and seeds innermost. The returned
    /// order (and each cell's `index`) is part of the determinism contract —
    /// exports list cells in exactly this order regardless of worker count.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for (knob_index, _) in self.knobs.iter().enumerate() {
            for &n_procs in &self.proc_counts {
                for &utilization in &self.utilizations {
                    for &seed in &self.seeds {
                        out.push(CellSpec {
                            index: out.len(),
                            knob_index,
                            n_procs,
                            utilization,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }

    /// The RNG stream seed for one cell: a SplitMix64-style mix of the
    /// master seed, the cell index, and the cell's seed coordinate.
    pub fn cell_stream(&self, cell: &CellSpec) -> u64 {
        mix(mix(self.master_seed, cell.index as u64), cell.seed)
    }
}

/// One point of the cross product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Position in the canonical enumeration order.
    pub index: usize,
    /// Index into [`SweepSpec::knobs`].
    pub knob_index: usize,
    /// Processor count.
    pub n_procs: usize,
    /// Target system utilization.
    pub utilization: f64,
    /// Seed coordinate.
    pub seed: u64,
}

/// SplitMix64 finalizer over `seed ⊕ γ·index` — the same mixing family the
/// vendored `StdRng::seed_from_u64` uses, so nearby cell indices yield
/// statistically independent streams.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_row_major_and_indexed() {
        let spec = SweepSpec::figure4().with_seed_count(2);
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), 18);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Seeds vary fastest, then utilizations, then processor counts.
        assert_eq!(
            (cells[0].n_procs, cells[0].utilization, cells[0].seed),
            (2, 0.4, 0)
        );
        assert_eq!(
            (cells[1].n_procs, cells[1].utilization, cells[1].seed),
            (2, 0.4, 1)
        );
        assert_eq!(
            (cells[2].n_procs, cells[2].utilization, cells[2].seed),
            (2, 0.5, 0)
        );
        assert_eq!(cells[17].n_procs, 4);
    }

    #[test]
    fn cell_streams_are_distinct_and_stable() {
        let spec = SweepSpec::figure4().with_seed_count(4);
        let cells = spec.cells();
        let streams: Vec<u64> = cells.iter().map(|c| spec.cell_stream(c)).collect();
        let mut unique = streams.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), streams.len(), "stream collision");
        // Stable across identical spec constructions.
        let again = SweepSpec::figure4().with_seed_count(4);
        assert_eq!(
            streams,
            again
                .cells()
                .iter()
                .map(|c| again.cell_stream(c))
                .collect::<Vec<_>>()
        );
        // And sensitive to the master seed.
        let other = spec.clone().with_master_seed(1);
        assert_ne!(streams[0], other.cell_stream(&other.cells()[0]));
    }
}

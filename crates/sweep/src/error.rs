//! Typed errors for sweep specification and execution.
//!
//! A malformed [`SweepSpec`](crate::SweepSpec) — an empty grid axis, a NaN
//! knob, an out-of-range fault plan — is a caller mistake the engine
//! reports as a value instead of panicking mid-fan-out on a worker thread,
//! where a panic would poison result slots and lose the diagnostic.

use std::error::Error;
use std::fmt;

use mpdp_core::TaskSetError;
use mpdp_faults::FaultPlanError;

/// Why a sweep could not be specified or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A grid axis (`utilizations`, `proc_counts`, `seeds`, or `knobs`) is
    /// empty — the cross product would contain no cells.
    EmptyAxis(&'static str),
    /// A target utilization is not a finite, positive fraction.
    InvalidUtilization(f64),
    /// A processor count of zero was requested.
    ZeroProcs,
    /// A knob's numeric field is not finite and positive.
    InvalidKnob {
        /// The knob's label.
        label: String,
        /// The offending field.
        field: &'static str,
    },
    /// Two knob settings share a label, which would make report groups
    /// ambiguous.
    DuplicateKnobLabel(String),
    /// A knob's fault plan failed validation for one of the spec's
    /// processor counts.
    InvalidFaultPlan {
        /// The knob's label.
        label: String,
        /// The plan-level diagnosis.
        source: FaultPlanError,
    },
    /// A cell's simulation rejected its inputs.
    Cell {
        /// Canonical index of the failing cell.
        cell: usize,
        /// The simulator's diagnosis.
        source: TaskSetError,
    },
    /// A worker abandoned a cell without producing a result (a bug in the
    /// engine, surfaced instead of unwrapped).
    MissingCell(usize),
    /// A cell panicked and exhausted its retry budget (self-healing
    /// execution only; plain [`run_sweep`](crate::run_sweep) propagates the
    /// panic).
    CellPanicked {
        /// Canonical index of the failing cell.
        cell: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A cell overran the watchdog deadline and exhausted its retry budget.
    CellTimedOut {
        /// Canonical index of the failing cell.
        cell: usize,
    },
    /// The run stopped before covering the grid (a cell cap was reached or
    /// an abort was requested); completed cells are in the journal.
    Interrupted {
        /// Cells completed (and journaled) before the stop.
        completed: usize,
        /// Total cells in the grid.
        total: usize,
    },
    /// A shard's cell-index range does not fit the spec's grid (a stale or
    /// mistyped range handed to a worker process).
    ShardRange {
        /// First cell index of the requested shard (inclusive).
        start: usize,
        /// One past the last cell index (exclusive).
        end: usize,
        /// Total cells in the grid.
        total: usize,
    },
    /// The checkpoint journal could not be opened, read, or appended.
    Journal {
        /// Path of the journal file.
        path: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyAxis(axis) => {
                write!(f, "sweep axis `{axis}` is empty; the grid has no cells")
            }
            SweepError::InvalidUtilization(u) => {
                write!(f, "utilization {u} is not a finite positive fraction")
            }
            SweepError::ZeroProcs => write!(f, "processor counts must be at least 1"),
            SweepError::InvalidKnob { label, field } => {
                write!(f, "knob `{label}`: {field} must be finite and positive")
            }
            SweepError::DuplicateKnobLabel(label) => {
                write!(f, "knob label `{label}` appears more than once")
            }
            SweepError::InvalidFaultPlan { label, source } => {
                write!(f, "knob `{label}`: invalid fault plan: {source}")
            }
            SweepError::Cell { cell, source } => {
                write!(f, "cell {cell}: {source}")
            }
            SweepError::MissingCell(cell) => {
                write!(f, "cell {cell} produced no result")
            }
            SweepError::CellPanicked { cell, message } => {
                write!(f, "cell {cell} panicked after retries: {message}")
            }
            SweepError::CellTimedOut { cell } => {
                write!(
                    f,
                    "cell {cell} exceeded the watchdog deadline after retries"
                )
            }
            SweepError::Interrupted { completed, total } => {
                write!(
                    f,
                    "sweep interrupted after {completed} of {total} cells; completed cells \
                     are journaled and the run can be resumed"
                )
            }
            SweepError::ShardRange { start, end, total } => {
                write!(
                    f,
                    "shard range {start}..{end} does not fit a {total}-cell grid"
                )
            }
            SweepError::Journal { path, detail } => {
                write!(f, "checkpoint journal {path}: {detail}")
            }
        }
    }
}

impl Error for SweepError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SweepError::InvalidFaultPlan { source, .. } => Some(source),
            SweepError::Cell { source, .. } => Some(source),
            _ => None,
        }
    }
}

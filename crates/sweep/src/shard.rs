//! Shard planning: splitting a sweep's cell grid into disjoint,
//! contiguous index ranges for independent worker processes.
//!
//! A shard is nothing but a slice of the canonical cell enumeration — a
//! cell's inputs are a pure function of `(spec, cell index)`, so *which*
//! process runs a cell cannot change its result. Each worker journals its
//! cells into its own checkpoint [`Journal`](crate::Journal) (fingerprinted
//! against the full spec), and [`merge`](crate::merge) recombines the
//! journals into the same bytes a single-process run exports.

use crate::error::SweepError;
use crate::spec::SweepSpec;

/// One shard of a sweep: the contiguous cell-index range `[start, end)`
/// assigned to one worker, plus its position in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard index, `0..count`.
    pub index: usize,
    /// Total shards in the plan.
    pub count: usize,
    /// First cell index (inclusive).
    pub start: usize,
    /// One past the last cell index (exclusive).
    pub end: usize,
}

impl ShardPlan {
    /// Cells assigned to this shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard has no cells (never produced by
    /// [`plan_shards`], which clamps the shard count to the grid).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The cell-index range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// Splits `cell_count` cells into `shards` balanced contiguous ranges.
///
/// The shard count is clamped to `1..=cell_count` (a grid never produces
/// an empty shard; asking for more shards than cells just yields one cell
/// per shard). Earlier shards absorb the remainder, so shard sizes differ
/// by at most one and the plan is a pure function of `(cell_count,
/// shards)` — every supervisor, worker, and merge invocation that agrees
/// on the spec agrees on the plan.
pub fn plan_shards(cell_count: usize, shards: usize) -> Vec<ShardPlan> {
    let count = shards.clamp(1, cell_count.max(1));
    let base = cell_count / count;
    let remainder = cell_count % count;
    let mut out = Vec::with_capacity(count);
    let mut start = 0;
    for index in 0..count {
        let len = base + usize::from(index < remainder);
        out.push(ShardPlan {
            index,
            count,
            start,
            end: start + len,
        });
        start += len;
    }
    out
}

/// [`plan_shards`] for a validated spec.
///
/// # Errors
///
/// Propagates [`SweepSpec::validate`] rejections, so a supervisor refuses
/// a malformed spec before any worker process launches.
pub fn plan_spec_shards(spec: &SweepSpec, shards: usize) -> Result<Vec<ShardPlan>, SweepError> {
    spec.validate()?;
    Ok(plan_shards(spec.cell_count(), shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage(plans: &[ShardPlan]) -> Vec<usize> {
        plans.iter().flat_map(|p| p.range()).collect()
    }

    #[test]
    fn plans_are_disjoint_contiguous_and_balanced() {
        for cells in [1usize, 2, 7, 9, 104, 1000] {
            for shards in [1usize, 2, 3, 8, 16] {
                let plans = plan_shards(cells, shards);
                assert_eq!(plans.len(), shards.min(cells));
                assert_eq!(coverage(&plans), (0..cells).collect::<Vec<_>>());
                let sizes: Vec<usize> = plans.iter().map(ShardPlan::len).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced plan {sizes:?}");
                assert!(plans.iter().all(|p| !p.is_empty()));
                for (i, p) in plans.iter().enumerate() {
                    assert_eq!(p.index, i);
                    assert_eq!(p.count, plans.len());
                }
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plans = plan_shards(5, 0);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].range(), 0..5);
    }

    #[test]
    fn plan_for_a_spec_validates_first() {
        let mut spec = SweepSpec::figure4();
        let plans = plan_spec_shards(&spec, 4).expect("valid spec");
        assert_eq!(plans.len(), 4);
        assert_eq!(coverage(&plans).len(), spec.cell_count());
        spec.seeds.clear();
        assert_eq!(
            plan_spec_shards(&spec, 4),
            Err(SweepError::EmptyAxis("seeds"))
        );
    }
}

//! The sweep executor: fans the cell grid over a scoped-thread worker pool
//! and produces one [`CellResult`] per cell.
//!
//! # Determinism contract
//!
//! `run_sweep(spec, 1)` and `run_sweep(spec, N)` produce **byte-identical**
//! reports. Three properties make that hold:
//!
//! 1. A cell's entire input — task set, arrival stream, simulator configs —
//!    is a pure function of `(spec, cell.index)`; its RNG stream is seeded
//!    from [`SweepSpec::cell_stream`] and never shared across cells.
//! 2. Workers claim cells through one atomic counter but write each result
//!    into the slot reserved for its cell index; no result depends on
//!    claim order.
//! 3. Aggregation (in [`report`](crate::report)) folds cells in index
//!    order and keeps all statistics in integer cycles until the final
//!    formatting step (see `ResponseAccumulator`).
//!
//! Wall-clock time is measured for the caller's benefit but deliberately
//! kept out of every export.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mpdp_analysis::baselines::{aperiodic_first, background_service};
use mpdp_analysis::tool::{prepare, ToolOptions};
use mpdp_core::ids::TaskId;
use mpdp_core::policy::MpdpPolicy;
use mpdp_core::task::{AperiodicTask, MemoryProfile, TaskTable};
use mpdp_core::time::Cycles;
use mpdp_faults::{fault_stream, CompiledFaults};
use mpdp_kernel::KernelCosts;
use mpdp_obs::{EventRecorder, NullProbe, Probe};
use mpdp_sim::prototype::{run_prototype_probed, PrototypeConfig};
use mpdp_sim::stats::{ResponseAccumulator, SurvivalStats};
use mpdp_sim::theoretical::{run_theoretical_probed, TheoreticalConfig};
use mpdp_sim::trace::Trace;
use mpdp_workload::{automotive_task_set, random_task_set, TaskGenConfig};

use crate::cache::CellCache;
use crate::error::SweepError;
use crate::report::{StreamingExports, StreamingReport};
use crate::spec::{ArrivalSpec, CellSpec, Knobs, PolicyKind, SweepSpec, WorkloadSpec};

/// What one simulator stack produced for one cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StackResult {
    /// Responses of the target aperiodic task.
    pub aperiodic: ResponseAccumulator,
    /// All hard-deadline (periodic) completions, with miss bookkeeping.
    pub periodic: ResponseAccumulator,
    /// Context switches.
    pub switches: u64,
    /// Scheduling passes (prototype only; zero on the theoretical stack).
    pub sched_passes: u64,
    /// Context words moved over the bus (prototype only).
    pub context_words: u64,
    /// Survivability bookkeeping (all-zero unless the cell's knob injects
    /// faults or runs a non-inert degradation policy).
    pub survival: SurvivalStats,
}

/// The outcome of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's grid coordinates.
    pub cell: CellSpec,
    /// Label of the knob setting the cell ran under.
    pub knob_label: String,
    /// Whether the offline analysis admitted the task set. Unschedulable
    /// cells (possible in Monte Carlo mode at high utilization) carry empty
    /// stacks and are reported, not dropped.
    pub schedulable: bool,
    /// Theoretical-simulator results.
    pub theoretical: StackResult,
    /// Prototype-stack results.
    pub real: StackResult,
}

impl CellResult {
    /// Prototype mean over theoretical mean, as the paper's slowdown
    /// percentage; `None` if either side has no aperiodic completions.
    pub fn slowdown_pct(&self) -> Option<f64> {
        let theo = self.theoretical.aperiodic.finalize()?.mean_s;
        let real = self.real.aperiodic.finalize()?.mean_s;
        Some(100.0 * (real / theo - 1.0))
    }
}

/// Wall-time/throughput self-profile of one cell. Run metadata for the
/// caller's eyes (a `--profile` flag, a progress bar): wall-clock is
/// non-deterministic by nature, so profiles are **never** exported and
/// never enter [`CellResult`].
#[derive(Debug, Clone, Copy)]
pub struct CellProfile {
    /// Cell index.
    pub index: usize,
    /// Wall-clock time spent simulating both stacks of this cell.
    pub wall: Duration,
    /// Simulated horizon in cycles (each stack covered this span; zero for
    /// unschedulable cells, which run no simulation).
    pub sim_cycles: u64,
    /// Completion records folded into the cell's accumulators, both stacks.
    pub completions: u64,
}

impl CellProfile {
    /// Simulated megacycles per wall-second, both stacks combined.
    pub fn throughput_mcps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (2 * self.sim_cycles) as f64 / 1e6 / secs
        }
    }
}

/// A completed sweep: every cell's result in canonical order, plus run
/// metadata (excluded from exports).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Cell results, ordered by cell index.
    pub cells: Vec<CellResult>,
    /// Whether any knob injected faults or enforced degradation; exports
    /// gate their survivability columns on this so fault-free sweeps stay
    /// byte-identical to older builds.
    pub faulted: bool,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the fan-out (not exported).
    pub wall: Duration,
    /// Per-cell self-profiles, ordered by cell index (not exported).
    pub profiles: Vec<CellProfile>,
}

/// Cache key of an analyzed table: the exact cell coordinates that reach
/// the offline analysis. The seed axis is deliberately absent — it only
/// perturbs arrival phases — and the knob axis is collapsed to its index,
/// which covers every analysis-relevant knob (tick, WCET margin, policy).
type TableKey = (u64, usize, usize);

/// Cached value: the analyzed table (shared, clone-on-write) and the
/// sweep's target aperiodic task, or `None` for unschedulable coordinates.
type CachedTable = Option<(Arc<TaskTable>, TaskId)>;

/// Per-sweep memo of analyzed task tables, shared by every worker.
///
/// The offline analysis (`prepare()` and the promotion fixed point) is a
/// pure function of `(workload, utilization, n_procs, knob)`; sweeping the
/// seed axis re-runs it redundantly for every cell. Workloads that draw
/// from the cell's RNG stream ([`WorkloadSpec::Random`]) bypass the cache
/// entirely, so caching can never perturb a stream. Both sides of a miss
/// race may compute the table; both compute the identical value (purity),
/// so the second insert is harmless.
#[derive(Debug, Default)]
pub struct TableCache {
    tables: Mutex<HashMap<TableKey, CachedTable>>,
}

impl TableCache {
    /// An empty cache. One cache serves one spec: keys assume the spec's
    /// workload and knob list are fixed for the cache's lifetime.
    pub fn new() -> Self {
        TableCache::default()
    }

    fn get_or_build(
        &self,
        spec: &SweepSpec,
        cell: &CellSpec,
        knob: &Knobs,
        rng: &mut StdRng,
    ) -> Option<(Arc<TaskTable>, TaskId)> {
        if !matches!(spec.workload, WorkloadSpec::Automotive) {
            // The generator seed comes from `rng`: building is part of the
            // cell's RNG stream and must happen exactly once per cell.
            return build_cell_table(spec, cell, knob, rng).map(|(t, id)| (Arc::new(t), id));
        }
        let key = (cell.utilization.to_bits(), cell.n_procs, cell.knob_index);
        if let Some(hit) = self
            .tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return hit.clone();
        }
        // Build outside the lock so a slow analysis never serializes the
        // other workers' cache hits.
        let built = build_cell_table(spec, cell, knob, rng).map(|(t, id)| (Arc::new(t), id));
        self.tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, built.clone());
        built
    }
}

/// Per-worker scratch reused across every cell the worker claims, so the
/// fan-out does not re-allocate the arrival stream per cell.
#[derive(Debug, Default)]
pub(crate) struct CellScratch {
    arrivals: Vec<(Cycles, usize)>,
}

/// Runs every cell of `spec` over `workers` threads (clamped to at least
/// one) and returns the report. See the module docs for the determinism
/// contract.
///
/// # Errors
///
/// Returns the spec's [`SweepSpec::validate`] rejection without running
/// any cell, or the lowest-indexed cell failure (worker count never
/// changes *which* error is reported).
pub fn run_sweep(spec: &SweepSpec, workers: usize) -> Result<SweepReport, SweepError> {
    run_sweep_with_cache(spec, workers, None)
}

/// [`run_sweep`] consulting a persistent [`CellCache`] before each cell:
/// hits skip both simulators entirely, misses run and then populate the
/// cache. A hit reconstructs the identical [`CellResult`] a cold run
/// would produce (the payload is content-addressed by the cell's input
/// fingerprint), so exports remain byte-identical with any mix of hits
/// and misses. `None` is exactly [`run_sweep`].
///
/// # Errors
///
/// Same as [`run_sweep`].
pub fn run_sweep_with_cache(
    spec: &SweepSpec,
    workers: usize,
    cell_cache: Option<&CellCache>,
) -> Result<SweepReport, SweepError> {
    type Slot = Mutex<Option<Result<(CellResult, CellProfile), SweepError>>>;
    spec.validate()?;
    let cells = spec.cells();
    let start = Instant::now();
    let slots: Vec<Slot> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(cells.len().max(1));
    let cache = TableCache::default();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = CellScratch::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let t0 = Instant::now();
                    let result = match cell_cache.and_then(|cc| cc.lookup(spec, cell)) {
                        Some(hit) => Ok((
                            hit,
                            CellProfile {
                                index: cell.index,
                                wall: t0.elapsed(),
                                // A hit simulates nothing; profiles are run
                                // metadata and never exported, so the zero
                                // is honest, not a determinism hazard.
                                sim_cycles: 0,
                                completions: 0,
                            },
                        )),
                        None => run_cell_inner(
                            spec,
                            cell,
                            NullProbe,
                            NullProbe,
                            Some(&cache),
                            &mut scratch,
                        )
                        .map(|(c, _, _, horizon)| {
                            if let Some(cc) = cell_cache {
                                cc.insert(spec, cell, &c);
                            }
                            let completions = (c.theoretical.aperiodic.len()
                                + c.theoretical.periodic.len()
                                + c.real.aperiodic.len()
                                + c.real.periodic.len())
                                as u64;
                            let profile = CellProfile {
                                index: cell.index,
                                wall: t0.elapsed(),
                                sim_cycles: horizon.as_u64(),
                                completions,
                            };
                            (c, profile)
                        }),
                    };
                    // A poisoned slot mutex means another worker panicked
                    // while holding it; the store below is a single
                    // assignment, so recover the guard rather than cascade
                    // the panic.
                    let mut slot = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                    *slot = Some(result);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(cells.len());
    let mut profiles = Vec::with_capacity(cells.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(result) => {
                let (cell, profile) = result?;
                out.push(cell);
                profiles.push(profile);
            }
            None => return Err(SweepError::MissingCell(i)),
        }
    }
    Ok(SweepReport {
        cells: out,
        faulted: spec.is_faulted(),
        workers,
        wall: start.elapsed(),
        profiles,
    })
}

/// What [`run_sweep_streaming`] produces: the finished exports plus the
/// run metadata [`SweepReport`] would have carried. There is no
/// `cells` vector — per-cell results were folded into the exports and
/// dropped as they arrived.
#[derive(Debug, Clone)]
pub struct StreamedSweep {
    /// The three export documents, byte-identical to rendering a
    /// [`SweepReport`] from the same spec.
    pub exports: StreamingExports,
    /// Cells executed (the full grid).
    pub cells: usize,
    /// Whether any knob injected faults or enforced degradation.
    pub faulted: bool,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the fan-out (not exported).
    pub wall: Duration,
    /// High-water mark of the reorder buffer — the streaming path's
    /// extra memory, in buffered cell results (bounded by how far ahead
    /// of the slowest cell the other workers ran; O(workers) in
    /// practice, never O(cells)).
    pub peak_pending: usize,
}

/// [`run_sweep`] with streaming finalization: cell results are folded
/// into the growing CSV/JSON exports **as workers finish them** (in
/// cell-index order, via a small reorder buffer) instead of being
/// accumulated into a `Vec<CellResult>` and rendered at the end. Memory
/// is O(workers + open group accumulators); the exports are
/// byte-identical to the batch path's at any worker count. Pass a
/// [`CellCache`] to also skip cells whose inputs are already cached.
///
/// # Errors
///
/// Same as [`run_sweep`]: the spec's validation rejection, or the
/// lowest-indexed cell failure.
pub fn run_sweep_streaming(
    spec: &SweepSpec,
    workers: usize,
    cell_cache: Option<&CellCache>,
) -> Result<StreamedSweep, SweepError> {
    spec.validate()?;
    let cells = spec.cells();
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let workers = workers.max(1).min(cells.len().max(1));
    let cache = TableCache::default();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<CellResult, SweepError>)>();
    let mut stream = StreamingReport::new(spec.is_faulted());
    let mut first_error: Option<(usize, SweepError)> = None;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, cache) = (&next, &cache);
            let cells = &cells;
            scope.spawn(move || {
                let mut scratch = CellScratch::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = match cell_cache.and_then(|cc| cc.lookup(spec, cell)) {
                        Some(hit) => Ok(hit),
                        None => run_cell_inner(
                            spec,
                            cell,
                            NullProbe,
                            NullProbe,
                            Some(cache),
                            &mut scratch,
                        )
                        .map(|(c, _, _, _)| {
                            if let Some(cc) = cell_cache {
                                cc.insert(spec, cell, &c);
                            }
                            c
                        }),
                    };
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // The fold runs on this thread, concurrently with the workers:
        // each arriving result is consumed (exported and dropped) here.
        for (i, result) in rx {
            match result {
                Ok(cell) => stream.push(cell),
                Err(e) => {
                    if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_error = Some((i, e));
                    }
                }
            }
        }
    });
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    if stream.folded() != cells.len() {
        return Err(SweepError::MissingCell(stream.folded()));
    }
    let peak_pending = stream.peak_pending();
    Ok(StreamedSweep {
        exports: stream.finish(),
        cells: cells.len(),
        faulted: spec.is_faulted(),
        workers,
        wall: start.elapsed(),
        peak_pending,
    })
}

/// Everything the observability layer captured while re-running one cell
/// probed: one [`EventRecorder`] per stack plus the cell's horizon (the
/// denominator of each ledger's conservation invariant).
#[derive(Debug, Clone)]
pub struct CellObservation {
    /// Recorder threaded through the theoretical stack.
    pub theoretical: EventRecorder,
    /// Recorder threaded through the prototype stack.
    pub real: EventRecorder,
    /// Simulated horizon (zero for unschedulable cells, which run nothing).
    pub horizon: Cycles,
}

/// [`run_cell`] with an [`EventRecorder`] threaded through both stacks.
/// The returned [`CellResult`] is identical to the unprobed one —
/// observation never perturbs the simulation.
///
/// # Errors
///
/// Same as [`run_cell`].
pub fn run_cell_probed(
    spec: &SweepSpec,
    cell: &CellSpec,
) -> Result<(CellResult, CellObservation), SweepError> {
    let (result, theoretical, real, horizon) = run_cell_inner(
        spec,
        cell,
        EventRecorder::new(cell.n_procs),
        EventRecorder::new(cell.n_procs),
        None,
        &mut CellScratch::default(),
    )?;
    Ok((
        result,
        CellObservation {
            theoretical,
            real,
            horizon,
        },
    ))
}

/// [`run_sweep`], then a probed re-run of cell `trace_cell` for trace
/// export. The re-run is a pure function of `(spec, trace_cell)` — worker
/// count cannot perturb it — so the observation obeys the same determinism
/// contract as the report.
///
/// # Errors
///
/// Same as [`run_sweep`], plus [`SweepError::MissingCell`] when
/// `trace_cell` is outside the grid.
pub fn run_sweep_traced(
    spec: &SweepSpec,
    workers: usize,
    trace_cell: usize,
) -> Result<(SweepReport, CellObservation), SweepError> {
    let report = run_sweep(spec, workers)?;
    let cells = spec.cells();
    let cell = cells
        .get(trace_cell)
        .ok_or(SweepError::MissingCell(trace_cell))?;
    let (_, observation) = run_cell_probed(spec, cell)?;
    Ok((report, observation))
}

/// Runs one cell on both stacks. Public so callers can run single cells
/// (e.g. the Figure 4 point API) through exactly the engine's code path.
///
/// # Errors
///
/// [`SweepError::Cell`] when either simulator rejects the cell's inputs.
pub fn run_cell(spec: &SweepSpec, cell: &CellSpec) -> Result<CellResult, SweepError> {
    run_cell_inner(
        spec,
        cell,
        NullProbe,
        NullProbe,
        None,
        &mut CellScratch::default(),
    )
    .map(|(c, _, _, _)| c)
}

/// [`run_cell`] sharing a sweep-scoped [`TableCache`] — the self-healing
/// executor's runner (so resumed/retried sweeps get the same analysis
/// memoization as the plain fan-out) and the entry point for long-lived
/// callers like the `mpdpd` admission daemon, whose repeated queries
/// against one `(workload, procs, knob)` coordinate hit the RTA cache.
pub fn run_cell_cached(
    spec: &SweepSpec,
    cell: &CellSpec,
    cache: &TableCache,
) -> Result<CellResult, SweepError> {
    run_cell_inner(
        spec,
        cell,
        NullProbe,
        NullProbe,
        Some(cache),
        &mut CellScratch::default(),
    )
    .map(|(c, _, _, _)| c)
}

/// The single cell code path, generic over one probe per stack. With
/// [`NullProbe`]s this monomorphizes to the pre-observability engine.
fn run_cell_inner<PT: Probe, PR: Probe>(
    spec: &SweepSpec,
    cell: &CellSpec,
    theo_probe: PT,
    real_probe: PR,
    cache: Option<&TableCache>,
    scratch: &mut CellScratch,
) -> Result<(CellResult, PT, PR, Cycles), SweepError> {
    let knob = &spec.knobs[cell.knob_index];
    let mut rng = StdRng::seed_from_u64(spec.cell_stream(cell));

    let built = match cache {
        Some(cache) => cache.get_or_build(spec, cell, knob, &mut rng),
        None => build_cell_table(spec, cell, knob, &mut rng).map(|(t, id)| (Arc::new(t), id)),
    };
    let (table, target) = match built {
        Some(pair) => pair,
        None => {
            return Ok((
                CellResult {
                    cell: *cell,
                    knob_label: knob.label.clone(),
                    schedulable: false,
                    theoretical: StackResult::default(),
                    real: StackResult::default(),
                },
                theo_probe,
                real_probe,
                Cycles::ZERO,
            ))
        }
    };
    let horizon = build_arrivals_into(spec, &mut rng, &mut scratch.arrivals);
    let arrivals = &mut scratch.arrivals;

    // Compile the knob's fault plan against this cell's coordinates. The
    // stream is salted away from the cell's workload stream so adding a
    // fault plan never perturbs the task set or the nominal arrivals.
    let faults = if knob.faults.is_empty() {
        CompiledFaults::none()
    } else {
        let compiled = knob
            .faults
            .compile(fault_stream(spec.cell_stream(cell)), cell.n_procs);
        if !compiled.extra_arrivals().is_empty() {
            // Overload-burst arrivals join the nominal stream; both sides
            // are sorted, and the simulators require the merge to be too.
            arrivals.extend_from_slice(compiled.extra_arrivals());
            arrivals.sort_by_key(|&(at, idx)| (at, idx));
        }
        compiled
    };
    let cell_err = |source| SweepError::Cell {
        cell: cell.index,
        source,
    };

    let (theo, theo_probe) = run_theoretical_probed(
        MpdpPolicy::new(Arc::clone(&table)).with_degradation(knob.degradation),
        arrivals,
        TheoreticalConfig::new(horizon)
            .with_tick(knob.tick)
            .with_overhead(knob.theoretical_overhead),
        &faults,
        theo_probe,
    )
    .map_err(cell_err)?;
    let (real, real_probe) = run_prototype_probed(
        MpdpPolicy::new(table).with_degradation(knob.degradation),
        arrivals,
        PrototypeConfig::new(horizon)
            .with_tick(knob.tick)
            .with_kernel_costs(KernelCosts::default().with_context_scale(knob.context_scale)),
        &faults,
        real_probe,
    )
    .map_err(cell_err)?;

    let mut theoretical = stack_result(&theo.trace, target);
    theoretical.switches = theo.switches;
    theoretical.survival = theo.survival;
    let mut real_result = stack_result(&real.trace, target);
    real_result.switches = real.kernel.context_switches;
    real_result.sched_passes = real.kernel.sched_passes;
    real_result.context_words = real.kernel.context_words;
    real_result.survival = real.survival;

    Ok((
        CellResult {
            cell: *cell,
            knob_label: knob.label.clone(),
            schedulable: true,
            theoretical,
            real: real_result,
        },
        theo_probe,
        real_probe,
        horizon,
    ))
}

/// Reconstructs the analyzed task table a cell ran under, `None` if the
/// offline analysis rejects it (the cell is then reported unschedulable).
/// A pure function of `(spec, cell)` — the RNG is re-derived from the
/// cell's stream exactly as the engine does it — so audit tooling can
/// rebuild the table long after the sweep without perturbing anything.
pub fn cell_table(spec: &SweepSpec, cell: &CellSpec) -> Option<(TaskTable, TaskId)> {
    let knob = &spec.knobs[cell.knob_index];
    let mut rng = StdRng::seed_from_u64(spec.cell_stream(cell));
    build_cell_table(spec, cell, knob, &mut rng)
}

/// Builds the analyzed task table for a cell, `None` if the offline
/// analysis rejects it. Also returns the target aperiodic task id.
fn build_cell_table(
    spec: &SweepSpec,
    cell: &CellSpec,
    knob: &Knobs,
    rng: &mut StdRng,
) -> Option<(TaskTable, TaskId)> {
    let (periodic, aperiodic) = match spec.workload {
        WorkloadSpec::Automotive => {
            let set = automotive_task_set(cell.utilization, cell.n_procs, knob.tick);
            (set.periodic, set.aperiodic)
        }
        WorkloadSpec::Random {
            tasks,
            aperiodic_exec,
        } => {
            let cfg =
                TaskGenConfig::new(tasks * cell.n_procs, cell.utilization * cell.n_procs as f64)
                    .with_seed(rng.gen())
                    .with_tick(knob.tick)
                    .with_period_ticks(2, 40);
            let periodic: Vec<_> = random_task_set(&cfg)
                .iter()
                .map(|t| t.clone().with_profile(MemoryProfile::compute_bound()))
                .collect();
            let aperiodic = vec![AperiodicTask::new(
                TaskId::new(1000),
                "mc-aperiodic",
                aperiodic_exec,
            )];
            (periodic, aperiodic)
        }
    };
    let table = match knob.policy {
        PolicyKind::Mpdp => prepare(
            periodic,
            aperiodic,
            cell.n_procs,
            ToolOptions::new()
                .with_quantization(knob.tick)
                .with_wcet_margin(knob.wcet_margin),
        )
        .ok()?,
        PolicyKind::Background => background_service(periodic, aperiodic, cell.n_procs).ok()?,
        PolicyKind::AperiodicFirst => aperiodic_first(periodic, aperiodic, cell.n_procs).ok()?,
    };
    let target = table.aperiodic().first()?.id();
    Some((table, target))
}

/// Builds the cell's aperiodic arrival stream into a caller-owned buffer
/// (cleared first), so a worker sweeping many cells reuses one
/// allocation. Returns the simulation horizon. The RNG draws depend only
/// on the spec — buffer reuse never touches a cell's stream.
fn build_arrivals_into(
    spec: &SweepSpec,
    rng: &mut StdRng,
    out: &mut Vec<(Cycles, usize)>,
) -> Cycles {
    out.clear();
    match &spec.arrivals {
        &ArrivalSpec::Bursts { activations, gap } => {
            out.extend((0..activations.max(1)).map(|i| {
                // Sub-tick phase jitter: the camera is not synchronized
                // to the scheduler tick.
                let jitter = Cycles::from_millis(rng.gen_range(0u64..100));
                (Cycles::from_secs(1) + gap * i as u64 + jitter, 0usize)
            }));
            // `activations.max(1)` above guarantees a last element; fall
            // back to the burst origin rather than panic if that changes.
            let last = out.last().map_or(Cycles::from_secs(1), |a| a.0);
            last + gap + Cycles::from_secs(5)
        }
        &ArrivalSpec::Poisson { mean_gap, window } => {
            out.extend(
                mpdp_workload::poisson_arrivals(rng, mean_gap, window)
                    .into_iter()
                    .map(|t| (t, 0usize)),
            );
            window + Cycles::from_secs(10)
        }
        ArrivalSpec::Explicit { arrivals, horizon } => {
            out.extend_from_slice(arrivals);
            *horizon
        }
    }
}

/// Folds a trace into per-stack accumulators.
fn stack_result(trace: &Trace, target: TaskId) -> StackResult {
    let mut out = StackResult::default();
    for c in &trace.completions {
        if c.task == target {
            out.aperiodic.observe(c.response);
        }
        if c.deadline.is_some() {
            out.periodic.observe_completion(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            utilizations: vec![0.4],
            proc_counts: vec![2],
            seeds: vec![0, 1],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 1,
                gap: Cycles::from_secs(12),
            },
            master_seed: 42,
        }
    }

    #[test]
    fn single_worker_run_covers_every_cell() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, 1).expect("valid spec");
        assert!(!report.faulted);
        assert_eq!(report.cells.len(), 2);
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.cell.index, i);
            assert!(cell.schedulable);
            assert!(!cell.theoretical.aperiodic.is_empty());
            assert!(!cell.real.aperiodic.is_empty());
            assert!(cell.slowdown_pct().expect("both stacks completed") > 0.0);
        }
    }

    #[test]
    fn sweep_collects_one_profile_per_cell() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, 2).expect("valid spec");
        assert_eq!(report.profiles.len(), report.cells.len());
        for (i, p) in report.profiles.iter().enumerate() {
            assert_eq!(p.index, i);
            assert!(p.sim_cycles > 0, "schedulable cells simulate a horizon");
            assert!(p.completions > 0);
        }
    }

    #[test]
    fn probed_cell_matches_unprobed_and_conserves() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let plain = run_cell(&spec, &cells[0]).expect("cell runs");
        let (probed, obs) = run_cell_probed(&spec, &cells[0]).expect("cell runs");
        // Observation never perturbs the simulation: identical results.
        assert_eq!(plain, probed);
        // Both stacks' ledgers partition horizon × n_procs exactly.
        obs.theoretical
            .ledger()
            .check_conservation(obs.horizon)
            .expect("theoretical ledger conserves");
        obs.real
            .ledger()
            .check_conservation(obs.horizon)
            .expect("prototype ledger conserves");
        assert!(obs.real.count_events("isr-enter") > 0);
    }

    #[test]
    fn traced_sweep_observation_is_worker_independent() {
        let spec = tiny_spec();
        let (_, obs1) = run_sweep_traced(&spec, 1, 1).expect("valid spec");
        let (_, obs8) = run_sweep_traced(&spec, 8, 1).expect("valid spec");
        assert_eq!(obs1.real.events(), obs8.real.events());
        assert_eq!(obs1.real.spans(), obs8.real.spans());
        assert!(matches!(
            run_sweep_traced(&spec, 1, 99),
            Err(SweepError::MissingCell(99))
        ));
    }

    #[test]
    fn streaming_exports_match_batch_at_any_worker_count() {
        let spec = tiny_spec();
        let batch = run_sweep(&spec, 1).expect("valid spec");
        let expected = (
            crate::report::cells_csv(&batch),
            crate::report::summary_csv(&batch),
            crate::report::report_json(&batch),
        );
        for workers in [1usize, 8] {
            let streamed = run_sweep_streaming(&spec, workers, None).expect("valid spec");
            assert_eq!(streamed.cells, batch.cells.len());
            assert_eq!(streamed.exports.cells_csv, expected.0, "workers={workers}");
            assert_eq!(
                streamed.exports.summary_csv, expected.1,
                "workers={workers}"
            );
            assert_eq!(
                streamed.exports.report_json, expected.2,
                "workers={workers}"
            );
        }
        let serial = run_sweep_streaming(&spec, 1, None).expect("valid spec");
        assert_eq!(serial.peak_pending, 1, "in-order arrivals fold immediately");
    }

    #[test]
    fn warm_cache_reruns_hit_every_cell_and_stay_byte_identical() {
        let spec = tiny_spec();
        let dir = std::env::temp_dir().join(format!("mpdp-engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = run_sweep(&spec, 1).expect("valid spec");
        let expected = crate::report::cells_csv(&plain);

        let cache = CellCache::open(&dir).expect("cache opens");
        let cold = run_sweep_with_cache(&spec, 2, Some(&cache)).expect("cold run");
        assert_eq!(crate::report::cells_csv(&cold), expected);
        let stats = cache.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses as usize, plain.cells.len());

        let warm = run_sweep_with_cache(&spec, 2, Some(&cache)).expect("warm run");
        assert_eq!(crate::report::cells_csv(&warm), expected);
        let stats = cache.stats();
        assert_eq!(
            stats.hits as usize,
            plain.cells.len(),
            "warm run is all hits"
        );
        assert_eq!(stats.misses as usize, plain.cells.len());

        // The streaming path shares the same cache and the same bytes.
        let streamed = run_sweep_streaming(&spec, 2, Some(&cache)).expect("streamed warm");
        assert_eq!(streamed.exports.cells_csv, expected);
        assert_eq!(
            cache.stats().hits as usize,
            2 * plain.cells.len(),
            "streamed warm run is all hits too"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeds_change_the_arrival_phase_but_not_the_workload() {
        let spec = tiny_spec();
        let report = run_sweep(&spec, 2).expect("valid spec");
        let [a, b] = &report.cells[..] else {
            panic!("two cells")
        };
        // Same automotive table; both cells stay schedulable and miss-free.
        assert_eq!(a.real.periodic.miss_ratio(), 0.0);
        assert_eq!(b.real.periodic.miss_ratio(), 0.0);
        // Distinct seed coordinates give distinct RNG streams and thus
        // distinct arrival phases. (The *response* may legitimately
        // coincide — MPDP serves the lone aperiodic on arrival — so assert
        // on the stream, not the chaotic outcome.)
        let cells = spec.cells();
        let mut rng_a = StdRng::seed_from_u64(spec.cell_stream(&cells[0]));
        let mut rng_b = StdRng::seed_from_u64(spec.cell_stream(&cells[1]));
        let (mut arr_a, mut arr_b) = (Vec::new(), Vec::new());
        build_arrivals_into(&spec, &mut rng_a, &mut arr_a);
        build_arrivals_into(&spec, &mut rng_b, &mut arr_b);
        assert_ne!(
            arr_a, arr_b,
            "distinct seeds produced identical arrival phases"
        );
    }
}

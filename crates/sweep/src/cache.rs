//! Incremental, content-addressed cell-result cache.
//!
//! Re-running a sweep after an edit that only touches part of the grid
//! (a new seed, an appended utilization, a renamed knob) should not
//! recompute the cells whose inputs did not change. The cache keys each
//! completed cell by its [`cell_fingerprint`](crate::cell_fingerprint) —
//! a canonical digest of exactly the inputs that reach the simulation —
//! and persists `(digest, schedulable, both stack results)` records in a
//! cache directory that any later run, sharded or not, can hit.
//!
//! ## Storage
//!
//! The directory holds append-only segment files (`seg-<pid>.mpdpc`),
//! one per writing process, each a [`LineJournal`] with the standard
//! fsync + per-record-checksum + torn-tail-recovery discipline. The
//! header fingerprint is the FNV-1a of [`ENGINE_VERSION`], implementing
//! the `(cell fingerprint, engine version)` key: bumping the engine
//! version orphans every old segment instead of replaying stale results.
//! A process appends only to its own segment and reads every other
//! segment tolerantly (wrong-version headers skip the file; a torn or
//! corrupt record stops the scan of that file), so concurrent sharded
//! workers share one directory without locking.
//!
//! ## Eviction
//!
//! The cache is capped by total on-disk bytes. At open, oldest segments
//! (by mtime, ties by name) are deleted until the directory fits the
//! cap — whole-segment granularity keeps eviction a single `unlink` and
//! never tears a surviving file.
//!
//! ## What a hit means
//!
//! A hit returns a [`CellResult`] reconstructed from the *live* spec's
//! cell coordinates and knob label, so exports are byte-identical to a
//! cold run by construction: the cached payload is exactly the data a
//! checkpoint-journal record round-trips, and everything cosmetic comes
//! from the current spec.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::engine::{CellResult, StackResult};
use crate::error::SweepError;
use crate::fingerprint::{cell_fingerprint, ENGINE_VERSION};
use crate::journal::{format_stack, parse_stack};
use crate::linejournal::{fnv1a, LineJournal};
use crate::spec::{CellSpec, SweepSpec};

/// Magic + version tag of cache segment headers.
pub(crate) const CACHE_MAGIC: &str = "MPDPC1";

/// Default on-disk size cap: plenty for tens of millions of cells while
/// staying polite on a developer machine.
pub const DEFAULT_CACHE_CAP_BYTES: u64 = 256 * 1024 * 1024;

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to execution.
    pub misses: u64,
    /// Records dropped by segment eviction at open.
    pub evictions: u64,
    /// Bytes of segment data loaded at open plus appended since.
    pub bytes: u64,
}

/// The cached payload of one cell: everything a
/// [`CellResult`] holds except the coordinates and label, which are
/// reattached from the live spec on a hit.
#[derive(Debug, Clone, PartialEq)]
struct CachedCell {
    schedulable: bool,
    theoretical: StackResult,
    real: StackResult,
}

/// An open cell-result cache directory. Cheap to share behind an `Arc`;
/// lookups and inserts are thread-safe.
pub struct CellCache {
    entries: Mutex<HashMap<u64, CachedCell>>,
    segment: LineJournal,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl fmt::Debug for CellCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CellCache")
            .field("segment", &self.segment.path())
            .field("stats", &self.stats())
            .finish()
    }
}

fn cache_err(path: &Path, detail: String) -> SweepError {
    SweepError::Journal {
        path: path.display().to_string(),
        detail,
    }
}

/// The engine-version fingerprint every readable segment must carry.
fn engine_fingerprint() -> u64 {
    fnv1a(ENGINE_VERSION.as_bytes())
}

/// The record body for one cached cell (the segment adds the checksum).
fn format_cache_body(digest: u64, entry: &CachedCell) -> String {
    format!(
        "cell {digest:016x} {} {} {}",
        u8::from(entry.schedulable),
        format_stack(&entry.theoretical),
        format_stack(&entry.real)
    )
}

/// Parses one checksum-verified record body. `None` stops the scan of
/// that segment, exactly like a torn tail.
fn parse_cache_body(body: &str) -> Option<(u64, CachedCell)> {
    let mut tokens = body.split(' ');
    if tokens.next()? != "cell" {
        return None;
    }
    let digest = u64::from_str_radix(tokens.next()?, 16).ok()?;
    let schedulable = match tokens.next()? {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    let theoretical = parse_stack(tokens.next()?)?;
    let real = parse_stack(tokens.next()?)?;
    if tokens.next().is_some() {
        return None;
    }
    Some((
        digest,
        CachedCell {
            schedulable,
            theoretical,
            real,
        },
    ))
}

/// One segment file found in the cache directory.
struct Segment {
    path: PathBuf,
    len: u64,
    mtime: std::time::SystemTime,
}

fn list_segments(dir: &Path) -> Result<Vec<Segment>, SweepError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| cache_err(dir, format!("cannot list cache: {e}")))?;
    let mut segments = Vec::new();
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "mpdpc") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        segments.push(Segment {
            len: meta.len(),
            mtime: meta.modified().unwrap_or(std::time::UNIX_EPOCH),
            path,
        });
    }
    // Oldest first; mtime ties (coarse filesystems) break by name so
    // eviction order is still deterministic.
    segments.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
    Ok(segments)
}

/// Counts the records in a segment file about to be evicted (complete
/// lines past the header) — advisory accounting, so a best-effort read.
fn count_records(path: &Path) -> u64 {
    std::fs::read_to_string(path).map_or(0, |text| {
        (text
            .split_inclusive('\n')
            .filter(|l| l.ends_with('\n'))
            .count() as u64)
            .saturating_sub(1)
    })
}

impl CellCache {
    /// Opens (or creates) the cache directory with the default size cap.
    ///
    /// # Errors
    ///
    /// [`SweepError::Journal`] when the directory or this process's own
    /// segment cannot be created.
    pub fn open(dir: &Path) -> Result<Self, SweepError> {
        Self::open_capped(dir, DEFAULT_CACHE_CAP_BYTES)
    }

    /// Opens (or creates) the cache directory, evicting oldest segments
    /// until the directory fits `cap_bytes`, then loading every readable
    /// entry. Foreign segments are read tolerantly: a wrong-version
    /// header skips the file, a torn or corrupt record stops that file's
    /// scan — corruption can cost hits, never correctness.
    ///
    /// # Errors
    ///
    /// [`SweepError::Journal`] when the directory or this process's own
    /// segment cannot be created; never for unreadable foreign segments.
    pub fn open_capped(dir: &Path, cap_bytes: u64) -> Result<Self, SweepError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| cache_err(dir, format!("cannot create cache dir: {e}")))?;
        let own = dir.join(format!("seg-{}.mpdpc", std::process::id()));
        let mut segments = list_segments(dir)?;

        // Capped-size eviction, oldest segment first. The own segment is
        // evictable like any other: a stale file under our pid is just an
        // old segment that happens to collide.
        let mut total: u64 = segments.iter().map(|s| s.len).sum();
        let mut evicted_records = 0u64;
        while total > cap_bytes && !segments.is_empty() {
            let victim = segments.remove(0);
            evicted_records += count_records(&victim.path);
            let _ = std::fs::remove_file(&victim.path);
            total -= victim.len;
        }

        let fingerprint = engine_fingerprint();
        let expected_header = format!("{CACHE_MAGIC} fp={fingerprint:016x}\n");
        let mut entries = HashMap::new();
        let mut loaded_bytes = 0u64;
        for segment in segments.iter().filter(|s| s.path != own) {
            let Ok(text) = std::fs::read_to_string(&segment.path) else {
                continue;
            };
            let mut lines = text.split_inclusive('\n');
            match lines.next() {
                Some(head) if head == expected_header => {}
                _ => continue, // different engine version or torn header
            }
            loaded_bytes += expected_header.len() as u64;
            for line in lines {
                if !line.ends_with('\n') {
                    break; // torn tail
                }
                let Some((digest, entry)) = verify_and_parse(line.trim_end()) else {
                    break; // corrupt record: stop, as recovery would
                };
                entries.insert(digest, entry);
                loaded_bytes += line.len() as u64;
            }
        }

        // The own segment goes through the full LineJournal recovery so
        // this process can append to it; its surviving records load too.
        let segment = LineJournal::open(&own, CACHE_MAGIC, fingerprint)
            .map_err(|e| cache_err(&own, e.detail))?;
        for body in segment.recovered() {
            if let Some((digest, entry)) = parse_cache_body(body) {
                entries.insert(digest, entry);
            }
            loaded_bytes += body.len() as u64 + 19; // " #<16-hex>\n"
        }

        Ok(CellCache {
            entries: Mutex::new(entries),
            segment,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(evicted_records),
            bytes: AtomicU64::new(loaded_bytes),
        })
    }

    /// Looks up a cell; a hit reconstructs the full [`CellResult`] from
    /// the cached payload plus the live spec's coordinates and label.
    /// Every call counts as exactly one hit or one miss.
    pub fn lookup(&self, spec: &SweepSpec, cell: &CellSpec) -> Option<CellResult> {
        let digest = cell_fingerprint(spec, cell);
        let cached = {
            let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            entries.get(&digest).cloned()
        };
        match cached {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(CellResult {
                    cell: *cell,
                    knob_label: spec.knobs[cell.knob_index].label.clone(),
                    schedulable: entry.schedulable,
                    theoretical: entry.theoretical,
                    real: entry.real,
                })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a freshly computed cell. The in-memory map always takes
    /// the entry; the durable append is advisory (a full disk costs
    /// future hits, not this sweep).
    pub fn insert(&self, spec: &SweepSpec, cell: &CellSpec, result: &CellResult) {
        let digest = cell_fingerprint(spec, cell);
        let entry = CachedCell {
            schedulable: result.schedulable,
            theoretical: result.theoretical.clone(),
            real: result.real.clone(),
        };
        let body = format_cache_body(digest, &entry);
        if self.segment.append(&body).is_ok() {
            self.bytes
                .fetch_add(body.len() as u64 + 19, Ordering::Relaxed);
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.insert(digest, entry);
    }

    /// Entries currently resident in memory.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Verifies a record line's checksum and parses its body.
fn verify_and_parse(line: &str) -> Option<(u64, CachedCell)> {
    let (body, crc) = line.rsplit_once(" #")?;
    if crc.len() != 16 {
        return None;
    }
    let crc = u64::from_str_radix(crc, 16).ok()?;
    if crc != fnv1a(body.as_bytes()) {
        return None;
    }
    parse_cache_body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_cell;
    use crate::spec::{ArrivalSpec, Knobs, WorkloadSpec};
    use mpdp_core::time::Cycles;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            utilizations: vec![0.4],
            proc_counts: vec![2],
            seeds: vec![0, 1],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 1,
                gap: Cycles::from_secs(12),
            },
            master_seed: 42,
        }
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpdp-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_hits_across_reopens_and_counts_stats() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let dir = tempdir("roundtrip");
        let cache = CellCache::open(&dir).expect("opens");
        assert!(cache.is_empty());
        assert!(cache.lookup(&spec, &cells[0]).is_none());
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        cache.insert(&spec, &cells[0], &result);
        assert_eq!(cache.lookup(&spec, &cells[0]).as_ref(), Some(&result));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(stats.bytes > 0);
        drop(cache);

        // Same process reopens its own segment; the entry survives.
        let cache = CellCache::open(&dir).expect("reopens");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&spec, &cells[0]).as_ref(), Some(&result));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hits_survive_knob_renames_but_not_semantic_edits() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let dir = tempdir("keying");
        let cache = CellCache::open(&dir).expect("opens");
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        cache.insert(&spec, &cells[0], &result);

        let mut renamed = tiny_spec();
        renamed.knobs[0].label = "renamed".to_string();
        let hit = cache
            .lookup(&renamed, &renamed.cells()[0])
            .expect("label is not part of the key");
        assert_eq!(hit.knob_label, "renamed", "label comes from the live spec");
        assert_eq!(hit.theoretical, result.theoretical);

        let mut edited = tiny_spec();
        edited.knobs[0].wcet_margin = 1.3;
        assert!(
            cache.lookup(&edited, &edited.cells()[0]).is_none(),
            "semantic knob edits must miss"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_segments_are_shared_and_corrupt_records_are_skipped() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let dir = tempdir("foreign");
        std::fs::create_dir_all(&dir).expect("mkdir");
        // A "foreign" segment left by another worker process.
        let foreign = dir.join("seg-99999999.mpdpc");
        let journal =
            LineJournal::open(&foreign, CACHE_MAGIC, engine_fingerprint()).expect("creates");
        let r0 = run_cell(&spec, &cells[0]).expect("cell 0");
        let r1 = run_cell(&spec, &cells[1]).expect("cell 1");
        for (cell, result) in [(&cells[0], &r0), (&cells[1], &r1)] {
            let entry = CachedCell {
                schedulable: result.schedulable,
                theoretical: result.theoretical.clone(),
                real: result.real.clone(),
            };
            journal
                .append(&format_cache_body(cell_fingerprint(&spec, cell), &entry))
                .expect("appends");
        }
        drop(journal);

        let cache = CellCache::open(&dir).expect("opens");
        assert_eq!(cache.len(), 2, "foreign entries load");
        assert_eq!(cache.lookup(&spec, &cells[1]).as_ref(), Some(&r1));

        // Corrupt the first record's body: the scan of that segment stops
        // there — the second record is lost with it (torn-tail
        // semantics), but opening still succeeds and lookups miss cleanly.
        let mut text = std::fs::read_to_string(&foreign).expect("read");
        let start = text.find('\n').expect("header") + 8;
        let original = text.as_bytes()[start];
        let replacement = if original == b'7' { b'8' } else { b'7' };
        text.replace_range(
            start..start + 1,
            std::str::from_utf8(&[replacement]).unwrap(),
        );
        std::fs::write(&foreign, &text).expect("write");
        let cache = CellCache::open(&dir).expect("opens despite corruption");
        assert!(cache.lookup(&spec, &cells[0]).is_none());
        assert_eq!(cache.stats().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_engine_version_segments_are_skipped_entirely() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let dir = tempdir("version");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let stale = dir.join("seg-11111111.mpdpc");
        let journal =
            LineJournal::open(&stale, CACHE_MAGIC, fnv1a(b"mpdp-cell-engine/0")).expect("creates");
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        let entry = CachedCell {
            schedulable: result.schedulable,
            theoretical: result.theoretical.clone(),
            real: result.real.clone(),
        };
        journal
            .append(&format_cache_body(
                cell_fingerprint(&spec, &cells[0]),
                &entry,
            ))
            .expect("appends");
        drop(journal);
        let cache = CellCache::open(&dir).expect("opens");
        assert!(
            cache.lookup(&spec, &cells[0]).is_none(),
            "old-engine entries must not replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_drops_oldest_segments_to_fit_the_cap() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let dir = tempdir("evict");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let result = run_cell(&spec, &cells[0]).expect("cell runs");
        let entry = CachedCell {
            schedulable: result.schedulable,
            theoretical: result.theoretical.clone(),
            real: result.real.clone(),
        };
        let old = dir.join("seg-1.mpdpc");
        let journal = LineJournal::open(&old, CACHE_MAGIC, engine_fingerprint()).expect("creates");
        journal
            .append(&format_cache_body(
                cell_fingerprint(&spec, &cells[0]),
                &entry,
            ))
            .expect("appends");
        drop(journal);

        // A 1-byte cap cannot fit the old segment: it is evicted whole.
        let cache = CellCache::open_capped(&dir, 1).expect("opens");
        assert!(!old.exists(), "oldest segment evicted");
        assert_eq!(cache.stats().evictions, 1, "its one record counted");
        assert!(cache.lookup(&spec, &cells[0]).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

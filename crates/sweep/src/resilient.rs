//! Self-healing sweep execution: panic isolation, a watchdog, bounded
//! retries, and checkpoint/resume on top of the deterministic engine.
//!
//! [`run_sweep_healing`] covers the same grid as
//! [`run_sweep`](crate::run_sweep) and produces the same
//! [`SweepReport`] — cell results are a pure function of `(spec, cell)`,
//! so surviving a panic, killing a hung cell, retrying, or resuming from a
//! journal cannot change a single exported byte. What changes is the
//! failure envelope:
//!
//! - every cell attempt runs under `catch_unwind`, so one poisoned cell
//!   reports a typed [`CellOutcome::Panicked`] instead of tearing down the
//!   whole fan-out;
//! - an optional watchdog deadline abandons runaway cells
//!   ([`CellOutcome::TimedOut`]);
//! - failed attempts are retried up to a bounded count with capped
//!   exponential backoff, re-running the *same* RNG stream
//!   ([`CellOutcome::Retried`] on eventual success);
//! - completed cells stream into an fsynced [`Journal`], and a later run
//!   against the same spec skips them ([`CellOutcome::Resumed`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mpdp_telemetry::{FleetEvent, FleetEventKind, FleetObserver, NullFleetObserver};

use crate::cache::CellCache;
use crate::engine::{run_cell_cached, CellProfile, CellResult, SweepReport, TableCache};
use crate::error::SweepError;
use crate::journal::Journal;
use crate::spec::{CellSpec, SweepSpec};

/// Emits one executor event iff the observer is enabled: the clock read
/// and the event construction compile out entirely for
/// [`NullFleetObserver`], so the disabled path is exactly the
/// pre-telemetry code.
#[inline]
fn emit<O: FleetObserver>(observer: &O, start: Instant, kind: impl FnOnce() -> FleetEventKind) {
    if O::ENABLED {
        observer.event(&FleetEvent {
            at: start.elapsed(),
            shard: None,
            kind: kind(),
        });
    }
}

/// How one cell of a self-healing run concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// Completed on the first attempt.
    Ok,
    /// Completed after `attempts` failed attempts (panics or timeouts);
    /// the rerun used the same RNG stream, so the result is identical to a
    /// first-try success.
    Retried {
        /// Failed attempts before the success.
        attempts: u32,
    },
    /// Panicked on every attempt; the payload of the last panic.
    Panicked {
        /// Stringified panic payload.
        message: String,
    },
    /// Exceeded the watchdog deadline on every attempt.
    TimedOut,
    /// Skipped: recovered from the checkpoint journal.
    Resumed,
}

/// Configuration of the self-healing executor.
#[derive(Debug, Clone)]
pub struct HealConfig {
    /// Retries after a failed attempt (so `retries + 1` attempts total).
    pub retries: u32,
    /// Watchdog deadline per attempt. `None` disables the watchdog (and
    /// the per-attempt runner thread it requires).
    pub cell_timeout: Option<Duration>,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Ceiling on the backoff sleep.
    pub backoff_cap: Duration,
    /// Checkpoint journal path. Completed cells are appended (fsynced) as
    /// they finish; cells already in the journal are not re-run.
    pub journal: Option<PathBuf>,
    /// Stop after executing this many cells this run (journal hits do not
    /// count). The run then returns [`SweepError::Interrupted`] with the
    /// completed work safely journaled — the test hook for kill-and-resume,
    /// and a practical "run 30 more cells tonight" lever.
    pub max_cells: Option<usize>,
    /// Content-addressed cell-result cache consulted before each pending
    /// cell: a hit skips the runner (and both simulators) but still
    /// journals, emits `CellDone`, and reports progress — downstream, a
    /// cached cell is indistinguishable from an executed one. Cells
    /// recovered from the checkpoint journal never consult the cache.
    pub cache: Option<Arc<CellCache>>,
}

impl Default for HealConfig {
    fn default() -> Self {
        HealConfig {
            retries: 1,
            cell_timeout: None,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            journal: None,
            max_cells: None,
            cache: None,
        }
    }
}

impl HealConfig {
    /// Sets the retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the watchdog deadline.
    pub fn with_cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Sets the checkpoint journal path.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Caps the number of cells executed this run.
    pub fn with_max_cells(mut self, max: usize) -> Self {
        self.max_cells = Some(max);
        self
    }

    /// Sets the content-addressed cell-result cache.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(10);
        self.backoff.saturating_mul(factor).min(self.backoff_cap)
    }
}

/// A completed self-healing sweep.
#[derive(Debug, Clone)]
pub struct HealedSweep {
    /// The report, bit-identical to what [`run_sweep`](crate::run_sweep)
    /// would have produced for the same spec (profiles excepted: resumed
    /// cells carry zero wall time, and self-healed runs do not re-measure
    /// simulated cycles — profiles are run metadata, never exported).
    pub report: SweepReport,
    /// Per-cell outcomes, indexed by cell index.
    pub outcomes: Vec<CellOutcome>,
    /// Cells recovered from the journal instead of executed.
    pub resumed: usize,
}

/// What one guarded attempt produced.
enum Attempt {
    Done(Box<Result<CellResult, SweepError>>),
    Panicked(String),
    TimedOut,
}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt at one cell: `catch_unwind` always; a runner thread plus
/// `recv_timeout` watchdog when a deadline is configured. A timed-out
/// runner thread is abandoned, not killed — safe Rust cannot cancel it —
/// so its eventual result (if any) is discarded with the channel.
fn attempt_cell<F>(
    runner: &Arc<F>,
    spec: &Arc<SweepSpec>,
    cell: CellSpec,
    timeout: Option<Duration>,
) -> Attempt
where
    F: Fn(&SweepSpec, &CellSpec) -> Result<CellResult, SweepError> + Send + Sync + 'static,
{
    match timeout {
        None => match catch_unwind(AssertUnwindSafe(|| runner(spec, &cell))) {
            Ok(result) => Attempt::Done(Box::new(result)),
            Err(payload) => Attempt::Panicked(payload_message(payload)),
        },
        Some(deadline) => {
            let (tx, rx) = mpsc::channel();
            let runner = Arc::clone(runner);
            let spec = Arc::clone(spec);
            std::thread::spawn(move || {
                let outcome = match catch_unwind(AssertUnwindSafe(|| runner(&spec, &cell))) {
                    Ok(result) => Attempt::Done(Box::new(result)),
                    Err(payload) => Attempt::Panicked(payload_message(payload)),
                };
                // The receiver is gone iff the watchdog already fired.
                let _ = tx.send(outcome);
            });
            rx.recv_timeout(deadline).unwrap_or(Attempt::TimedOut)
        }
    }
}

/// What one pending cell produced: the result (or the typed failure after
/// exhausted retries), how it concluded, and its wall time.
type SlotEntry = (Result<CellResult, SweepError>, CellOutcome, Duration);

/// The shared worker-pool core of every self-healing run: claims pending
/// cells from an atomic cursor, runs each under
/// [`attempt_cell`]'s panic/watchdog guard with bounded backoff retries,
/// journals successes immediately (fsynced, so a later kill loses nothing
/// that finished), and reports `progress(cell_index)` after each durable
/// success — the hook shard workers use to bump their heartbeat file.
/// Durable completions, in-process retries, and their wall latencies are
/// also emitted to `observer` as typed cell events.
///
/// Returns one entry per pending cell, `None` for cells never claimed
/// (budget exhausted or a peer aborted the pool).
#[allow(clippy::too_many_arguments)]
fn heal_pending<F, O>(
    spec_arc: &Arc<SweepSpec>,
    pending: &[CellSpec],
    to_run: usize,
    n_workers: usize,
    heal: &HealConfig,
    journal: Option<&Journal>,
    runner: &Arc<F>,
    progress: &(dyn Fn(usize) + Sync),
    observer: &O,
    start: Instant,
) -> Vec<Option<SlotEntry>>
where
    F: Fn(&SweepSpec, &CellSpec) -> Result<CellResult, SweepError> + Send + Sync + 'static,
    O: FleetObserver + Sync,
{
    let slots: Vec<Mutex<Option<SlotEntry>>> = pending.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= to_run {
                    break;
                }
                let cell = pending[i];
                let t0 = Instant::now();
                let mut failed_attempts = 0u32;
                // One cache consult per pending cell, ahead of the attempt
                // loop: a hit replaces the runner's result wholesale and
                // everything downstream (journal append, CellDone,
                // progress) treats it exactly like an executed cell.
                let cached = heal
                    .cache
                    .as_deref()
                    .and_then(|cc| cc.lookup(spec_arc, &cell));
                let from_cache = cached.is_some();
                let entry = if let Some(hit) = cached {
                    (Ok(hit), CellOutcome::Ok, t0.elapsed())
                } else {
                    loop {
                        match attempt_cell(runner, spec_arc, cell, heal.cell_timeout) {
                            Attempt::Done(result) => {
                                let outcome = if failed_attempts == 0 {
                                    CellOutcome::Ok
                                } else {
                                    CellOutcome::Retried {
                                        attempts: failed_attempts,
                                    }
                                };
                                break (*result, outcome, t0.elapsed());
                            }
                            Attempt::Panicked(message) => {
                                if failed_attempts >= heal.retries {
                                    abort.store(true, Ordering::Relaxed);
                                    break (
                                        Err(SweepError::CellPanicked {
                                            cell: cell.index,
                                            message: message.clone(),
                                        }),
                                        CellOutcome::Panicked { message },
                                        t0.elapsed(),
                                    );
                                }
                                let backoff = heal.backoff_for(failed_attempts);
                                emit(observer, start, || FleetEventKind::CellRetried {
                                    cell: cell.index,
                                    backoff,
                                });
                                std::thread::sleep(backoff);
                                failed_attempts += 1;
                            }
                            Attempt::TimedOut => {
                                if failed_attempts >= heal.retries {
                                    abort.store(true, Ordering::Relaxed);
                                    break (
                                        Err(SweepError::CellTimedOut { cell: cell.index }),
                                        CellOutcome::TimedOut,
                                        t0.elapsed(),
                                    );
                                }
                                let backoff = heal.backoff_for(failed_attempts);
                                emit(observer, start, || FleetEventKind::CellRetried {
                                    cell: cell.index,
                                    backoff,
                                });
                                std::thread::sleep(backoff);
                                failed_attempts += 1;
                            }
                        }
                    }
                };
                if !from_cache {
                    if let (Some(cc), Ok(result)) = (heal.cache.as_deref(), &entry.0) {
                        cc.insert(spec_arc, &cell, result);
                    }
                }
                // Journal successes immediately so a later kill loses
                // nothing that finished.
                if let (Some(j), Ok(result)) = (&journal, &entry.0) {
                    if let Err(e) = j.append(spec_arc.cell_stream(&cell), result) {
                        abort.store(true, Ordering::Relaxed);
                        let mut slot = slots[i].lock().unwrap_or_else(|p| p.into_inner());
                        *slot = Some((Err(e), entry.1, entry.2));
                        continue;
                    }
                }
                if entry.0.is_ok() {
                    // Telemetry before the progress hook: the event marks
                    // the durable completion, and the hook may block (the
                    // shard worker's throttle sleeps in it) — a kill
                    // landing there must not swallow the counter.
                    emit(observer, start, || FleetEventKind::CellDone {
                        cell: cell.index,
                        wall: entry.2,
                        attempts: failed_attempts,
                    });
                    progress(cell.index);
                }
                let mut slot = slots[i].lock().unwrap_or_else(|p| p.into_inner());
                *slot = Some(entry);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap_or_else(|p| p.into_inner()))
        .collect()
}

/// A completed (or resumed-to-completion) shard run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRun {
    /// Cells executed this run (journal hits excluded).
    pub executed: usize,
    /// Cells recovered from the shard journal instead of executed.
    pub resumed: usize,
    /// Per-cell outcomes, indexed by position within the shard's range.
    pub outcomes: Vec<CellOutcome>,
}

/// Runs only the cells in `range` — one shard of the grid — with the full
/// self-healing envelope (panic isolation, watchdog, retries,
/// checkpoint/resume via [`HealConfig::journal`]). `progress` is invoked
/// with the cell index after each cell is durably completed (journaled
/// when a journal is configured); shard worker processes use it to bump
/// their heartbeat file so the supervisor can tell a slow shard from a
/// hung one.
///
/// Results are **not** returned — a shard's output is its journal, which
/// [`merge_journal_files`](crate::merge_journal_files) recombines
/// byte-exactly. The returned [`ShardRun`] is bookkeeping.
///
/// # Errors
///
/// Everything [`run_sweep_healing`] can return, plus
/// [`SweepError::ShardRange`] when `range` does not fit the grid.
/// [`SweepError::Interrupted`] counts `completed`/`total` within the
/// shard, not the grid.
pub fn run_shard_healing<P>(
    spec: &SweepSpec,
    range: std::ops::Range<usize>,
    workers: usize,
    heal: &HealConfig,
    progress: P,
) -> Result<ShardRun, SweepError>
where
    P: Fn(usize) + Sync,
{
    run_shard_healing_observed(spec, range, workers, heal, progress, &NullFleetObserver)
}

/// [`run_shard_healing`] with a [`FleetObserver`] receiving typed cell
/// events (durable completions with wall latency, in-process retries,
/// journal resumes). With [`NullFleetObserver`] this monomorphizes to
/// exactly [`run_shard_healing`].
pub fn run_shard_healing_observed<P, O>(
    spec: &SweepSpec,
    range: std::ops::Range<usize>,
    workers: usize,
    heal: &HealConfig,
    progress: P,
    observer: &O,
) -> Result<ShardRun, SweepError>
where
    P: Fn(usize) + Sync,
    O: FleetObserver + Sync,
{
    let start = Instant::now();
    spec.validate()?;
    let cells = spec.cells();
    if range.start > range.end || range.end > cells.len() {
        return Err(SweepError::ShardRange {
            start: range.start,
            end: range.end,
            total: cells.len(),
        });
    }
    let journal = match &heal.journal {
        Some(path) => Some(Journal::open(path, spec)?),
        None => None,
    };
    let recovered = journal
        .as_ref()
        .map(|j| j.recovered().clone())
        .unwrap_or_default();
    let shard_cells = &cells[range.clone()];
    let pending: Vec<CellSpec> = shard_cells
        .iter()
        .filter(|c| !recovered.contains_key(&c.index))
        .copied()
        .collect();
    let budget = heal.max_cells.unwrap_or(usize::MAX);
    let to_run = pending.len().min(budget);

    let spec_arc = Arc::new(spec.clone());
    let cache = Arc::new(TableCache::default());
    let runner =
        Arc::new(move |spec: &SweepSpec, cell: &CellSpec| run_cell_cached(spec, cell, &cache));
    if O::ENABLED {
        for cell in shard_cells
            .iter()
            .filter(|c| recovered.contains_key(&c.index))
        {
            emit(observer, start, || FleetEventKind::CellResumed {
                cell: cell.index,
            });
        }
    }
    let n_workers = workers.max(1).min(to_run.max(1));
    let entries = heal_pending(
        &spec_arc,
        &pending,
        to_run,
        n_workers,
        heal,
        journal.as_ref(),
        &runner,
        &progress,
        observer,
        start,
    );

    let mut outcomes: Vec<Option<CellOutcome>> = vec![None; shard_cells.len()];
    let mut resumed = 0usize;
    for (pos, cell) in shard_cells.iter().enumerate() {
        if recovered.contains_key(&cell.index) {
            outcomes[pos] = Some(CellOutcome::Resumed);
            resumed += 1;
        }
    }
    let mut executed = 0usize;
    let mut first_error: Option<(usize, SweepError)> = None;
    for (entry, cell) in entries.into_iter().zip(&pending) {
        match entry {
            Some((Ok(_), outcome, _)) => {
                executed += 1;
                outcomes[cell.index - range.start] = Some(outcome);
            }
            Some((Err(e), _, _)) if first_error.as_ref().is_none_or(|(i, _)| cell.index < *i) => {
                first_error = Some((cell.index, e));
            }
            Some((Err(_), _, _)) => {}
            None => {} // never claimed (abort or budget)
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let completed = resumed + executed;
    if completed < shard_cells.len() {
        return Err(SweepError::Interrupted {
            completed,
            total: shard_cells.len(),
        });
    }
    Ok(ShardRun {
        executed,
        resumed,
        outcomes: outcomes.into_iter().flatten().collect(),
    })
}

/// Runs every cell of `spec` with panic isolation, watchdog, retries, and
/// checkpoint/resume per `heal`. See the module docs.
///
/// # Errors
///
/// Everything [`run_sweep`](crate::run_sweep) can return, plus:
///
/// - [`SweepError::CellPanicked`] / [`SweepError::CellTimedOut`] when a
///   cell fails every attempt (the lowest-indexed such cell is reported;
///   cells completed before the stop are journaled if a journal is
///   configured);
/// - [`SweepError::Interrupted`] when [`HealConfig::max_cells`] stops the
///   run before the grid is covered;
/// - [`SweepError::Journal`] when the journal cannot be opened or written.
pub fn run_sweep_healing(
    spec: &SweepSpec,
    workers: usize,
    heal: &HealConfig,
) -> Result<HealedSweep, SweepError> {
    run_sweep_healing_observed(spec, workers, heal, &NullFleetObserver)
}

/// [`run_sweep_healing`] with a [`FleetObserver`] receiving typed cell
/// events (durable completions with wall latency, in-process retries,
/// journal resumes). With [`NullFleetObserver`] this monomorphizes to
/// exactly [`run_sweep_healing`].
pub fn run_sweep_healing_observed<O>(
    spec: &SweepSpec,
    workers: usize,
    heal: &HealConfig,
    observer: &O,
) -> Result<HealedSweep, SweepError>
where
    O: FleetObserver + Sync,
{
    // One analysis memo for the whole healing run: retries and resumed
    // sweeps skip redundant `prepare()` calls exactly like the plain
    // fan-out. Results are unchanged — the cache is keyed on everything
    // the analysis reads (see `TableCache`).
    let cache = Arc::new(TableCache::default());
    run_sweep_healing_with_observed(
        spec,
        workers,
        heal,
        move |spec, cell| run_cell_cached(spec, cell, &cache),
        observer,
    )
}

/// [`run_sweep_healing`] with an injectable cell runner — the seam the
/// panic/timeout/retry tests use to simulate failing cells without
/// corrupting a real simulator.
pub fn run_sweep_healing_with<F>(
    spec: &SweepSpec,
    workers: usize,
    heal: &HealConfig,
    runner: F,
) -> Result<HealedSweep, SweepError>
where
    F: Fn(&SweepSpec, &CellSpec) -> Result<CellResult, SweepError> + Send + Sync + 'static,
{
    run_sweep_healing_with_observed(spec, workers, heal, runner, &NullFleetObserver)
}

/// The fully general self-healing run: injectable cell runner *and*
/// fleet observer. Everything else delegates here.
pub fn run_sweep_healing_with_observed<F, O>(
    spec: &SweepSpec,
    workers: usize,
    heal: &HealConfig,
    runner: F,
    observer: &O,
) -> Result<HealedSweep, SweepError>
where
    F: Fn(&SweepSpec, &CellSpec) -> Result<CellResult, SweepError> + Send + Sync + 'static,
    O: FleetObserver + Sync,
{
    spec.validate()?;
    let start = Instant::now();
    let journal = match &heal.journal {
        Some(path) => Some(Journal::open(path, spec)?),
        None => None,
    };
    let cells = spec.cells();
    let total = cells.len();
    let recovered = journal
        .as_ref()
        .map(|j| j.recovered().clone())
        .unwrap_or_default();

    // Only cells not already journaled are (re-)executed.
    let pending: Vec<CellSpec> = cells
        .iter()
        .filter(|c| !recovered.contains_key(&c.index))
        .copied()
        .collect();
    let budget = heal.max_cells.unwrap_or(usize::MAX);
    let to_run = pending.len().min(budget);

    if O::ENABLED {
        for cell in cells.iter().filter(|c| recovered.contains_key(&c.index)) {
            emit(observer, start, || FleetEventKind::CellResumed {
                cell: cell.index,
            });
        }
    }
    let spec_arc = Arc::new(spec.clone());
    let runner = Arc::new(runner);
    let n_workers = workers.max(1).min(to_run.max(1));
    let entries = heal_pending(
        &spec_arc,
        &pending,
        to_run,
        n_workers,
        heal,
        journal.as_ref(),
        &runner,
        &|_| {},
        observer,
        start,
    );

    // Collect: journal hits first, then executed slots, lowest failing
    // cell index wins so the reported error is worker-count independent.
    let mut results: Vec<Option<(CellResult, CellOutcome, Duration)>> = Vec::new();
    results.resize_with(total, || None);
    for (index, result) in &recovered {
        results[*index] = Some((result.clone(), CellOutcome::Resumed, Duration::ZERO));
    }
    let mut executed = 0usize;
    let mut first_error: Option<(usize, SweepError)> = None;
    for (entry, cell) in entries.into_iter().zip(&pending) {
        match entry {
            Some((Ok(result), outcome, wall)) => {
                executed += 1;
                results[cell.index] = Some((result, outcome, wall));
            }
            Some((Err(e), _, _)) if first_error.as_ref().is_none_or(|(i, _)| cell.index < *i) => {
                first_error = Some((cell.index, e));
            }
            Some((Err(_), _, _)) => {}
            None => {} // never claimed (abort or budget)
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let completed = recovered.len() + executed;
    if completed < total {
        return Err(SweepError::Interrupted { completed, total });
    }

    let mut out_cells = Vec::with_capacity(total);
    let mut outcomes = Vec::with_capacity(total);
    let mut profiles = Vec::with_capacity(total);
    for (index, entry) in results.into_iter().enumerate() {
        let (result, outcome, wall) = entry.ok_or(SweepError::MissingCell(index))?;
        let completions = (result.theoretical.aperiodic.len()
            + result.theoretical.periodic.len()
            + result.real.aperiodic.len()
            + result.real.periodic.len()) as u64;
        profiles.push(CellProfile {
            index,
            wall,
            sim_cycles: 0,
            completions,
        });
        outcomes.push(outcome);
        out_cells.push(result);
    }
    let resumed = recovered.len();
    Ok(HealedSweep {
        report: SweepReport {
            cells: out_cells,
            faulted: spec.is_faulted(),
            workers: n_workers,
            wall: start.elapsed(),
            profiles,
        },
        outcomes,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_cell;
    use crate::spec::{ArrivalSpec, Knobs, WorkloadSpec};
    use mpdp_core::time::Cycles;
    use std::collections::HashMap;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            utilizations: vec![0.4],
            proc_counts: vec![2],
            seeds: vec![0, 1, 2],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 1,
                gap: Cycles::from_secs(12),
            },
            master_seed: 42,
        }
    }

    fn quick_heal() -> HealConfig {
        HealConfig {
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..HealConfig::default()
        }
    }

    #[test]
    fn healing_run_matches_the_plain_engine() {
        let spec = tiny_spec();
        let plain = crate::run_sweep(&spec, 1).expect("plain run");
        let healed = run_sweep_healing(&spec, 2, &quick_heal()).expect("healed run");
        assert_eq!(healed.report.cells, plain.cells);
        assert_eq!(healed.resumed, 0);
        assert!(healed.outcomes.iter().all(|o| *o == CellOutcome::Ok));
    }

    #[test]
    fn panicking_cell_is_retried_with_the_same_result() {
        let spec = tiny_spec();
        let plain = crate::run_sweep(&spec, 1).expect("plain run");
        // Cell 1 panics on its first attempt only.
        let tried: Arc<Mutex<HashMap<usize, u32>>> = Arc::default();
        let tried_in = Arc::clone(&tried);
        let healed = run_sweep_healing_with(&spec, 1, &quick_heal(), move |spec, cell| {
            // The injected panic below poisons this mutex; recover it —
            // the map itself is never left mid-update.
            let mut tried = tried_in.lock().unwrap_or_else(|p| p.into_inner());
            let n = tried.entry(cell.index).or_insert(0);
            *n += 1;
            let first_try = cell.index == 1 && *n == 1;
            drop(tried);
            if first_try {
                panic!("injected test panic");
            }
            run_cell(spec, cell)
        })
        .expect("heals");
        assert_eq!(healed.report.cells, plain.cells);
        assert_eq!(
            healed.outcomes[1],
            CellOutcome::Retried { attempts: 1 },
            "{:?}",
            healed.outcomes
        );
        assert_eq!(healed.outcomes[0], CellOutcome::Ok);
    }

    #[test]
    fn exhausted_retries_surface_a_typed_error() {
        let spec = tiny_spec();
        let heal = quick_heal().with_retries(2);
        let err = run_sweep_healing_with(&spec, 2, &heal, |spec, cell| {
            if cell.index == 2 {
                panic!("always broken");
            }
            run_cell(spec, cell)
        })
        .expect_err("must fail");
        assert_eq!(
            err,
            SweepError::CellPanicked {
                cell: 2,
                message: "always broken".to_string(),
            }
        );
    }

    #[test]
    fn watchdog_abandons_a_hung_cell() {
        let spec = tiny_spec();
        let heal = HealConfig {
            retries: 0,
            cell_timeout: Some(Duration::from_millis(20)),
            ..quick_heal()
        };
        let err = run_sweep_healing_with(&spec, 1, &heal, |spec, cell| {
            if cell.index == 0 {
                std::thread::sleep(Duration::from_secs(5));
            }
            run_cell(spec, cell)
        })
        .expect_err("must time out");
        assert_eq!(err, SweepError::CellTimedOut { cell: 0 });
    }

    #[test]
    fn shard_run_journals_its_range_and_reports_progress() {
        let spec = tiny_spec();
        let path = std::env::temp_dir().join(format!(
            "mpdp-resilient-{}-shard.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // Run cells 1..3 as a shard; progress must fire once per cell.
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let heal = quick_heal().with_journal(&path);
        let run = run_shard_healing(&spec, 1..3, 1, &heal, |index| {
            seen.lock().expect("progress lock").push(index);
        })
        .expect("shard completes");
        assert_eq!((run.executed, run.resumed), (2, 0));
        assert_eq!(run.outcomes, vec![CellOutcome::Ok, CellOutcome::Ok]);
        let mut progressed = seen.into_inner().expect("progress lock");
        progressed.sort_unstable();
        assert_eq!(progressed, vec![1, 2]);

        // Re-running the same shard resumes everything from the journal.
        let rerun = run_shard_healing(&spec, 1..3, 1, &heal, |_| {}).expect("resumes");
        assert_eq!((rerun.executed, rerun.resumed), (0, 2));
        assert!(rerun.outcomes.iter().all(|o| *o == CellOutcome::Resumed));

        // The journaled records are the engine's, bit for bit.
        let plain = crate::run_sweep(&spec, 1).expect("plain run");
        let recovered = Journal::open(&path, &spec)
            .expect("reopens")
            .recovered()
            .clone();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[&1], plain.cells[1]);
        assert_eq!(recovered[&2], plain.cells[2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn healing_runs_share_the_cell_cache_across_fresh_journals() {
        let spec = tiny_spec();
        let dir = std::env::temp_dir().join(format!("mpdp-resilient-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plain = crate::run_sweep(&spec, 1).expect("plain run");
        let cache = Arc::new(CellCache::open(&dir).expect("cache opens"));

        let cold = run_sweep_healing(&spec, 2, &quick_heal().with_cache(Arc::clone(&cache)))
            .expect("cold run");
        assert_eq!(cold.report.cells, plain.cells);
        assert_eq!(cache.stats().hits, 0);

        let warm = run_sweep_healing(&spec, 2, &quick_heal().with_cache(Arc::clone(&cache)))
            .expect("warm run");
        assert_eq!(
            warm.report.cells, plain.cells,
            "hits rebuild identical cells"
        );
        assert_eq!(cache.stats().hits as usize, plain.cells.len());
        assert_eq!(warm.resumed, 0, "cache hits are not journal resumes");
        assert!(warm.outcomes.iter().all(|o| *o == CellOutcome::Ok));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_run_rejects_a_range_outside_the_grid() {
        let spec = tiny_spec();
        let err = run_shard_healing(&spec, 1..9, 1, &quick_heal(), |_| {})
            .expect_err("range exceeds the 3-cell grid");
        assert_eq!(
            err,
            SweepError::ShardRange {
                start: 1,
                end: 9,
                total: 3
            }
        );
    }

    #[test]
    fn max_cells_interrupts_and_journal_resumes_byte_identically() {
        let spec = tiny_spec();
        let path = std::env::temp_dir().join(format!(
            "mpdp-resilient-{}-resume.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let plain = crate::run_sweep(&spec, 1).expect("plain run");

        let partial = quick_heal().with_journal(&path).with_max_cells(1);
        match run_sweep_healing(&spec, 1, &partial) {
            Err(SweepError::Interrupted { completed, total }) => {
                assert_eq!((completed, total), (1, 3));
            }
            other => panic!("expected interruption, got {other:?}"),
        }

        let resumed = run_sweep_healing(&spec, 2, &quick_heal().with_journal(&path))
            .expect("resumes to completion");
        assert_eq!(resumed.resumed, 1);
        assert_eq!(resumed.outcomes[0], CellOutcome::Resumed);
        assert_eq!(resumed.report.cells, plain.cells);
        let _ = std::fs::remove_file(&path);
    }
}

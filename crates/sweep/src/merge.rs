//! Byte-exact merge of shard journals into one [`SweepReport`].
//!
//! A sharded sweep writes one checkpoint [`Journal`](crate::Journal) per
//! worker process, each holding a disjoint subset of the grid's cells.
//! Because every cell result is a pure function of `(spec, cell index)`
//! and the exports fold cells in index order, recombining the journals
//! reproduces **the same bytes** a single-process
//! [`run_sweep`](crate::run_sweep) exports — at any shard count, after any
//! crash/retry history.
//!
//! The merge refuses to combine inputs that do not describe one and the
//! same sweep: every journal's header fingerprint must match the **full**
//! `SweepSpec` (not just the cell coordinates — knobs, fault plans, seeds,
//! everything that shapes a cell's inputs is covered by the fingerprint),
//! no cell may appear twice (within a journal or across journals), and the
//! union of the journals must cover the whole grid. Each rejection is a
//! typed [`MergeError`] — never a silent partial combine.
//!
//! Torn tails follow the journal's recovery semantics: a truncated or
//! corrupt final record stops the read there, and the lost cell then
//! surfaces as [`MergeError::MissingCells`] instead of corrupt output.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::engine::{CellResult, SweepReport};
use crate::fingerprint::spec_fingerprint;
use crate::journal::{parse_header, parse_record_with};
use crate::spec::SweepSpec;

/// Why shard journals could not be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The spec itself failed validation (propagated before any file is
    /// read).
    Spec(crate::error::SweepError),
    /// No journal paths were given.
    NoInputs,
    /// A journal file could not be read.
    Io {
        /// Path of the unreadable journal.
        path: String,
        /// The I/O diagnosis.
        detail: String,
    },
    /// A file's first line is not a journal header (wrong file, or a crash
    /// tore the header before the first fsync).
    NotAJournal {
        /// Path of the rejected file.
        path: String,
    },
    /// A journal was written for a different sweep: its header fingerprint
    /// does not match the full spec's.
    WrongSpec {
        /// Path of the mismatched journal.
        path: String,
        /// Fingerprint of the spec being merged.
        expected: u64,
        /// Fingerprint the journal header carries.
        found: u64,
    },
    /// One journal contains the same cell twice (shard executors never
    /// append a recovered cell again, so this indicates a spliced or
    /// hand-edited file).
    DuplicateCell {
        /// Path of the offending journal.
        path: String,
        /// The duplicated cell index.
        cell: usize,
    },
    /// Two journals both claim the same cell — the shard plan was not
    /// disjoint.
    OverlappingShards {
        /// The doubly-claimed cell index.
        cell: usize,
        /// Journal that claimed the cell first.
        first: String,
        /// Journal that claimed it again.
        second: String,
    },
    /// The union of the journals does not cover the grid.
    MissingCells {
        /// Number of uncovered cells.
        missing: usize,
        /// Lowest uncovered cell index.
        first: usize,
        /// Total cells in the grid.
        total: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Spec(source) => write!(f, "invalid sweep spec: {source}"),
            MergeError::NoInputs => write!(f, "no shard journals to merge"),
            MergeError::Io { path, detail } => write!(f, "shard journal {path}: {detail}"),
            MergeError::NotAJournal { path } => {
                write!(f, "{path} is not a sweep journal (no valid header line)")
            }
            MergeError::WrongSpec {
                path,
                expected,
                found,
            } => write!(
                f,
                "{path} was written for a different sweep \
                 (spec fingerprint {found:016x}, expected {expected:016x})"
            ),
            MergeError::DuplicateCell { path, cell } => {
                write!(f, "{path} contains cell {cell} more than once")
            }
            MergeError::OverlappingShards {
                cell,
                first,
                second,
            } => write!(
                f,
                "shards overlap: cell {cell} appears in both {first} and {second}"
            ),
            MergeError::MissingCells {
                missing,
                first,
                total,
            } => write!(
                f,
                "merged journals cover {} of {total} cells \
                 ({missing} missing, first missing cell {first})",
                total - missing
            ),
        }
    }
}

impl Error for MergeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MergeError::Spec(source) => Some(source),
            _ => None,
        }
    }
}

/// Reads one shard journal for `spec`, returning its records in file
/// order. Tolerates a torn tail (the read stops at the first malformed
/// record, exactly like [`Journal::open`](crate::Journal::open) recovery);
/// rejects a wrong-spec header or an in-file duplicate cell.
///
/// # Errors
///
/// [`MergeError::Io`], [`MergeError::NotAJournal`],
/// [`MergeError::WrongSpec`], or [`MergeError::DuplicateCell`].
pub fn read_shard_journal(
    path: &Path,
    spec: &SweepSpec,
) -> Result<Vec<(usize, CellResult)>, MergeError> {
    let name = path.display().to_string();
    let contents = std::fs::read_to_string(path).map_err(|e| MergeError::Io {
        path: name.clone(),
        detail: e.to_string(),
    })?;
    let mut lines = contents.split_inclusive('\n');
    let head = lines.next().unwrap_or("");
    let found = match parse_header(head.trim_end()) {
        // A torn header (no newline) is not a readable journal either.
        Some(fp) if head.ends_with('\n') => fp,
        _ => return Err(MergeError::NotAJournal { path: name }),
    };
    let expected = spec_fingerprint(spec);
    if found != expected {
        return Err(MergeError::WrongSpec {
            path: name,
            expected,
            found,
        });
    }
    let cells = spec.cells();
    let mut seen = vec![false; cells.len()];
    let mut out = Vec::new();
    for line in lines {
        if !line.ends_with('\n') {
            break; // torn tail: the lost cell surfaces as MissingCells
        }
        let Some((index, result)) = parse_record_with(line.trim_end(), spec, &cells) else {
            break; // corrupt record: stop, as journal recovery would
        };
        if seen[index] {
            return Err(MergeError::DuplicateCell {
                path: name,
                cell: index,
            });
        }
        seen[index] = true;
        out.push((index, result));
    }
    Ok(out)
}

/// Merges the shard journals at `paths` into one [`SweepReport`] whose
/// exports ([`cells_csv`](crate::cells_csv), [`summary_csv`](crate::summary_csv),
/// [`report_json`](crate::report_json)) are byte-identical to a
/// single-process [`run_sweep`](crate::run_sweep) of the same spec.
///
/// Input order is irrelevant: cells are reassembled by index. Run
/// metadata (`workers`, `wall`, `profiles`) is not recoverable from
/// journals and is set to the journal count / zero / empty — none of it
/// is ever exported.
///
/// # Errors
///
/// Any [`MergeError`]; see the module docs for the invariants enforced.
pub fn merge_journal_files(spec: &SweepSpec, paths: &[PathBuf]) -> Result<SweepReport, MergeError> {
    spec.validate().map_err(MergeError::Spec)?;
    if paths.is_empty() {
        return Err(MergeError::NoInputs);
    }
    let total = spec.cell_count();
    let mut slots: Vec<Option<CellResult>> = Vec::new();
    slots.resize_with(total, || None);
    let mut owner: Vec<Option<usize>> = vec![None; total];
    for (p, path) in paths.iter().enumerate() {
        for (index, result) in read_shard_journal(path, spec)? {
            if let Some(prior) = owner[index] {
                return Err(MergeError::OverlappingShards {
                    cell: index,
                    first: paths[prior].display().to_string(),
                    second: path.display().to_string(),
                });
            }
            owner[index] = Some(p);
            slots[index] = Some(result);
        }
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        let first = slots.iter().position(Option::is_none).unwrap_or(0);
        return Err(MergeError::MissingCells {
            missing,
            first,
            total,
        });
    }
    Ok(SweepReport {
        cells: slots
            .into_iter()
            .map(|s| s.expect("checked above"))
            .collect(),
        faulted: spec.is_faulted(),
        workers: paths.len(),
        wall: Duration::ZERO,
        profiles: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_cell;
    use crate::journal::Journal;
    use crate::report::{cells_csv, report_json, summary_csv};
    use crate::shard::plan_shards;
    use crate::spec::{ArrivalSpec, Knobs, WorkloadSpec};
    use mpdp_core::time::Cycles;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            utilizations: vec![0.4],
            proc_counts: vec![2],
            seeds: vec![0, 1, 2, 3],
            knobs: vec![Knobs::default()],
            workload: WorkloadSpec::Automotive,
            arrivals: ArrivalSpec::Bursts {
                activations: 1,
                gap: Cycles::from_secs(12),
            },
            master_seed: 42,
        }
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mpdp-merge-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// Writes the cells of `range` into a journal at `path`.
    fn write_shard(path: &Path, spec: &SweepSpec, range: std::ops::Range<usize>) {
        let cells = spec.cells();
        let journal = Journal::open(path, spec).expect("creates journal");
        for index in range {
            let result = run_cell(spec, &cells[index]).expect("cell runs");
            journal
                .append(spec.cell_stream(&cells[index]), &result)
                .expect("appends");
        }
    }

    #[test]
    fn sharded_merge_is_byte_identical_to_a_single_process_run() {
        let spec = tiny_spec();
        let dir = tempdir("roundtrip");
        let golden = crate::run_sweep(&spec, 1).expect("golden run");
        for shards in [1usize, 2, 3, 4] {
            let paths: Vec<PathBuf> = plan_shards(spec.cell_count(), shards)
                .iter()
                .map(|plan| {
                    let path = dir.join(format!("s{shards}-{}.mpdpj", plan.index));
                    write_shard(&path, &spec, plan.range());
                    path
                })
                .collect();
            // Merge in reverse order: input order must not matter.
            let reversed: Vec<PathBuf> = paths.iter().rev().cloned().collect();
            let merged = merge_journal_files(&spec, &reversed).expect("merges");
            assert_eq!(cells_csv(&golden), cells_csv(&merged), "{shards} shards");
            assert_eq!(summary_csv(&golden), summary_csv(&merged));
            assert_eq!(report_json(&golden), report_json(&merged));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_a_wrong_spec_journal() {
        let spec = tiny_spec();
        let dir = tempdir("wrong-spec");
        let path = dir.join("shard.mpdpj");
        write_shard(&path, &spec, 0..spec.cell_count());
        // Any spec edit — here the master seed — changes the fingerprint.
        let mut other = tiny_spec();
        other.master_seed = 7;
        match merge_journal_files(&other, std::slice::from_ref(&path)) {
            Err(MergeError::WrongSpec {
                expected, found, ..
            }) => {
                assert_eq!(expected, spec_fingerprint(&other));
                assert_eq!(found, spec_fingerprint(&spec));
            }
            other => panic!("expected WrongSpec, got {other:?}"),
        }
        // A knob-only edit (same cell coordinates!) is also a different
        // sweep: the fingerprint covers the full spec.
        let mut reknobbed = tiny_spec();
        reknobbed.knobs = vec![Knobs::named("paper").with_wcet_margin(1.3)];
        assert!(matches!(
            merge_journal_files(&reknobbed, &[path]),
            Err(MergeError::WrongSpec { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_overlapping_shards() {
        let spec = tiny_spec();
        let dir = tempdir("overlap");
        let a = dir.join("a.mpdpj");
        let b = dir.join("b.mpdpj");
        write_shard(&a, &spec, 0..3);
        write_shard(&b, &spec, 2..4); // cell 2 claimed twice
        match merge_journal_files(&spec, &[a.clone(), b.clone()]) {
            Err(MergeError::OverlappingShards {
                cell,
                first,
                second,
            }) => {
                assert_eq!(cell, 2);
                assert_eq!(first, a.display().to_string());
                assert_eq!(second, b.display().to_string());
            }
            other => panic!("expected OverlappingShards, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_missing_cells() {
        let spec = tiny_spec();
        let dir = tempdir("missing");
        let a = dir.join("a.mpdpj");
        write_shard(&a, &spec, 0..2);
        let b = dir.join("b.mpdpj");
        write_shard(&b, &spec, 3..4); // cell 2 never journaled
        match merge_journal_files(&spec, &[a, b]) {
            Err(MergeError::MissingCells {
                missing,
                first,
                total,
            }) => {
                assert_eq!((missing, first, total), (1, 2, 4));
            }
            other => panic!("expected MissingCells, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_a_duplicate_cell_within_one_journal() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let dir = tempdir("duplicate");
        let path = dir.join("dup.mpdpj");
        let journal = Journal::open(&path, &spec).expect("creates");
        let result = run_cell(&spec, &cells[1]).expect("cell runs");
        journal
            .append(spec.cell_stream(&cells[1]), &result)
            .expect("appends");
        journal
            .append(spec.cell_stream(&cells[1]), &result)
            .expect("appends again");
        drop(journal);
        match merge_journal_files(&spec, &[path]) {
            Err(MergeError::DuplicateCell { cell, .. }) => assert_eq!(cell, 1),
            other => panic!("expected DuplicateCell, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_rejects_non_journals_missing_files_and_empty_input() {
        let spec = tiny_spec();
        let dir = tempdir("notajournal");
        assert!(matches!(
            merge_journal_files(&spec, &[]),
            Err(MergeError::NoInputs)
        ));
        let absent = dir.join("absent.mpdpj");
        assert!(matches!(
            merge_journal_files(&spec, &[absent]),
            Err(MergeError::Io { .. })
        ));
        let garbage = dir.join("garbage.mpdpj");
        std::fs::write(&garbage, "not a journal\n").expect("write");
        assert!(matches!(
            merge_journal_files(&spec, &[garbage]),
            Err(MergeError::NotAJournal { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_tolerates_a_torn_tail_as_missing_cells() {
        let spec = tiny_spec();
        let dir = tempdir("torn");
        let path = dir.join("torn.mpdpj");
        write_shard(&path, &spec, 0..spec.cell_count());
        // Tear the last record mid-write: the merge must not invent data —
        // the lost cell is reported missing, the intact prefix is usable.
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 9]).expect("tear");
        match merge_journal_files(&spec, &[path]) {
            Err(MergeError::MissingCells { missing, first, .. }) => {
                assert_eq!((missing, first), (1, 3));
            }
            other => panic!("expected MissingCells, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_propagates_spec_validation() {
        let mut spec = tiny_spec();
        spec.seeds.clear();
        assert!(matches!(
            merge_journal_files(&spec, &[PathBuf::from("x")]),
            Err(MergeError::Spec(_))
        ));
    }
}

//! Bounded exhaustive DFS over a model's nondeterminism space.
//!
//! The decision tree assigns each arrival slot one of: *silent*, or
//! *(aperiodic task, ISR delay)*. A leaf's resolved arrivals are grouped
//! by instant and every permutation of each same-instant group is
//! enumerated — the tie-order dimension. Each fully-ordered concrete
//! schedule is canonicalized to a byte key and deduplicated (different
//! decision vectors can resolve to the same schedule, e.g. slot 0 with
//! delay 2 versus slot 2 with delay 0), so "exhaustive" means *every
//! distinct observable schedule*, each executed exactly once.
//!
//! The DFS visit order is permuted by a seeded LCG. Exploration results
//! must not depend on that order — the order-independence property test in
//! `tests/explore.rs` pins it — which guards against the classic explorer
//! bug of a dedup key that accidentally encodes visit history.

use std::collections::BTreeSet;
use std::fmt;

use mpdp_core::error::TaskSetError;
use mpdp_core::time::Cycles;
use mpdp_monitor::Mutation;

use crate::model::ExploreModel;
use crate::run::{run_path, PathOutcome};

/// Exploration limits and visit-order seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum number of *distinct* schedules to execute. Exploration
    /// stops (reporting `budget_exhausted`) rather than run past this.
    pub path_budget: u64,
    /// Seed for the LCG that permutes DFS choice order at every node.
    pub visit_seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            path_budget: 4096,
            visit_seed: 0,
        }
    }
}

/// A minimized failing schedule, printable as a replayable spec.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Model the schedule runs on.
    pub model: &'static str,
    /// Mutation under which it fails (`None` = pristine scheduler bug!).
    pub mutation: Option<Mutation>,
    /// The concrete arrival schedule `(instant, aperiodic index)`.
    pub arrivals: Vec<(Cycles, usize)>,
    /// One-line diagnosis from the first failing layer.
    pub reason: String,
    /// Arrivals in the original (pre-minimization) failing schedule.
    pub original_len: usize,
}

impl Counterexample {
    /// The `--replay` argument that reproduces this schedule through
    /// `exp_mutation_campaign`.
    pub fn replay_spec(&self) -> String {
        // `none` keeps the flag's value non-empty when the schedule
        // minimized all the way down to the periodic skeleton.
        let arrivals = if self.arrivals.is_empty() {
            "none".to_string()
        } else {
            self.arrivals
                .iter()
                .map(|(at, task)| format!("{}:{}", at.as_u64(), task))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mutant = self
            .mutation
            .map(|m| format!(" --mutant {}", m.name()))
            .unwrap_or_default();
        format!("--replay {} --arrivals {arrivals}{mutant}", self.model)
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample on model `{}` ({}; minimized {} -> {} arrivals):",
            self.model,
            self.mutation.map(|m| m.name()).unwrap_or("pristine"),
            self.original_len,
            self.arrivals.len()
        )?;
        for (at, task) in &self.arrivals {
            writeln!(f, "  aperiodic[{task}] arrives at cycle {at}")?;
        }
        writeln!(f, "  reason: {}", self.reason)?;
        write!(f, "  replay: exp_mutation_campaign {}", self.replay_spec())
    }
}

/// What an exploration did and found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Decision-tree leaves visited (before dedup, including every tie
    /// permutation).
    pub leaves_visited: u64,
    /// Distinct schedules executed.
    pub paths_run: u64,
    /// Leaves skipped because their schedule was already executed.
    pub paths_deduped: u64,
    /// True if the path budget stopped exploration before closure.
    pub budget_exhausted: bool,
    /// First failing schedule, minimized; `None` when every explored path
    /// was clean.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// Whether every explored path satisfied every layer.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Multiplicative LCG (Knuth's MMIX constants) — deterministic visit-order
/// permutation without touching any global RNG state.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Fisher–Yates permutation of `0..n`.
    fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        idx
    }
}

/// One slot decision: silent, or (aperiodic task index, delay).
type Choice = Option<(usize, u64)>;

struct Dfs<'a> {
    model: &'a ExploreModel,
    mutation: Option<Mutation>,
    config: ExploreConfig,
    choices: Vec<Choice>,
    seen: BTreeSet<Vec<u8>>,
    report: ExploreReport,
    rng: Lcg,
    error: Option<TaskSetError>,
}

/// Canonical byte key of a concrete schedule.
fn schedule_key(schedule: &[(Cycles, usize)]) -> Vec<u8> {
    let mut key = Vec::with_capacity(schedule.len() * 9);
    for (at, task) in schedule {
        key.extend_from_slice(&at.as_u64().to_le_bytes());
        key.push(*task as u8);
    }
    key
}

impl Dfs<'_> {
    /// Whether exploration should stop (found a counterexample, blew the
    /// budget, or hit a simulator error).
    fn done(&self) -> bool {
        self.report.counterexample.is_some() || self.report.budget_exhausted || self.error.is_some()
    }

    fn assign_slot(&mut self, depth: usize) {
        if self.done() {
            return;
        }
        if depth == self.model.slots.len() {
            let resolved: Vec<(Cycles, usize)> = self
                .model
                .slots
                .iter()
                .zip(&self.choices)
                .filter_map(|(slot, choice)| {
                    choice.map(|(task, delay)| (*slot + Cycles::new(delay), task))
                })
                .collect();
            self.tie_orders(resolved);
            return;
        }
        // Choice list: silent, then every (task, delay) pair; visit order
        // permuted per node so order-dependence bugs cannot hide.
        let mut options: Vec<Choice> = vec![None];
        for task in 0..self.model.n_aperiodic() {
            for &delay in &self.model.delays {
                options.push(Some((task, delay)));
            }
        }
        for i in self.rng.permutation(options.len()) {
            if self.done() {
                return;
            }
            self.choices[depth] = options[i];
            self.assign_slot(depth + 1);
        }
        self.choices[depth] = None;
    }

    /// Enumerates every ordering of same-instant arrivals and runs each
    /// distinct concrete schedule.
    fn tie_orders(&mut self, mut resolved: Vec<(Cycles, usize)>) {
        resolved.sort_by_key(|&(at, task)| (at, task));
        self.permute_group(&mut resolved, 0);
    }

    /// Recursively permutes the tie group starting at `start` (arrivals
    /// sharing `resolved[start].0`), then the following groups.
    fn permute_group(&mut self, resolved: &mut Vec<(Cycles, usize)>, start: usize) {
        if self.done() {
            return;
        }
        if start >= resolved.len() {
            self.execute(resolved.clone());
            return;
        }
        let at = resolved[start].0;
        let end = resolved[start..]
            .iter()
            .position(|&(a, _)| a != at)
            .map_or(resolved.len(), |p| start + p);
        if end - start <= 1 {
            self.permute_group(resolved, end);
            return;
        }
        self.permute_positions(resolved, start, end);
    }

    /// All orderings of positions `pos..end` by recursive swap; groups are
    /// at most the slot count, so the factorial stays tiny. Permutations
    /// of *identical* entries (same task, same cycle) produce identical
    /// schedules, which the canonical-key dedup then collapses.
    fn permute_positions(&mut self, resolved: &mut Vec<(Cycles, usize)>, pos: usize, end: usize) {
        if pos >= end {
            // The group is fully ordered; move on to the next group.
            self.permute_group(resolved, end);
            return;
        }
        for i in pos..end {
            resolved.swap(pos, i);
            self.permute_positions(resolved, pos + 1, end);
            resolved.swap(pos, i);
            if self.done() {
                return;
            }
        }
    }

    fn execute(&mut self, schedule: Vec<(Cycles, usize)>) {
        self.report.leaves_visited += 1;
        if !self.seen.insert(schedule_key(&schedule)) {
            self.report.paths_deduped += 1;
            return;
        }
        if self.report.paths_run >= self.config.path_budget {
            self.report.budget_exhausted = true;
            return;
        }
        self.report.paths_run += 1;
        match run_path(self.model, self.mutation, &schedule) {
            Ok(outcome) => {
                if !outcome.is_clean() {
                    let reason = outcome.reason().unwrap_or_else(|| "unknown".into());
                    let original_len = schedule.len();
                    let minimized = minimize(self.model, self.mutation, schedule);
                    let reason = run_path(self.model, self.mutation, &minimized)
                        .ok()
                        .and_then(|o| o.reason())
                        .unwrap_or(reason);
                    self.report.counterexample = Some(Counterexample {
                        model: self.model.name,
                        mutation: self.mutation,
                        arrivals: minimized,
                        reason,
                        original_len,
                    });
                }
            }
            Err(e) => self.error = Some(e),
        }
    }
}

/// Greedy 1-minimality: repeatedly try dropping each arrival, then
/// snapping each arrival's instant back to an earlier nominal slot (undoing
/// its delivery delay), keeping any change under which the path still
/// fails. The result still fails and no single remaining arrival can be
/// dropped.
fn minimize(
    model: &ExploreModel,
    mutation: Option<Mutation>,
    mut schedule: Vec<(Cycles, usize)>,
) -> Vec<(Cycles, usize)> {
    let fails = |candidate: &[(Cycles, usize)]| {
        run_path(model, mutation, candidate)
            .map(|o| !o.is_clean())
            .unwrap_or(false)
    };
    'shrink: loop {
        for i in 0..schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            if fails(&candidate) {
                schedule = candidate;
                continue 'shrink;
            }
        }
        for i in 0..schedule.len() {
            let at = schedule[i].0;
            for &slot in model.slots.iter().filter(|&&s| s < at) {
                let mut candidate = schedule.clone();
                candidate[i].0 = slot;
                candidate.sort_by_key(|&(a, t)| (a, t));
                if fails(&candidate) {
                    schedule = candidate;
                    continue 'shrink;
                }
            }
        }
        return schedule;
    }
}

/// Explores every distinct concrete schedule of `model` under `mutation`
/// (or the pristine scheduler when `None`), stopping at the first failing
/// path or when the budget is exhausted.
///
/// # Errors
///
/// Propagates simulator [`TaskSetError`]s — a harness failure, distinct
/// from a counterexample.
pub fn explore(
    model: &ExploreModel,
    mutation: Option<Mutation>,
    config: &ExploreConfig,
) -> Result<ExploreReport, TaskSetError> {
    let mut dfs = Dfs {
        model,
        mutation,
        config: *config,
        choices: vec![None; model.slots.len()],
        seen: BTreeSet::new(),
        report: ExploreReport {
            leaves_visited: 0,
            paths_run: 0,
            paths_deduped: 0,
            budget_exhausted: false,
            counterexample: None,
        },
        rng: Lcg(config.visit_seed.wrapping_mul(2654435761).wrapping_add(1)),
        error: None,
    };
    dfs.assign_slot(0);
    match dfs.error {
        Some(e) => Err(e),
        None => Ok(dfs.report),
    }
}

/// Re-runs one concrete schedule (a counterexample replay) and returns the
/// outcome.
///
/// # Errors
///
/// Propagates simulator [`TaskSetError`]s.
pub fn replay(
    model: &ExploreModel,
    mutation: Option<Mutation>,
    arrivals: &[(Cycles, usize)],
) -> Result<PathOutcome, TaskSetError> {
    let mut sorted = arrivals.to_vec();
    sorted.sort_by_key(|&(at, task)| (at, task));
    run_path(model, mutation, &sorted)
}

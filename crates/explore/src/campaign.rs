//! The mutation campaign: which checking layer kills which seeded bug.
//!
//! Each catalog mutant is thrown at three independent layers:
//!
//! - **explorer** — bounded exhaustive exploration of a small model
//!   ([`explore`]); a kill is a minimized counterexample path on which a
//!   monitor fires or the cross-stack oracle diverges;
//! - **monitor** — a single *sampled* run (a fixed dense arrival schedule,
//!   no exploration) replayed through the invariant monitors; a kill is a
//!   monitor violation. This measures what production-style runtime
//!   monitoring alone would catch;
//! - **suite** — in-process replays of the assertions the repo's existing
//!   test suite makes (the promotion-off-by-one smoke, the survivability
//!   guarantee checks, the degradation counters, the progress-ledger sum,
//!   the completion-count contract). A mutant with no corresponding
//!   existing assertion is honestly recorded as *not* killed by this
//!   layer — that asymmetry is the campaign's finding, not a bug.
//!
//! The campaign fails loudly (in the binary and in CI) if any mutant
//! survives all three layers, or if the pristine scheduler fails any
//! exhaustive exploration.

use mpdp_core::ids::{ProcId, TaskId};
use mpdp_core::policy::{DegradationPolicy, MpdpPolicy, OverrunAction};
use mpdp_core::priority::Priority;
use mpdp_core::rta::build_task_table;
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};
use mpdp_core::time::Cycles;
use mpdp_core::TaskSetError;
use mpdp_faults::{CompiledFaults, FaultPlan, WcetOverrun};
use mpdp_monitor::{
    InvariantMonitor, MonitorConfig, MutantPolicy, Mutation, TaskCatalog, ViolationKind,
};
use mpdp_obs::{EventKind, EventRecorder};
use mpdp_sim::prototype::run_prototype_probed;
use mpdp_sim::theoretical::{run_theoretical_probed, run_theoretical_with, TheoreticalConfig};

use crate::explore::{explore, Counterexample, ExploreConfig, ExploreReport};
use crate::model::ExploreModel;
use crate::run::run_path;

/// Which layers killed one mutant.
#[derive(Debug, Clone)]
pub struct KillRecord {
    /// The seeded bug.
    pub mutation: Mutation,
    /// Killed by bounded exhaustive exploration (monitor or oracle on some
    /// explored path).
    pub explorer: bool,
    /// Killed by the invariant monitors on the fixed sampled run.
    pub monitor: bool,
    /// Killed by a replayed existing-suite assertion.
    pub suite: bool,
    /// One-line evidence for the strongest kill (or why it survived).
    pub detail: String,
    /// The explorer's minimized counterexample, when it killed.
    pub counterexample: Option<Counterexample>,
}

impl KillRecord {
    /// Whether at least one layer killed the mutant.
    pub fn killed(&self) -> bool {
        self.explorer || self.monitor || self.suite
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Pristine exhaustive explorations, one per model — all must be
    /// clean and closed (not budget-exhausted) for the campaign to count.
    pub pristine: Vec<(&'static str, ExploreReport)>,
    /// One record per catalog mutant, in catalog order.
    pub records: Vec<KillRecord>,
}

impl CampaignOutcome {
    /// Every pristine exploration clean and closed, every mutant killed.
    pub fn passed(&self) -> bool {
        self.pristine
            .iter()
            .all(|(_, r)| r.is_clean() && !r.budget_exhausted)
            && self.records.iter().all(KillRecord::killed)
    }

    /// Mutants no layer killed.
    pub fn survivors(&self) -> Vec<Mutation> {
        self.records
            .iter()
            .filter(|r| !r.killed())
            .map(|r| r.mutation)
            .collect()
    }
}

/// The model whose nondeterminism space gives `mutation` the best chance
/// to express itself: migration needs two processors, everything else
/// needs queueing contention.
pub fn model_for(mutation: Mutation) -> ExploreModel {
    match mutation {
        Mutation::LostPromotionOnMigration => ExploreModel::two_proc(),
        _ => ExploreModel::contended(),
    }
}

/// The fixed dense arrival schedule of the monitor layer's sampled run:
/// six arrivals spread over the first three quarters of the horizon,
/// alternating aperiodic tasks.
fn sampled_schedule(model: &ExploreModel) -> Vec<(Cycles, usize)> {
    let n_ap = model.n_aperiodic();
    let step = model.horizon.as_u64() / 8;
    (0..6)
        .map(|i| (Cycles::new(2 + step * i), (i as usize) % n_ap))
        .collect()
}

/// Runs the full campaign.
///
/// # Errors
///
/// Propagates simulator [`TaskSetError`]s — harness failures, never kills.
pub fn run_campaign(config: &ExploreConfig) -> Result<CampaignOutcome, TaskSetError> {
    let mut pristine = Vec::new();
    for model in [ExploreModel::two_proc(), ExploreModel::contended()] {
        let report = explore(&model, None, config)?;
        pristine.push((model.name, report));
    }

    let mut records = Vec::new();
    for &mutation in Mutation::catalog() {
        let model = model_for(mutation);
        let explorer_report = explore(&model, Some(mutation), config)?;
        let counterexample = explorer_report.counterexample.clone();
        let explorer = counterexample.is_some();

        let sampled = run_path(&model, Some(mutation), &sampled_schedule(&model))?;
        let monitor = sampled.monitor_flagged();

        let (suite, suite_detail) = suite_layer(mutation)?;

        let detail = if let Some(cex) = &counterexample {
            format!("explorer: {}", cex.reason)
        } else if monitor {
            format!(
                "monitor (sampled run): {}",
                sampled.reason().unwrap_or_default()
            )
        } else {
            suite_detail.clone()
        };
        records.push(KillRecord {
            mutation,
            explorer,
            monitor,
            suite,
            detail,
            counterexample,
        });
    }
    Ok(CampaignOutcome { pristine, records })
}

/// The 1-processor fixture of `tests/monitor.rs`: promotions fire under an
/// aperiodic flood, so promotion-timing assertions are non-vacuous.
fn smoke_table() -> TaskTable {
    let t0 = PeriodicTask::new(TaskId::new(0), "t0", Cycles::new(300), Cycles::new(10_000))
        .with_priorities(Priority::new(1), Priority::new(4));
    let t1 = PeriodicTask::new(TaskId::new(1), "t1", Cycles::new(400), Cycles::new(4_000))
        .with_priorities(Priority::new(0), Priority::new(3));
    let ap = AperiodicTask::new(TaskId::new(7), "ap", Cycles::new(500));
    build_task_table(vec![t0, t1], vec![ap], 1).expect("smoke fixture is schedulable")
}

/// Replays the assertion the existing suite makes against this mutant, or
/// reports that no existing assertion covers it.
fn suite_layer(mutation: Mutation) -> Result<(bool, String), TaskSetError> {
    match mutation {
        Mutation::PromotionEarly | Mutation::PromotionLate => {
            // tests/monitor.rs seeds the promotion skew and expects the
            // zero-tolerance monitor to flag it within one hyperperiod
            // (the existing smoke only seeds the early direction; the late
            // direction rides the same assertion shape).
            let pristine = smoke_table();
            let mut mutated = pristine.clone();
            mutation.seed_table(&mut mutated).expect("non-vacuous");
            let horizon = Cycles::new(20_000);
            let arrivals: Vec<(Cycles, usize)> = (0..horizon.as_u64() / 600)
                .map(|i| (Cycles::new(600 * i), 0usize))
                .collect();
            let config = TheoreticalConfig::new(horizon)
                .with_tick(Cycles::new(1_000))
                .with_event_driven();
            let (_, recorder) = run_theoretical_probed(
                MpdpPolicy::new(mutated),
                &arrivals,
                config,
                &CompiledFaults::none(),
                EventRecorder::new(1),
            )?;
            let mut monitor = InvariantMonitor::new(
                TaskCatalog::new(&pristine),
                MonitorConfig::fault_free(Cycles::ZERO),
            );
            monitor.replay(&recorder);
            let report = monitor.finish(horizon);
            let wanted: &[ViolationKind] = if mutation == Mutation::PromotionEarly {
                &[ViolationKind::EarlyPromotion]
            } else {
                &[
                    ViolationKind::LatePromotion,
                    ViolationKind::MissingPromotion,
                ]
            };
            let hit = report.violations.iter().find(|v| wanted.contains(&v.kind));
            match (mutation, hit) {
                (_, Some(v)) => Ok((true, format!("suite smoke: {} at {}", v.kind, v.at))),
                (Mutation::PromotionEarly, None) => Ok((
                    false,
                    "suite smoke unexpectedly missed the early skew".into(),
                )),
                (_, None) => Ok((
                    false,
                    "no existing suite assertion covers late promotion".into(),
                )),
            }
        }
        Mutation::BandOrderInversion
        | Mutation::FifoViolation
        | Mutation::LostPromotionOnMigration => Ok((
            false,
            format!("no existing suite assertion covers {mutation}"),
        )),
        Mutation::BudgetEnforcementSkip => {
            // The degradation tests assert overruns are detected under an
            // always-overrunning fault plan with budget enforcement armed.
            let deg = DegradationPolicy::default().with_overrun(OverrunAction::Kill);
            let faults = FaultPlan::default()
                .with_wcet(WcetOverrun::new(1.0, 1.5))
                .compile(7, 1);
            let config = TheoreticalConfig::new(Cycles::new(40_000))
                .with_tick(Cycles::new(1_000))
                .with_overhead(0.0);
            let healthy = run_theoretical_with(
                MpdpPolicy::new(smoke_table()).with_degradation(deg),
                &[],
                config,
                &faults,
            )?;
            let mutant = MutantPolicy::new(
                MpdpPolicy::new(smoke_table()).with_degradation(deg),
                Mutation::BudgetEnforcementSkip,
            );
            let fired = mutant.activation_counter();
            let skipped = run_theoretical_with(mutant, &[], config, &faults)?;
            let killed =
                healthy.survival.overruns > 0 && skipped.survival.overruns == 0 && fired.get() > 0;
            Ok((
                killed,
                format!(
                    "suite degradation counters: healthy {} overruns vs mutant {}",
                    healthy.survival.overruns, skipped.survival.overruns
                ),
            ))
        }
        Mutation::StaleTableAfterFailover => {
            // The survivability suite asserts the online re-admission
            // downgrades guarantees the degraded platform cannot honor.
            let mk = || {
                let t0 = PeriodicTask::new(
                    TaskId::new(0),
                    "t0",
                    Cycles::new(6_000),
                    Cycles::new(10_000),
                )
                .with_priorities(Priority::new(0), Priority::new(10))
                .with_processor(ProcId::new(0));
                let t1 = PeriodicTask::new(
                    TaskId::new(1),
                    "t1",
                    Cycles::new(6_000),
                    Cycles::new(10_000),
                )
                .with_priorities(Priority::new(1), Priority::new(11))
                .with_processor(ProcId::new(1));
                build_task_table(vec![t0, t1], vec![], 2).expect("schedulable on two processors")
            };
            let mut honest = MpdpPolicy::new(mk());
            let honest_report = honest.fail_processor(ProcId::new(1), Cycles::new(500));
            let mut stale = MpdpPolicy::new(mk()).with_stale_failover();
            let stale_report = stale.fail_processor(ProcId::new(1), Cycles::new(500));
            let killed = honest_report.guaranteed < honest_report.total
                && stale_report.guaranteed == stale_report.total;
            Ok((
                killed,
                format!(
                    "suite failover guarantees: honest {}/{} vs stale {}/{}",
                    honest_report.guaranteed,
                    honest_report.total,
                    stale_report.guaranteed,
                    stale_report.total
                ),
            ))
        }
        Mutation::IsrReleaseDrop => {
            // The fault-free trace contract: every injected arrival
            // completes exactly once.
            let model = ExploreModel::contended();
            let arrivals: Vec<(Cycles, usize)> =
                (0..4).map(|i| (Cycles::new(30 * i), 0usize)).collect();
            let completions = |drop: bool| -> Result<usize, TaskSetError> {
                let mut config = model.prototype_config();
                if drop {
                    config = config.with_isr_drop_every(2);
                }
                let (_, rec) = run_prototype_probed(
                    MpdpPolicy::new(model.table().clone()),
                    &arrivals,
                    config,
                    &CompiledFaults::none(),
                    EventRecorder::new(model.n_procs()),
                )?;
                Ok(rec
                    .events()
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::JobComplete { task, .. } if task == 7))
                    .count())
            };
            let healthy = completions(false)?;
            let dropped = completions(true)?;
            Ok((
                healthy == arrivals.len() && dropped < healthy,
                format!(
                    "suite completion count: healthy {healthy}/{} vs mutant {dropped}",
                    arrivals.len()
                ),
            ))
        }
        Mutation::WorkAccountingTruncation => {
            // tests/progress_accounting.rs asserts the `on_progress` deltas
            // sum exactly to each job's integer demand; under a fractional
            // WCET-overrun factor the truncating ledger falls short.
            let model = ExploreModel::contended();
            let arrivals: Vec<(Cycles, usize)> =
                (0..3).map(|i| (Cycles::new(40 * i), 0usize)).collect();
            let faults = FaultPlan::default()
                .with_wcet(WcetOverrun::new(1.0, 1.5))
                .compile(11, model.n_procs());
            let ledger_total = |truncate: bool| -> Result<u64, TaskSetError> {
                let mut config = model.prototype_config();
                if truncate {
                    config = config.with_truncated_progress();
                }
                let policy = MutantPolicy::observer(MpdpPolicy::new(model.table().clone()));
                let ledger = policy.progress_ledger();
                run_prototype_probed(
                    policy,
                    &arrivals,
                    config,
                    &faults,
                    EventRecorder::new(model.n_procs()),
                )?;
                let total = ledger.borrow().values().sum();
                Ok(total)
            };
            let exact = ledger_total(false)?;
            let truncated = ledger_total(true)?;
            Ok((
                exact > 0 && truncated < exact,
                format!("suite progress ledger: exact {exact} cycles vs truncating {truncated}"),
            ))
        }
    }
}

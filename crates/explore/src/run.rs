//! Running one concrete arrival schedule through both stacks and every
//! checking layer.
//!
//! A *path* is a fully-resolved arrival schedule (the explorer's decision
//! vector after delay resolution and tie ordering). Running it means:
//!
//! 1. arm the mutation (if any) at its injection site — table seeding,
//!    policy wrapper, or simulator/kernel configuration;
//! 2. run the event-driven theoretical stack and the full prototype stack
//!    over the *same* schedule, each under an [`EventRecorder`];
//! 3. replay both probe streams through [`InvariantMonitor`]s whose
//!    expectations come from the **pristine** catalog (the mutation must
//!    not be allowed to rewrite the spec it is checked against);
//! 4. cross-check the two streams with [`diff_streams`].
//!
//! The path fails if any monitor reports a violation or the oracle finds a
//! divergence — which is exactly the explorer's counterexample condition
//! and the campaign's kill condition.

use mpdp_core::error::TaskSetError;
use mpdp_core::policy::{MpdpPolicy, Scheduler};
use mpdp_core::time::Cycles;
use mpdp_faults::CompiledFaults;
use mpdp_monitor::{
    diff_streams, InvariantMonitor, MonitorReport, MutantPolicy, Mutation, MutationSite,
    OracleReport, TaskCatalog,
};
use mpdp_obs::EventRecorder;
use mpdp_sim::prototype::{run_prototype_probed, PrototypeConfig};
use mpdp_sim::theoretical::run_theoretical_probed;

use crate::model::ExploreModel;

/// Everything the three checking layers said about one path.
#[derive(Debug, Clone)]
pub struct PathOutcome {
    /// Zero-tolerance monitor over the theoretical stream.
    pub theoretical: MonitorReport,
    /// Tick-tolerance monitor over the prototype stream.
    pub prototype: MonitorReport,
    /// Cross-stack differential verdict.
    pub oracle: OracleReport,
}

impl PathOutcome {
    /// Whether every layer was satisfied.
    pub fn is_clean(&self) -> bool {
        self.theoretical.is_clean() && self.prototype.is_clean() && self.oracle.is_agreed()
    }

    /// Whether a monitor (either stream) flagged a violation.
    pub fn monitor_flagged(&self) -> bool {
        !self.theoretical.is_clean() || !self.prototype.is_clean()
    }

    /// The first failure, as a one-line diagnosis; `None` when clean.
    pub fn reason(&self) -> Option<String> {
        if let Some(v) = self.theoretical.violations.first() {
            return Some(format!(
                "theoretical monitor: {} at {}: {}",
                v.kind, v.at, v.detail
            ));
        }
        if let Some(v) = self.prototype.violations.first() {
            return Some(format!(
                "prototype monitor: {} at {}: {}",
                v.kind, v.at, v.detail
            ));
        }
        self.oracle.divergence.as_ref().map(|d| {
            format!(
                "oracle: {} task {} occurrence {}: {}",
                d.kind.name(),
                d.task,
                d.occurrence,
                d.detail
            )
        })
    }
}

/// Runs one concrete arrival schedule under `mutation` (or pristine when
/// `None`) through both stacks and all checking layers.
///
/// # Errors
///
/// Propagates simulator [`TaskSetError`]s (unsorted schedules, invalid
/// parameters). Exploration treats these as harness bugs, not kills.
pub fn run_path(
    model: &ExploreModel,
    mutation: Option<Mutation>,
    arrivals: &[(Cycles, usize)],
) -> Result<PathOutcome, TaskSetError> {
    let catalog = TaskCatalog::new(model.table());
    let mut table = model.table().clone();
    if let Some(m) = mutation {
        if m.site() == MutationSite::Table {
            m.seed_table(&mut table)
                .expect("table mutation must not be vacuous on an explore model");
        }
    }
    let mut proto_config = model.prototype_config();
    match mutation {
        Some(Mutation::IsrReleaseDrop) => {
            proto_config = proto_config.with_isr_drop_every(2);
        }
        Some(Mutation::WorkAccountingTruncation) => {
            proto_config = proto_config.with_truncated_progress();
        }
        _ => {}
    }
    match mutation {
        Some(m) if m.wrappable() => run_stacks(model, arrivals, proto_config, &catalog, || {
            MutantPolicy::new(MpdpPolicy::new(table.clone()), m)
        }),
        Some(Mutation::StaleTableAfterFailover) => {
            run_stacks(model, arrivals, proto_config, &catalog, || {
                MpdpPolicy::new(table.clone()).with_stale_failover()
            })
        }
        _ => run_stacks(model, arrivals, proto_config, &catalog, || {
            MpdpPolicy::new(table.clone())
        }),
    }
}

/// Drives both stacks with independently-built policies (`mk` is called
/// once per stack) and replays the streams through the monitors.
fn run_stacks<S: Scheduler, F: Fn() -> S>(
    model: &ExploreModel,
    arrivals: &[(Cycles, usize)],
    proto_config: PrototypeConfig,
    catalog: &TaskCatalog,
    mk: F,
) -> Result<PathOutcome, TaskSetError> {
    let faults = CompiledFaults::none();
    let (_, rec_t) = run_theoretical_probed(
        mk(),
        arrivals,
        model.theoretical_config(),
        &faults,
        EventRecorder::new(model.n_procs()),
    )?;
    let (_, rec_p) = run_prototype_probed(
        mk(),
        arrivals,
        proto_config,
        &faults,
        EventRecorder::new(model.n_procs()),
    )?;

    let mut mon_t = InvariantMonitor::new(catalog.clone(), model.monitor_theoretical());
    mon_t.replay(&rec_t);
    let theoretical = mon_t.finish(model.horizon);

    let mut mon_p = InvariantMonitor::new(catalog.clone(), model.monitor_prototype());
    mon_p.replay(&rec_p);
    let prototype = mon_p.finish(model.horizon);

    let oracle = diff_streams(rec_t.events(), rec_p.events());
    Ok(PathOutcome {
        theoretical,
        prototype,
        oracle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ExploreModel;

    #[test]
    fn pristine_quiet_path_is_clean() {
        let model = ExploreModel::two_proc();
        // No aperiodic arrivals at all: pure periodic schedule.
        let outcome = run_path(&model, None, &[]).expect("path runs");
        assert!(outcome.is_clean(), "quiet path: {:?}", outcome.reason());
        assert!(outcome.oracle.matched > 0, "oracle matched periodic jobs");
    }

    #[test]
    fn pristine_contended_path_is_clean_and_promotes() {
        let model = ExploreModel::contended();
        let arrivals = vec![(Cycles::new(0), 0), (Cycles::new(14), 1)];
        let outcome = run_path(&model, None, &arrivals).expect("path runs");
        assert!(outcome.is_clean(), "contended path: {:?}", outcome.reason());
        assert!(
            outcome.theoretical.promotions_checked > 0,
            "the contended model exercises promotions"
        );
    }
}

//! The small, fully-enumerable task-set models the explorer checks.
//!
//! Exhaustive exploration only closes when the choice space is finite and
//! small: a model here is 2–3 periodic tasks and 1–2 aperiodic tasks over
//! a horizon of a few hundred cycles, with kernel costs scaled to (near)
//! zero so the prototype's behaviour at this scale is the scheduling
//! algorithm itself, not cost-model noise. Nondeterminism is confined to
//! three explicit dimensions the explorer enumerates:
//!
//! 1. **which arrival slots fire** (each slot: no arrival, or one of the
//!    model's aperiodic tasks),
//! 2. **ISR delivery delay** per firing slot (the peripheral latches the
//!    event, the processor observes it a few cycles later),
//! 3. **tie order** when two resolved arrivals land on the same cycle.
//!
//! Promotion offsets are deliberately *tightened* after the offline
//! analysis ([`TaskTable::set_promotion`] keeps them inside the deadline
//! window, so the guarantee bookkeeping is unchanged) — at these tiny
//! utilizations the RTA-derived offsets sit so close to the deadline that
//! every job would finish long before promoting, and the promotion /
//! band-order machinery would go unexercised.

use mpdp_core::ids::{ProcId, TaskId};
use mpdp_core::priority::Priority;
use mpdp_core::rta::build_task_table;
use mpdp_core::task::{AperiodicTask, PeriodicTask, TaskTable};
use mpdp_core::time::Cycles;
use mpdp_kernel::costs::KernelCosts;
use mpdp_monitor::MonitorConfig;
use mpdp_sim::prototype::PrototypeConfig;
use mpdp_sim::theoretical::TheoreticalConfig;

/// A bounded model: the task set plus the finite nondeterminism space.
#[derive(Debug, Clone)]
pub struct ExploreModel {
    /// Stable model name (used in replay specs and reports).
    pub name: &'static str,
    table: TaskTable,
    /// Exploration horizon. Chosen to cover one hyperperiod of releases
    /// while excluding the boundary release itself, so both stacks agree
    /// on the job population by construction.
    pub horizon: Cycles,
    /// Scheduler tick for both stacks; divides every period.
    pub tick: Cycles,
    /// Candidate aperiodic arrival instants.
    pub slots: Vec<Cycles>,
    /// Candidate ISR delivery delays, applied per firing slot.
    pub delays: Vec<u64>,
}

impl ExploreModel {
    /// Two periodic tasks partitioned over two processors plus one
    /// aperiodic task — the acceptance model: its exhaustive pristine run
    /// must be violation- and divergence-free.
    ///
    /// The time base is deliberately coarser than `contended`'s: with two
    /// processors the prototype sends IPIs, and an IPI burst has an
    /// irreducible bus cost (words × DDR service) that no kernel-cost
    /// setting removes. At tick 1000 those few-dozen-cycle bursts are
    /// noise; at tick 20 they would saturate the machine.
    pub fn two_proc() -> Self {
        let t0 = PeriodicTask::new(TaskId::new(0), "t0", Cycles::new(400), Cycles::new(3_000))
            .with_priorities(Priority::new(1), Priority::new(4))
            .with_processor(ProcId::new(0));
        let t1 = PeriodicTask::new(TaskId::new(1), "t1", Cycles::new(500), Cycles::new(4_000))
            .with_priorities(Priority::new(0), Priority::new(3))
            .with_processor(ProcId::new(1));
        let ap = AperiodicTask::new(TaskId::new(7), "ap", Cycles::new(1_500));
        let mut table = build_task_table(vec![t0, t1], vec![ap], 2).expect("model is schedulable");
        table.set_promotion(0, Cycles::new(200));
        table.set_promotion(1, Cycles::new(500));
        ExploreModel {
            name: "two-proc",
            table,
            horizon: Cycles::new(11_500),
            tick: Cycles::new(1_000),
            // 4400 + delay 100 collides with 4500 + delay 0, so same-cycle
            // tie order is a live dimension on this model too.
            slots: vec![Cycles::new(0), Cycles::new(4_400), Cycles::new(4_500)],
            delays: vec![0, 100],
        }
    }

    /// One processor, two periodic and two aperiodic tasks — the contended
    /// model: aperiodic jobs actually queue, periodic jobs actually wait
    /// past their promotion instants, so FIFO order, band order, and
    /// promotion timing are all load-bearing on some explored path.
    ///
    /// t1's promotion offset (10) lands *mid-run* on the undisturbed
    /// schedule: t1 executes [8, 18) and is upper-band from 10, so two
    /// aperiodic arrivals inside [10, 18) — slots 12 and 14 — queue
    /// without ever starting. That is the only way a FIFO choice between
    /// two never-run aperiodic jobs exists on one processor, which is
    /// exactly what the `fifo-violation` mutant needs to be observable
    /// (the monitor's I3 checks *first-start* order).
    pub fn contended() -> Self {
        let t0 = PeriodicTask::new(TaskId::new(0), "t0", Cycles::new(8), Cycles::new(60))
            .with_priorities(Priority::new(1), Priority::new(4));
        let t1 = PeriodicTask::new(TaskId::new(1), "t1", Cycles::new(10), Cycles::new(80))
            .with_priorities(Priority::new(0), Priority::new(3));
        let ap0 = AperiodicTask::new(TaskId::new(7), "ap0", Cycles::new(25));
        let ap1 = AperiodicTask::new(TaskId::new(8), "ap1", Cycles::new(15));
        let mut table =
            build_task_table(vec![t0, t1], vec![ap0, ap1], 1).expect("model is schedulable");
        table.set_promotion(0, Cycles::new(12));
        table.set_promotion(1, Cycles::new(10));
        ExploreModel {
            name: "contended",
            table,
            horizon: Cycles::new(230),
            tick: Cycles::new(20),
            // 12 + delay 2 collides with 14 + delay 0: same-cycle ties with
            // distinct tasks, so tie order is a live dimension.
            slots: vec![Cycles::new(0), Cycles::new(12), Cycles::new(14)],
            delays: vec![0, 2],
        }
    }

    /// The pristine task table (catalog source; never mutated in place).
    pub fn table(&self) -> &TaskTable {
        &self.table
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.table.n_procs()
    }

    /// Number of aperiodic tasks (arrival-slot choices).
    pub fn n_aperiodic(&self) -> usize {
        self.table.aperiodic().len()
    }

    /// Choices per slot: no arrival, or (task × delay).
    pub fn choices_per_slot(&self) -> usize {
        1 + self.n_aperiodic() * self.delays.len()
    }

    /// Upper bound on decision-vector leaves (before tie permutations and
    /// dedup): `choices_per_slot ^ slots`.
    pub fn leaf_bound(&self) -> u64 {
        (self.choices_per_slot() as u64).pow(self.slots.len() as u32)
    }

    /// Theoretical-stack configuration: event-driven (exact release,
    /// promotion, and arrival stamps — a one-cycle skew is visible) with
    /// zero folded overhead.
    pub fn theoretical_config(&self) -> TheoreticalConfig {
        TheoreticalConfig::new(self.horizon)
            .with_tick(self.tick)
            .with_overhead(0.0)
            .with_event_driven()
    }

    /// Prototype-stack configuration: same tick, kernel costs scaled to
    /// zero so a few-hundred-cycle horizon is not swamped by cost-model
    /// bursts that would dwarf every execution in the model.
    pub fn prototype_config(&self) -> PrototypeConfig {
        let costs = KernelCosts {
            sched_base: 0,
            sched_per_task: 0,
            isr_entry: 0,
            isr_exit: 0,
            ipi_send: 0,
            intc_words: 0,
            context_scale: 0.0,
        };
        let mut config = PrototypeConfig::new(self.horizon)
            .with_tick(self.tick)
            .with_kernel_costs(costs);
        config.ack_latency = Cycles::ZERO;
        config.kernel_bus_rate = 0.0;
        config.isr_bus_rate = 0.0;
        config
    }

    /// Monitor configuration for the theoretical stream: zero tolerance —
    /// the event-driven stack is exact, so even a one-cycle promotion skew
    /// is a violation.
    pub fn monitor_theoretical(&self) -> MonitorConfig {
        MonitorConfig::fault_free(Cycles::ZERO)
    }

    /// Monitor configuration for the prototype stream: the prototype acts
    /// at tick granularity, so promotions land up to one tick late and
    /// queue decisions skew accordingly — two ticks of tolerance plus one
    /// tick of early slack absorb exactly that, and nothing more.
    pub fn monitor_prototype(&self) -> MonitorConfig {
        MonitorConfig::fault_free(self.tick + self.tick).with_early_slack(self.tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_monitor::TaskCatalog;

    #[test]
    fn models_are_small_and_guaranteed() {
        for model in [ExploreModel::two_proc(), ExploreModel::contended()] {
            let catalog = TaskCatalog::new(model.table());
            assert!(
                model.leaf_bound() <= 4096,
                "{} stays enumerable",
                model.name
            );
            // The cycle scale is arbitrary; what bounds the state space is
            // the number of scheduler-relevant instants.
            assert!(
                model.horizon.as_u64() / model.tick.as_u64() <= 24,
                "{} horizon is a couple dozen ticks",
                model.name
            );
            for i in 0..catalog.n_periodic() {
                assert!(
                    catalog.periodic(i as u32).expect("periodic").guaranteed(),
                    "{} task {i} keeps upper-band protection",
                    model.name
                );
            }
            // Every period is a tick multiple, so the prototype's timer
            // releases land exactly on the theoretical release instants.
            for t in model.table().periodic() {
                assert!(t.period().as_u64() % model.tick.as_u64() == 0);
            }
            // Slots resolve within the horizon even under the worst delay.
            let worst = model.delays.iter().copied().max().unwrap_or(0);
            for s in &model.slots {
                assert!(s.as_u64() + worst < model.horizon.as_u64() / 2);
            }
        }
    }
}

//! # mpdp-explore — bounded exhaustive interleaving explorer + mutation campaign
//!
//! Sweeps and benches sample the schedule space; this crate *closes* small
//! corners of it. An [`ExploreModel`] is a 2–3-task system whose
//! nondeterminism — which aperiodic arrivals fire, their ISR delivery
//! delays, and same-cycle tie order — spans a finite, fully-enumerable
//! space. [`explore`] walks every distinct resolved schedule once
//! (canonical-key dedup, path budget, seeded visit order), runs each
//! through **both** simulator stacks, replays the probe streams through
//! the invariant monitors, and cross-checks the stacks with the
//! differential oracle. A failure is shrunk to a 1-minimal, replayable
//! [`Counterexample`].
//!
//! The same machinery powers the *mutation campaign* ([`run_campaign`]):
//! every seeded scheduler bug in [`Mutation::catalog`][mpdp_monitor::Mutation::catalog]
//! is thrown at three independent layers — explorer, monitor-on-sampled-run,
//! and replayed existing-suite assertions — producing the kill-rate matrix
//! the `exp_mutation_campaign` binary exports and CI gates on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod explore;
pub mod model;
pub mod run;

pub use campaign::{model_for, run_campaign, CampaignOutcome, KillRecord};
pub use explore::{explore, replay, Counterexample, ExploreConfig, ExploreReport};
pub use model::ExploreModel;
pub use run::{run_path, PathOutcome};

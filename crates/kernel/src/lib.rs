//! # mpdp-kernel — the dual-priority real-time microkernel
//!
//! The "thin real time operating system layer" of the paper (§4.2): the
//! scheduling cycle, the aperiodic-release ISR path, and the context-switch
//! mechanics (register file + stack through the shared-memory context
//! vector), all with an explicit [cost model](costs) so the prototype
//! simulator can charge every kernel action in CPU cycles and bus traffic.
//!
//! The kernel is generic over the [`mpdp_core::policy::Scheduler`] policy:
//! MPDP and the ablation baselines run on identical kernel mechanics, so
//! measured differences come from the policy alone.
//!
//! ```
//! use mpdp_kernel::{Microkernel, KernelCosts};
//! use mpdp_core::policy::MpdpPolicy;
//! use mpdp_core::rta::build_task_table;
//! use mpdp_core::task::PeriodicTask;
//! use mpdp_core::ids::{ProcId, TaskId};
//! use mpdp_core::priority::Priority;
//! use mpdp_core::time::Cycles;
//!
//! # fn main() -> Result<(), mpdp_core::TaskSetError> {
//! let t = PeriodicTask::new(TaskId::new(0), "diag", Cycles::new(10), Cycles::new(100))
//!     .with_priorities(Priority::new(0), Priority::new(1));
//! let table = build_task_table(vec![t], vec![], 1)?;
//! let mut kernel = Microkernel::new(MpdpPolicy::new(table), KernelCosts::default());
//! let pass = kernel.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
//! assert_eq!(pass.released.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod microkernel;

pub use costs::{KernelCost, KernelCosts};
pub use microkernel::{KernelStats, Microkernel, SchedulingPass};

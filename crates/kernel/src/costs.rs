//! The microkernel's cost model.
//!
//! Every kernel operation is charged in two currencies: **CPU cycles** spent
//! on the executing processor, and **bus words** moved over the shared OPB
//! (context traffic, controller register accesses). The prototype simulator
//! turns bus words into time through the contention model, so kernel
//! activity slows *other* processors too — the effect the paper measures.
//!
//! Default magnitudes are chosen for a lean microkernel on a 50 MHz
//! single-issue core (a few hundred instructions per scheduling pass, a few
//! dozen per queue operation) and are configurable for sensitivity studies
//! (`ablate_switch_cost`).

use mpdp_hw::mem::REGFILE_WORDS;

/// Cost of one kernel operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCost {
    /// Cycles executed on the local processor (no bus involvement).
    pub cpu: u32,
    /// 32-bit words transferred over the shared bus.
    pub bus_words: u32,
}

impl KernelCost {
    /// Component-wise sum.
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost {
            cpu: self.cpu + other.cpu,
            bus_words: self.bus_words + other.bus_words,
        }
    }
}

/// Tunable per-operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCosts {
    /// Fixed cost of entering the scheduling routine (ISR prologue, timer
    /// acknowledge, scheduler lock).
    pub sched_base: u32,
    /// Added cost per task moved between queues during a scheduling pass
    /// (release, promotion, or assignment change).
    pub sched_per_task: u32,
    /// ISR entry (vector dispatch, controller acknowledge).
    pub isr_entry: u32,
    /// ISR exit (end-of-interrupt, state restore).
    pub isr_exit: u32,
    /// Cost of sending one inter-processor interrupt (controller register
    /// write under mutual exclusion).
    pub ipi_send: u32,
    /// Interrupt-controller register words touched per scheduling pass
    /// (these cross the bus).
    pub intc_words: u32,
    /// Multiplier on context sizes, for `ablate_switch_cost` sweeps.
    pub context_scale: f64,
}

impl Default for KernelCosts {
    fn default() -> Self {
        KernelCosts {
            sched_base: 800,
            sched_per_task: 60,
            isr_entry: 150,
            isr_exit: 100,
            ipi_send: 80,
            intc_words: 4,
            context_scale: 1.0,
        }
    }
}

impl KernelCosts {
    /// Default costs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scales context-switch traffic (1.0 = modeled sizes).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is negative or not finite.
    pub fn with_context_scale(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale >= 0.0,
            "context scale must be non-negative"
        );
        self.context_scale = scale;
        self
    }

    /// Words moved to *save* a task context: the register file plus the
    /// task's stack, written to the context vector in shared DDR ("the
    /// contexts are saved in shared memory ... the context switch primitive
    /// ... loads the register file into the processor and the stack into the
    /// local memory").
    pub fn save_words(&self, stack_words: u32) -> u32 {
        ((f64::from(REGFILE_WORDS + stack_words)) * self.context_scale).round() as u32
    }

    /// Words moved to *restore* a task context (same layout, opposite
    /// direction).
    pub fn restore_words(&self, stack_words: u32) -> u32 {
        self.save_words(stack_words)
    }

    /// Cost of one scheduling pass that touched `tasks_moved` queue entries
    /// and sent `ipis` inter-processor interrupts.
    pub fn scheduling_pass(&self, tasks_moved: usize, ipis: usize) -> KernelCost {
        KernelCost {
            cpu: self.sched_base
                + self.sched_per_task * tasks_moved as u32
                + self.ipi_send * ipis as u32,
            bus_words: self.intc_words + ipis as u32,
        }
    }

    /// Cost of the aperiodic-release ISR (acknowledge, enqueue, assignment
    /// check).
    pub fn aperiodic_isr(&self) -> KernelCost {
        KernelCost {
            cpu: self.isr_entry + self.isr_exit + self.sched_per_task,
            bus_words: self.intc_words,
        }
    }

    /// Cost of a full context switch on one processor: save the outgoing
    /// context (if any) and restore the incoming one (if any).
    pub fn context_switch(
        &self,
        save_stack: Option<u32>,
        restore_stack: Option<u32>,
    ) -> KernelCost {
        let words = save_stack.map_or(0, |s| self.save_words(s))
            + restore_stack.map_or(0, |s| self.restore_words(s));
        KernelCost {
            cpu: self.isr_entry + self.isr_exit,
            bus_words: words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_words_cover_regfile_and_stack() {
        let c = KernelCosts::default();
        assert_eq!(c.save_words(512), REGFILE_WORDS + 512);
        assert_eq!(c.restore_words(0), REGFILE_WORDS);
    }

    #[test]
    fn context_scale_shrinks_traffic() {
        let half = KernelCosts::default().with_context_scale(0.5);
        assert_eq!(half.save_words(512), (REGFILE_WORDS + 512) / 2);
        let zero = KernelCosts::default().with_context_scale(0.0);
        assert_eq!(zero.context_switch(Some(512), Some(512)).bus_words, 0);
    }

    #[test]
    fn scheduling_pass_cost_grows_with_work() {
        let c = KernelCosts::default();
        let idle = c.scheduling_pass(0, 0);
        let busy = c.scheduling_pass(10, 3);
        assert!(busy.cpu > idle.cpu);
        assert!(busy.bus_words > idle.bus_words);
        assert_eq!(idle.cpu, 800);
    }

    #[test]
    fn switch_with_no_save_is_cheaper() {
        let c = KernelCosts::default();
        let cold = c.context_switch(None, Some(512));
        let full = c.context_switch(Some(512), Some(512));
        assert!(cold.bus_words < full.bus_words);
        assert_eq!(full.bus_words, 2 * (REGFILE_WORDS + 512));
    }

    #[test]
    fn plus_accumulates() {
        let a = KernelCost {
            cpu: 10,
            bus_words: 2,
        };
        let b = KernelCost {
            cpu: 5,
            bus_words: 3,
        };
        assert_eq!(
            a.plus(b),
            KernelCost {
                cpu: 15,
                bus_words: 5
            }
        );
    }
}

//! The dual-priority microkernel (paper §4.2).
//!
//! The kernel glues the MPDP policy to the platform: it runs the scheduling
//! cycle when the timer interrupt arrives, releases aperiodic tasks from
//! peripheral ISRs, and performs context switches by moving register files
//! and stacks through the shared memory's context vector. It is
//! *time-agnostic*: every operation takes `now` and returns its
//! [`KernelCost`], and the simulator decides how long that cost takes under
//! the current bus contention. The kernel is generic over the
//! [`Scheduler`] policy so the ablation baselines run on identical kernel
//! mechanics.
//!
//! Scheduling cycle (on one processor, the others keep running):
//! 1. move released periodic tasks from the Waiting Periodic Queue to the
//!    Periodic Ready Queue;
//! 2. check promotions, moving due jobs to their High Priority Local Queue;
//! 3. compute the MPDP assignment;
//! 4. diff against what is running; processors whose task changed get an
//!    inter-processor interrupt to start their context change ("If a task is
//!    allocated on the same processor it was currently running on, the
//!    processor is not interrupted").

use mpdp_core::ids::{JobId, ProcId};
use mpdp_core::policy::{Job, JobClass, Scheduler, SwitchAction};
use mpdp_core::time::Cycles;
use mpdp_hw::mem::MemoryMap;
use mpdp_hw::processor::{Processor, RegisterFile, CONTEXT_WORDS};
use mpdp_obs::{EventKind, Probe};

use crate::costs::{KernelCost, KernelCosts};

/// Everything a scheduling pass decided.
#[derive(Debug, Clone)]
pub struct SchedulingPass {
    /// Jobs released into the ready queues.
    pub released: Vec<JobId>,
    /// Jobs promoted to the upper band.
    pub promoted: Vec<JobId>,
    /// Context-switch actions to carry out (the scheduling processor's own
    /// action, if any, is included).
    pub actions: Vec<SwitchAction>,
    /// CPU + bus cost of the pass on the scheduling processor.
    pub cost: KernelCost,
}

/// Kernel activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelStats {
    /// Scheduling passes executed.
    pub sched_passes: u64,
    /// Context switches applied.
    pub context_switches: u64,
    /// Switches that moved a job to a different processor than it last ran
    /// on.
    pub migrations: u64,
    /// Total context words moved through the bus.
    pub context_words: u64,
    /// Aperiodic releases served.
    pub aperiodic_releases: u64,
    /// Aperiodic arrivals shed by the policy's overload-degradation limit.
    pub aperiodic_shed: u64,
    /// Inter-processor interrupts requested.
    pub ipis: u64,
}

/// The microkernel instance: policy + processors + context-vector memory +
/// cost model.
#[derive(Debug, Clone)]
pub struct Microkernel<S> {
    policy: S,
    processors: Vec<Processor>,
    mem: MemoryMap,
    costs: KernelCosts,
    stats: KernelStats,
    /// Seeded bug (`IsrReleaseDrop`): when `Some(n)`, every `n`-th aperiodic
    /// ISR silently drops its release — the interrupt is acknowledged but no
    /// job is enqueued, exactly as if the peripheral event were lost between
    /// latch and handler.
    #[cfg(any(test, feature = "mutation"))]
    isr_drop_every: Option<u32>,
    #[cfg(any(test, feature = "mutation"))]
    isr_seq: u32,
}

impl<S: Scheduler> Microkernel<S> {
    /// Boots the kernel over a policy, sizing the context vector for every
    /// task in the policy's table.
    pub fn new(policy: S, costs: KernelCosts) -> Self {
        let n_procs = policy.n_procs();
        let n_tasks = policy.table().periodic().len() + policy.table().aperiodic().len();
        let max_stack = policy
            .table()
            .periodic()
            .iter()
            .map(|t| t.stack_words())
            .chain(policy.table().aperiodic().iter().map(|t| t.stack_words()))
            .max()
            .unwrap_or(mpdp_core::task::DEFAULT_STACK_WORDS);
        let mem = MemoryMap::with_context_slot(
            n_procs,
            n_tasks.max(1),
            mpdp_hw::mem::REGFILE_WORDS + max_stack,
        );
        Microkernel {
            processors: (0..n_procs as u32)
                .map(ProcId::new)
                .map(Processor::new)
                .collect(),
            policy,
            mem,
            costs,
            stats: KernelStats::default(),
            #[cfg(any(test, feature = "mutation"))]
            isr_drop_every: None,
            #[cfg(any(test, feature = "mutation"))]
            isr_seq: 0,
        }
    }

    /// Arms the seeded `IsrReleaseDrop` bug: every `every`-th aperiodic ISR
    /// (1-based) drops its release on the floor. Mutation-campaign only.
    #[cfg(any(test, feature = "mutation"))]
    pub fn set_isr_drop_every(&mut self, every: Option<u32>) {
        self.isr_drop_every = every;
    }

    /// The modeled cores (architectural state, retirement counters).
    pub fn processors(&self) -> &[Processor] {
        &self.processors
    }

    /// The scheduling policy.
    pub fn policy(&self) -> &S {
        &self.policy
    }

    /// Mutable access to the policy (the simulator's event paths).
    pub fn policy_mut(&mut self) -> &mut S {
        &mut self.policy
    }

    /// The platform memory (context vector lives in its shared DDR).
    pub fn mem(&self) -> &MemoryMap {
        &self.mem
    }

    /// The cost model in force.
    pub fn costs(&self) -> &KernelCosts {
        &self.costs
    }

    /// Activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Runs one scheduling cycle on `on_proc` at `now`.
    ///
    /// When `check_releases` is false, the pass skips steps 1–2 (used by the
    /// aperiodic-arrival path, which only needs re-assignment).
    pub fn scheduling_pass(
        &mut self,
        on_proc: ProcId,
        now: Cycles,
        check_releases: bool,
    ) -> SchedulingPass {
        let (released, promoted) = if check_releases {
            (self.policy.release_due(now), self.policy.promote_due(now))
        } else {
            (Vec::new(), Vec::new())
        };
        let desired = self.policy.assign();
        let actions = self.policy.diff(&desired);
        let ipis = actions.iter().filter(|a| a.proc != on_proc).count();
        self.stats.ipis += ipis as u64;
        self.stats.sched_passes += 1;
        let moved = released.len() + promoted.len() + actions.len();
        SchedulingPass {
            released,
            promoted,
            actions,
            cost: self.costs.scheduling_pass(moved, ipis),
        }
    }

    /// Releases an aperiodic job from the peripheral ISR on `on_proc`,
    /// returning the job, the follow-up assignment actions ("part of task A1
    /// is executed as soon as it arrives"), and the ISR cost.
    ///
    /// `arrival` is the instant the peripheral latched the event (the job's
    /// nominal release, from which its response time is measured); `now` is
    /// when the ISR runs.
    pub fn aperiodic_isr(
        &mut self,
        task_index: usize,
        on_proc: ProcId,
        arrival: Cycles,
        now: Cycles,
    ) -> (JobId, SchedulingPass) {
        let job = self.policy.release_aperiodic(task_index, arrival);
        self.stats.aperiodic_releases += 1;
        let mut pass = self.scheduling_pass(on_proc, now, false);
        pass.cost = pass.cost.plus(self.costs.aperiodic_isr());
        (job, pass)
    }

    /// Like [`Microkernel::aperiodic_isr`], but subject to the policy's
    /// overload-degradation limit: when the policy sheds the arrival
    /// ([`Scheduler::try_release_aperiodic`] returns `None`), the ISR
    /// acknowledges the peripheral and returns without enqueuing a job or
    /// running the re-assignment pass. The shed still pays the ISR entry
    /// cost — the interrupt fired either way.
    pub fn try_aperiodic_isr(
        &mut self,
        task_index: usize,
        on_proc: ProcId,
        arrival: Cycles,
        now: Cycles,
    ) -> (Option<JobId>, SchedulingPass) {
        #[cfg(any(test, feature = "mutation"))]
        if let Some(every) = self.isr_drop_every {
            self.isr_seq += 1;
            if self.isr_seq.is_multiple_of(every) {
                // The interrupt fired and is acknowledged (ISR entry cost
                // paid), but the release never reaches the policy.
                self.stats.aperiodic_shed += 1;
                return (
                    None,
                    SchedulingPass {
                        released: Vec::new(),
                        promoted: Vec::new(),
                        actions: Vec::new(),
                        cost: self.costs.aperiodic_isr(),
                    },
                );
            }
        }
        match self.policy.try_release_aperiodic(task_index, arrival) {
            Some(job) => {
                self.stats.aperiodic_releases += 1;
                let mut pass = self.scheduling_pass(on_proc, now, false);
                pass.cost = pass.cost.plus(self.costs.aperiodic_isr());
                (Some(job), pass)
            }
            None => {
                self.stats.aperiodic_shed += 1;
                (
                    None,
                    SchedulingPass {
                        released: Vec::new(),
                        promoted: Vec::new(),
                        actions: Vec::new(),
                        cost: self.costs.aperiodic_isr(),
                    },
                )
            }
        }
    }

    /// Cost of carrying out `action` on its processor.
    pub fn switch_cost(&self, action: &SwitchAction) -> KernelCost {
        self.costs.context_switch(
            action.save.map(|j| self.stack_words_of(j)),
            action.restore.map(|j| self.stack_words_of(j)),
        )
    }

    /// Applies a context switch: saves the outgoing job's full register file
    /// into the shared-memory context vector, loads (and verifies) the
    /// incoming one into the processor, and updates the running map.
    ///
    /// Each job's register file carries a deterministic per-job stamp, so a
    /// restore that reads back anything other than exactly what was saved —
    /// a cross-job mix-up or a memory-model bug — panics immediately.
    ///
    /// # Panics
    ///
    /// Panics if a restored job's context slot was corrupted (save/restore
    /// mismatch), or if the action references dead jobs.
    pub fn apply_switch(&mut self, action: &SwitchAction, _now: Cycles) {
        if let Some(save) = action.save {
            let slot = self.context_slot_of(save);
            let addr = self.mem.context_slot_addr(slot);
            let outgoing = self.processors[action.proc.index()].swap_context(RegisterFile::new());
            self.mem
                .shared_mut()
                .write_block(addr, &outgoing.to_words());
            self.stats.context_words += u64::from(self.stack_words_of(save));
        }
        if let Some(restore) = action.restore {
            let slot = self.context_slot_of(restore);
            let addr = self.mem.context_slot_addr(slot);
            let words = self.mem.shared().read_block(addr, CONTEXT_WORDS);
            let incoming = if words.iter().all(|&w| w == 0) {
                // First activation on a fresh slot: boot a stamped register
                // file for this job.
                let mut rf = RegisterFile::new();
                rf.stamp(restore.as_u32());
                rf
            } else {
                let rf = RegisterFile::from_words(words);
                let mut expected = RegisterFile::new();
                expected.stamp(restore.as_u32());
                // Internal invariant, deliberately a panic rather than a
                // typed error: a mismatched stamp means the shared-memory
                // context vector handed us another job's registers, and no
                // caller can meaningfully recover mid-switch. The sweep's
                // self-healing executor isolates the panic per cell, and
                // the runtime monitor reports the same class of breach as
                // an overlapping-execution/context-slot violation.
                assert_eq!(
                    rf, expected,
                    "context slot for {restore} corrupted or mixed up"
                );
                rf
            };
            self.processors[action.proc.index()].swap_context(incoming);
            self.stats.context_words += u64::from(self.stack_words_of(restore));
            if self
                .policy
                .job(restore)
                .last_proc
                .is_some_and(|p| p != action.proc)
            {
                self.stats.migrations += 1;
            }
        }
        if action.save.is_some() || action.restore.is_some() {
            self.stats.context_switches += 1;
        }
        self.policy.set_running(action.proc, action.restore);
    }

    /// [`Self::apply_switch`] with observability: emits a preemption event
    /// for the saved job and a migration event when the restored job last
    /// ran elsewhere (the kernel is the layer that knows `last_proc`, so
    /// migration detection lives here, next to the `migrations` counter).
    pub fn apply_switch_probed<P: Probe>(
        &mut self,
        action: &SwitchAction,
        now: Cycles,
        probe: &mut P,
    ) {
        if P::ENABLED {
            let here = action.proc.as_u32();
            if let Some(save) = action.save {
                probe.event(
                    now,
                    Some(here),
                    EventKind::Preemption { job: save.as_u32() },
                );
            }
            if let Some(restore) = action.restore {
                if let Some(from) = self
                    .policy
                    .job(restore)
                    .last_proc
                    .filter(|&p| p != action.proc)
                {
                    probe.event(
                        now,
                        Some(here),
                        EventKind::Migration {
                            job: restore.as_u32(),
                            from: from.as_u32(),
                            to: here,
                        },
                    );
                }
            }
        }
        self.apply_switch(action, now);
    }

    /// Completion path: retires `job` on `proc` and locally picks the next
    /// job for the now-idle processor without waiting for the next tick.
    /// Returns the finished record and the follow-up switch action, if any
    /// work is available.
    ///
    /// # Panics
    ///
    /// Panics if `job` is not running on `proc`.
    pub fn complete_job(
        &mut self,
        proc: ProcId,
        job: JobId,
        now: Cycles,
    ) -> (Job, Option<SwitchAction>) {
        assert_eq!(
            self.policy.running()[proc.index()],
            Some(job),
            "{job} is not running on {proc}"
        );
        let record = self.policy.complete(job, now);
        // Free the context slot (the job is gone; its next activation gets a
        // fresh stack) and reset the core's register file.
        let slot = self.context_slot_of_class(record.class);
        let addr = self.mem.context_slot_addr(slot);
        self.mem
            .shared_mut()
            .write_block(addr, &[0u32; CONTEXT_WORDS]);
        self.processors[proc.index()].swap_context(RegisterFile::new());
        let next = self.policy.pick_for_idle(proc);
        (
            record,
            next.map(|restore| SwitchAction {
                proc,
                save: None,
                restore: Some(restore),
            }),
        )
    }

    /// Budget-overrun abort: retires `job` on `proc` without a completion,
    /// freeing its context slot and the core's register file exactly like
    /// [`Self::complete_job`] so the task's next activation boots a fresh
    /// stack. Returns the aborted record and the follow-up switch action.
    ///
    /// # Panics
    ///
    /// Panics if `job` is not running on `proc`.
    pub fn abort_job(
        &mut self,
        proc: ProcId,
        job: JobId,
        now: Cycles,
    ) -> (Job, Option<SwitchAction>) {
        assert_eq!(
            self.policy.running()[proc.index()],
            Some(job),
            "{job} is not running on {proc}"
        );
        let record = self.policy.kill_job(job, now);
        let slot = self.context_slot_of_class(record.class);
        let addr = self.mem.context_slot_addr(slot);
        self.mem
            .shared_mut()
            .write_block(addr, &[0u32; CONTEXT_WORDS]);
        self.processors[proc.index()].swap_context(RegisterFile::new());
        let next = self.policy.pick_for_idle(proc);
        (
            record,
            next.map(|restore| SwitchAction {
                proc,
                save: None,
                restore: Some(restore),
            }),
        )
    }

    /// Processor fail-stop: delegates to the policy's failover (which
    /// aborts the lost running job and re-homes the partition) and frees
    /// the lost job's context slot — its saved context describes a stale
    /// activation, and the task's next release must boot a fresh stack.
    pub fn fail_stop(&mut self, proc: ProcId, now: Cycles) -> mpdp_core::policy::FailoverReport {
        // The policy's failover aborts the running job, retiring its
        // record — capture the context slot it was using first.
        let doomed_slot = self.policy.running()[proc.index()].map(|job| self.context_slot_of(job));
        let report = self.policy.fail_processor(proc, now);
        if let (Some(slot), Some(_)) = (doomed_slot, report.lost) {
            let addr = self.mem.context_slot_addr(slot);
            self.mem
                .shared_mut()
                .write_block(addr, &[0u32; CONTEXT_WORDS]);
        }
        report
    }

    fn stack_words_of(&self, job: JobId) -> u32 {
        match self.policy.job(job).class {
            JobClass::Periodic { task_index } => {
                self.policy.table().periodic()[task_index].stack_words()
            }
            JobClass::Aperiodic { task_index } => {
                self.policy.table().aperiodic()[task_index].stack_words()
            }
        }
    }

    fn context_slot_of(&self, job: JobId) -> usize {
        self.context_slot_of_class(self.policy.job(job).class)
    }

    fn context_slot_of_class(&self, class: JobClass) -> usize {
        match class {
            JobClass::Periodic { task_index } => task_index,
            JobClass::Aperiodic { task_index } => self.policy.table().periodic().len() + task_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdp_core::ids::TaskId;
    use mpdp_core::policy::MpdpPolicy;
    use mpdp_core::priority::Priority;
    use mpdp_core::rta::build_task_table;
    use mpdp_core::task::{AperiodicTask, PeriodicTask};

    fn kernel_2cpu() -> Microkernel<MpdpPolicy> {
        let p1 = PeriodicTask::new(TaskId::new(0), "P1", Cycles::new(40), Cycles::new(100))
            .with_priorities(Priority::new(1), Priority::new(4))
            .with_processor(ProcId::new(0));
        let p2 = PeriodicTask::new(TaskId::new(1), "P2", Cycles::new(50), Cycles::new(100))
            .with_priorities(Priority::new(0), Priority::new(3))
            .with_processor(ProcId::new(1));
        let a1 = AperiodicTask::new(TaskId::new(2), "A1", Cycles::new(60));
        let table = build_task_table(vec![p1, p2], vec![a1], 2).unwrap();
        Microkernel::new(MpdpPolicy::new(table), KernelCosts::default())
    }

    #[test]
    fn boot_pass_assigns_released_tasks() {
        let mut k = kernel_2cpu();
        let pass = k.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
        assert_eq!(pass.released.len(), 2);
        assert_eq!(pass.actions.len(), 2);
        assert!(pass.cost.cpu > 0);
        // One action targets another processor → one IPI.
        assert_eq!(k.stats().ipis, 1);
    }

    #[test]
    fn apply_switch_round_trips_context_through_shared_memory() {
        let mut k = kernel_2cpu();
        let pass = k.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
        for a in &pass.actions {
            k.apply_switch(a, Cycles::new(100));
        }
        assert_eq!(k.stats().context_switches, 2);
        // Preempt job on P0: save it, then restore it again later.
        let job = k.policy().running()[0].expect("running");
        let out = SwitchAction {
            proc: ProcId::new(0),
            save: Some(job),
            restore: None,
        };
        k.apply_switch(&out, Cycles::new(200));
        let back = SwitchAction {
            proc: ProcId::new(0),
            save: None,
            restore: Some(job),
        };
        k.apply_switch(&back, Cycles::new(300)); // must not panic: tag matches
        assert_eq!(k.policy().running()[0], Some(job));
    }

    #[test]
    fn completion_picks_next_work_locally() {
        let mut k = kernel_2cpu();
        let pass = k.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
        for a in &pass.actions {
            k.apply_switch(a, Cycles::ZERO);
        }
        // Release an aperiodic while both processors are busy.
        let (ap, _pass) = k.aperiodic_isr(0, ProcId::new(0), Cycles::new(10), Cycles::new(10));
        // P0 completes its periodic job → should pick the aperiodic.
        let job = k.policy().running()[0].expect("running");
        let (record, next) = k.complete_job(ProcId::new(0), job, Cycles::new(50));
        assert!(record.is_periodic());
        assert_eq!(next.map(|a| a.restore), Some(Some(ap)));
    }

    #[test]
    fn switch_cost_scales_with_stack_words() {
        let mut k = kernel_2cpu();
        let pass = k.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
        let action = &pass.actions[0];
        let cost = k.switch_cost(action);
        // Restore-only switch of a default-stack task.
        assert_eq!(
            cost.bus_words,
            mpdp_hw::mem::REGFILE_WORDS + mpdp_core::task::DEFAULT_STACK_WORDS
        );
    }

    #[test]
    fn aperiodic_isr_triggers_reassignment() {
        let mut k = kernel_2cpu();
        // Boot with nothing released: processors idle.
        let (_job, pass) = k.aperiodic_isr(0, ProcId::new(0), Cycles::ZERO, Cycles::ZERO);
        assert_eq!(pass.actions.len(), 1, "idle processor gets the aperiodic");
        assert_eq!(k.stats().aperiodic_releases, 1);
    }

    #[test]
    fn try_aperiodic_isr_sheds_beyond_the_policy_limit() {
        use mpdp_core::policy::DegradationPolicy;
        let p1 = PeriodicTask::new(TaskId::new(0), "P1", Cycles::new(40), Cycles::new(100))
            .with_priorities(Priority::new(1), Priority::new(4))
            .with_processor(ProcId::new(0));
        let a1 = AperiodicTask::new(TaskId::new(1), "A1", Cycles::new(60));
        let table = build_task_table(vec![p1], vec![a1], 1).unwrap();
        let policy = MpdpPolicy::new(table)
            .with_degradation(DegradationPolicy::default().with_shed_limit(1));
        let mut k = Microkernel::new(policy, KernelCosts::default());
        // Occupy the processor so arrivals queue in the ARQ.
        let pass = k.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
        for a in &pass.actions {
            k.apply_switch(a, Cycles::ZERO);
        }
        let (first, _) = k.try_aperiodic_isr(0, ProcId::new(0), Cycles::new(10), Cycles::new(10));
        assert!(first.is_some(), "first arrival admitted");
        let (second, pass) =
            k.try_aperiodic_isr(0, ProcId::new(0), Cycles::new(20), Cycles::new(20));
        assert!(second.is_none(), "second arrival shed at the limit");
        assert!(
            pass.actions.is_empty(),
            "shed arrival triggers no reassignment"
        );
        assert!(pass.cost.cpu > 0, "shed still pays the ISR entry cost");
        assert_eq!(k.stats().aperiodic_shed, 1);
        assert_eq!(k.stats().aperiodic_releases, 1);
    }

    #[test]
    fn migration_counter_tracks_cross_processor_moves() {
        let mut k = kernel_2cpu();
        let pass = k.scheduling_pass(ProcId::new(0), Cycles::ZERO, true);
        for a in &pass.actions {
            k.apply_switch(a, Cycles::ZERO);
        }
        let job = k.policy().running()[0].expect("running");
        // Save on P0, restore on P1 (forced migration).
        k.apply_switch(
            &SwitchAction {
                proc: ProcId::new(0),
                save: Some(job),
                restore: None,
            },
            Cycles::new(10),
        );
        let other = k.policy().running()[1].expect("running");
        k.apply_switch(
            &SwitchAction {
                proc: ProcId::new(1),
                save: Some(other),
                restore: Some(job),
            },
            Cycles::new(20),
        );
        assert_eq!(k.stats().migrations, 1);
    }
}

//! The recording probe: events, spans, and a cycle ledger in one value.

use mpdp_core::time::Cycles;

use crate::event::{EventKind, ObsEvent};
use crate::ledger::{Bucket, CycleLedger};
use crate::Probe;

/// What a processor was doing over a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Executing application code of a job.
    Task,
    /// A scheduling-pass kernel burst.
    Sched,
    /// An ISR body (IPI resolution, peripheral ack).
    Isr,
    /// A context save/restore burst.
    Switch,
}

impl SpanKind {
    /// Stable name used as the Chrome trace slice title for kernel spans.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Task => "task",
            SpanKind::Sched => "sched-pass",
            SpanKind::Isr => "isr",
            SpanKind::Switch => "ctx-switch",
        }
    }
}

/// A closed execution interval `[start, end)` on one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The processor the span ran on.
    pub proc: u32,
    /// What it was doing.
    pub kind: SpanKind,
    /// The job being run (task spans) or resolved (switch spans), if any.
    pub job: Option<u32>,
    /// The owning task of `job`, if known.
    pub task: Option<u32>,
    /// Start instant.
    pub start: Cycles,
    /// End instant (exclusive).
    pub end: Cycles,
}

/// A [`Probe`] that records everything: instant events, execution spans,
/// and the per-processor cycle ledger.
#[derive(Debug, Clone)]
pub struct EventRecorder {
    events: Vec<ObsEvent>,
    spans: Vec<Span>,
    ledger: CycleLedger,
}

impl EventRecorder {
    /// A fresh recorder for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        EventRecorder {
            events: Vec::new(),
            spans: Vec::new(),
            ledger: CycleLedger::new(n_procs),
        }
    }

    /// All recorded instant events, in emission order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// All recorded spans, in close order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The cycle ledger.
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// Number of processors this recorder tracks.
    pub fn n_procs(&self) -> usize {
        self.ledger.n_procs()
    }

    /// Number of events of a given name (test/report convenience).
    pub fn count_events(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.kind.name() == name).count()
    }

    /// Feeds everything this recorder captured into another probe: events
    /// in emission order, then spans in close order, then the ledger cell
    /// by cell. A probe driven this way sees the same stream it would have
    /// seen live (spans and charges arrive late, but both are only
    /// inspected at end-of-run by the consumers that care).
    pub fn replay_into<P: Probe>(&self, probe: &mut P) {
        if !P::ENABLED {
            return;
        }
        for e in &self.events {
            probe.event(e.at, e.proc, e.kind);
        }
        for s in &self.spans {
            probe.span(*s);
        }
        for proc in 0..self.ledger.n_procs() {
            for &bucket in &crate::ledger::BUCKETS {
                let cycles = self.ledger.get(proc, bucket);
                if cycles > 0 {
                    probe.charge(proc, bucket, cycles);
                }
            }
        }
    }
}

impl Probe for EventRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn event(&mut self, at: Cycles, proc: Option<u32>, kind: EventKind) {
        self.events.push(ObsEvent { at, proc, kind });
    }

    #[inline]
    fn span(&mut self, span: Span) {
        self.spans.push(span);
    }

    #[inline]
    fn charge(&mut self, proc: usize, bucket: Bucket, cycles: u64) {
        self.ledger.charge(proc, bucket, cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut r = EventRecorder::new(1);
        r.event(Cycles::new(5), Some(0), EventKind::IsrExit);
        r.event(Cycles::new(9), None, EventKind::Recovery);
        r.span(Span {
            proc: 0,
            kind: SpanKind::Task,
            job: Some(2),
            task: Some(1),
            start: Cycles::new(0),
            end: Cycles::new(5),
        });
        r.charge(0, Bucket::TaskWork, 5);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].at, Cycles::new(5));
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.ledger().get(0, Bucket::TaskWork), 5);
        assert_eq!(r.count_events("isr-exit"), 1);
        assert_eq!(r.count_events("migration"), 0);
    }
}

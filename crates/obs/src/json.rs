//! A minimal JSON well-formedness checker.
//!
//! The workspace has no serde (no crates.io access), yet CI must prove that
//! the Chrome trace exporter emits *parseable* JSON rather than merely
//! string-concatenated hope. This is a strict recursive-descent validator
//! for RFC 8259 JSON — it accepts exactly one top-level value and rejects
//! trailing garbage, unterminated strings, bad escapes, and malformed
//! numbers. It validates; it does not build a DOM.

use std::fmt;

/// A validation failure at byte `offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where validation failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `input` is exactly one well-formed JSON value.
pub fn validate_json(input: &str) -> Result<(), JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after top-level value"));
    }
    Ok(())
}

fn err(offset: usize, message: &'static str) -> JsonError {
    JsonError { offset, message }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(_) => Err(err(*pos, "expected a JSON value")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &'static [u8]) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key in object"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(err(*pos, "invalid \\u escape")),
                            }
                        }
                    }
                    _ => return Err(err(*pos, "invalid escape sequence")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "unescaped control character in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit followed by digits.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(err(start, "invalid number")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(err(*pos, "expected digits after decimal point"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(err(*pos, "expected digits in exponent"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control bytes. Shared by every hand-rolled exporter
/// in the workspace (Chrome traces here, fleet telemetry in
/// `mpdp-telemetry`).
pub fn escape_json(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_json_covers_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"hi \\u0041\\n\"",
            "[]",
            "{}",
            "[1, 2, [3, {\"a\": null}]]",
            "{\"a\":{\"b\":[true,false,\"x\"]},\"c\":0.5}",
            " \n\t{\"k\": -0.1e-2} ",
        ] {
            assert!(validate_json(doc).is_ok(), "should accept: {doc}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad\\q\"",
            "\"bad\\u12g4\"",
            "01",
            "1.",
            "1e",
            "--1",
            "true false",
            "[1] []",
            "nul",
        ] {
            assert!(validate_json(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = validate_json("[1, }").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}

//! Cycle-accounting observability for the MPDP simulators.
//!
//! The paper's evaluation attributes the FPGA prototype's 7–27% aperiodic
//! response-time penalty to context-switch traffic and bus/memory contention
//! — but a simulator that only reports end-to-end response times can
//! *measure* that gap, not *explain* it. This crate supplies the
//! explanation machinery, in three layers:
//!
//! 1. **Probes** ([`Probe`]): a typed callback interface the simulator
//!    stacks invoke at every observable event — job release, promotion
//!    firing, preemption, migration, IPI send/deliver, ISR entry/exit,
//!    scheduler-lock contention, bus-stall bursts, fail-stop and recovery.
//!    The default [`NullProbe`] is a zero-sized type whose methods are
//!    empty `#[inline]` bodies, so a simulator instantiated with it
//!    monomorphises to exactly the uninstrumented code: enabling the
//!    feature costs nothing when it is off, and a golden test in the root
//!    crate pins all Figure 3/4 exports byte-identical with the probe
//!    disabled.
//! 2. **Cycle ledger** ([`CycleLedger`]): a per-processor account that
//!    attributes *every* simulated cycle to exactly one [`Bucket`] — task
//!    work, scheduler pass, context save/restore, ISR, bus/memory stall,
//!    contention queueing, or idle. The books must balance: the
//!    conservation invariant ([`CycleLedger::check_conservation`]) demands
//!    that each processor's buckets sum to the simulated horizon, i.e. the
//!    grand total equals `horizon × processors` with **no cycle counted
//!    twice and none dropped**.
//! 3. **Exporters**: Chrome trace-event JSON ([`chrome_trace_json`]) that
//!    loads directly in [Perfetto](https://ui.perfetto.dev) or
//!    `chrome://tracing`, and flat CSV/JSON ledger metrics
//!    ([`ledger_csv`], [`ledger_json`]) for the attribution tables printed
//!    by the `exp_gap_attribution` bench binary.
//!
//! # Example
//!
//! ```
//! use mpdp_core::time::Cycles;
//! use mpdp_obs::{Bucket, EventKind, EventRecorder, Probe};
//!
//! let mut rec = EventRecorder::new(2);
//! rec.event(Cycles::new(100), Some(0), EventKind::JobRelease {
//!     job: 0, task: 3, aperiodic: false,
//! });
//! rec.charge(0, Bucket::TaskWork, 800);
//! rec.charge(0, Bucket::Idle, 200);
//! rec.charge(1, Bucket::Idle, 1000);
//! assert!(rec.ledger().check_conservation(Cycles::new(1000)).is_ok());
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod ledger;
pub mod metrics;
pub mod recorder;

pub use chrome::{chrome_trace_json, chrome_trace_json_multi};
pub use event::{EventKind, IrqKind, ObsEvent};
pub use json::{escape_json, validate_json, JsonError};
pub use ledger::{Bucket, CycleLedger, LedgerImbalance, WorkSplitter, BUCKETS};
pub use metrics::{ledger_csv, ledger_json};
pub use recorder::{EventRecorder, Span, SpanKind};

use mpdp_core::time::Cycles;

/// Instrumentation callbacks invoked by the simulator stacks.
///
/// Implementations fall into two camps: [`NullProbe`] (a ZST with empty
/// inline bodies — the default, costing nothing) and [`EventRecorder`]
/// (accumulates events, spans, and a cycle ledger). Simulators are generic
/// over `P: Probe` and guard any *preparation* work (formatting a label,
/// walking a list) behind `P::ENABLED` so that the disabled path does not
/// even compute the arguments' inputs where that would be measurable.
pub trait Probe {
    /// `true` for recording probes; lets callers skip argument preparation
    /// at compile time (`if P::ENABLED { ... }` folds to nothing for
    /// [`NullProbe`]).
    const ENABLED: bool;

    /// Records a cycle-stamped instant event. `proc` is the processor the
    /// event is attributed to, or `None` for system-wide events.
    #[inline]
    fn event(&mut self, at: Cycles, proc: Option<u32>, kind: EventKind) {
        let _ = (at, proc, kind);
    }

    /// Records a closed execution span `[start, end)` on `proc`.
    #[inline]
    fn span(&mut self, span: Span) {
        let _ = span;
    }

    /// Charges `cycles` on processor `proc` to `bucket` in the ledger.
    #[inline]
    fn charge(&mut self, proc: usize, bucket: Bucket, cycles: u64) {
        let _ = (proc, bucket, cycles);
    }
}

/// The do-nothing probe: every method is an empty `#[inline]` body on a
/// zero-sized type, so a simulator monomorphised with `NullProbe` compiles
/// to the same machine code as one with no probe calls at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ENABLED` as a runtime value, defeating the constant-assertion lint
    /// while still pinning the associated consts.
    fn enabled<P: Probe>(_: &P) -> bool {
        P::ENABLED
    }

    #[test]
    fn null_probe_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullProbe>(), 0);
        assert!(!enabled(&NullProbe));
        // All default bodies are callable no-ops.
        let mut p = NullProbe;
        p.event(Cycles::ZERO, None, EventKind::IsrExit);
        p.charge(0, Bucket::Idle, 7);
        p.span(Span {
            proc: 0,
            kind: SpanKind::Task,
            job: None,
            task: None,
            start: Cycles::ZERO,
            end: Cycles::new(1),
        });
    }

    #[test]
    fn recorder_is_enabled() {
        assert!(enabled(&EventRecorder::new(1)));
    }
}

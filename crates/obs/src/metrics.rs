//! Flat CSV/JSON export of the cycle ledger for attribution tables.

use std::fmt::Write as _;

use crate::ledger::{CycleLedger, BUCKETS};

/// Renders a ledger as CSV: one row per processor plus a `total` row, one
/// column per bucket (in [`BUCKETS`] order), a `total` column, and an
/// `overhead_pct` column (overhead buckets as a percentage of the row
/// total).
pub fn ledger_csv(ledger: &CycleLedger) -> String {
    let mut out = String::from("proc");
    for b in BUCKETS {
        let _ = write!(out, ",{}", b.name());
    }
    out.push_str(",total,overhead_pct\n");
    for proc in 0..ledger.n_procs() {
        let _ = write!(out, "{proc}");
        let mut overhead = 0u64;
        for b in BUCKETS {
            let v = ledger.get(proc, b);
            if b.is_overhead() {
                overhead += v;
            }
            let _ = write!(out, ",{v}");
        }
        let total = ledger.proc_total(proc);
        let _ = writeln!(out, ",{total},{:.3}", percent(overhead, total));
    }
    out.push_str("total");
    for b in BUCKETS {
        let _ = write!(out, ",{}", ledger.bucket_total(b));
    }
    let _ = writeln!(
        out,
        ",{},{:.3}",
        ledger.grand_total(),
        percent(ledger.overhead_total(), ledger.grand_total())
    );
    out
}

/// Renders a ledger as a JSON object with per-processor and total bucket
/// maps (cycles), plus the overhead share of each row.
pub fn ledger_json(ledger: &CycleLedger) -> String {
    let mut out = String::from("{\n  \"procs\": [");
    for proc in 0..ledger.n_procs() {
        if proc > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let mut overhead = 0u64;
        for (i, b) in BUCKETS.iter().enumerate() {
            let v = ledger.get(proc, *b);
            if b.is_overhead() {
                overhead += v;
            }
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {v}", b.name());
        }
        let total = ledger.proc_total(proc);
        let _ = write!(
            out,
            ", \"total\": {total}, \"overhead_pct\": {:.3}}}",
            percent(overhead, total)
        );
    }
    out.push_str("\n  ],\n  \"total\": {");
    for (i, b) in BUCKETS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", b.name(), ledger.bucket_total(*b));
    }
    let _ = write!(
        out,
        ", \"total\": {}, \"overhead_pct\": {:.3}}}\n}}\n",
        ledger.grand_total(),
        percent(ledger.overhead_total(), ledger.grand_total())
    );
    out
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::ledger::Bucket;

    fn ledger() -> CycleLedger {
        let mut l = CycleLedger::new(2);
        l.charge(0, Bucket::TaskWork, 700);
        l.charge(0, Bucket::Sched, 200);
        l.charge(0, Bucket::Idle, 100);
        l.charge(1, Bucket::Idle, 1000);
        l
    }

    #[test]
    fn csv_has_header_rows_and_totals() {
        let csv = ledger_csv(&ledger());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 procs + total
        assert_eq!(
            lines[0],
            "proc,task_work,sched,switch,isr,bus_stall,contention,idle,total,overhead_pct"
        );
        assert_eq!(lines[1], "0,700,200,0,0,0,0,100,1000,20.000");
        assert_eq!(lines[2], "1,0,0,0,0,0,0,1000,1000,0.000");
        assert_eq!(lines[3], "total,700,200,0,0,0,0,1100,2000,10.000");
    }

    #[test]
    fn json_is_well_formed_and_totals_match() {
        let json = ledger_json(&ledger());
        validate_json(&json).expect("ledger JSON must parse");
        assert!(json.contains("\"task_work\": 700"));
        assert!(json.contains("\"overhead_pct\": 10.000"));
    }

    #[test]
    fn empty_ledger_renders_zero_percent() {
        let csv = ledger_csv(&CycleLedger::new(1));
        assert!(csv.lines().last().unwrap().ends_with(",0,0.000"));
    }
}

//! The per-processor cycle-accounting ledger and its conservation invariant.
//!
//! Every simulated cycle on every processor is attributed to exactly one
//! [`Bucket`]. The probe sites in the simulator stacks charge the ledger in
//! contiguous wall-time steps, so by construction the books balance; the
//! invariant [`CycleLedger::check_conservation`] (each processor's buckets
//! sum to the horizon) turns any double-count or dropped interval into a
//! hard test failure rather than a silently skewed attribution table.

use std::fmt;

use mpdp_core::time::Cycles;

/// The exhaustive, mutually exclusive cycle-attribution categories.
///
/// | Bucket | Meaning |
/// |---|---|
/// | `TaskWork` | cycles in which application instructions retired |
/// | `Sched` | scheduling-pass bursts (timer tick + release/promote scan) |
/// | `Switch` | context save/restore bursts through the context vector |
/// | `Isr` | ISR bodies outside the pass itself (IPI resolution, acks) |
/// | `BusStall` | task wall-cycles lost to bus/memory contention |
/// | `Contention` | cycles spun on the scheduler/controller lock |
/// | `Idle` | no job assigned |
///
/// Kernel bursts (`Sched`/`Switch`/`Isr`) *include* their own bus traffic —
/// the burst is priced under contention and charged whole — while
/// `BusStall` captures the slowdown of *task* execution and `Contention`
/// the serialisation wait before a burst starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Bucket {
    /// Application work retired.
    TaskWork = 0,
    /// Scheduling-pass kernel bursts.
    Sched = 1,
    /// Context save/restore kernel bursts.
    Switch = 2,
    /// Other ISR bodies (IPI resolution, peripheral acks).
    Isr = 3,
    /// Task execution cycles lost to bus/memory contention.
    BusStall = 4,
    /// Scheduler/controller lock wait.
    Contention = 5,
    /// Nothing to run.
    Idle = 6,
}

/// All buckets in ledger column order.
pub const BUCKETS: [Bucket; Bucket::COUNT] = [
    Bucket::TaskWork,
    Bucket::Sched,
    Bucket::Switch,
    Bucket::Isr,
    Bucket::BusStall,
    Bucket::Contention,
    Bucket::Idle,
];

impl Bucket {
    /// Number of buckets.
    pub const COUNT: usize = 7;

    /// Stable snake_case name used as the CSV/JSON column header.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::TaskWork => "task_work",
            Bucket::Sched => "sched",
            Bucket::Switch => "switch",
            Bucket::Isr => "isr",
            Bucket::BusStall => "bus_stall",
            Bucket::Contention => "contention",
            Bucket::Idle => "idle",
        }
    }

    /// `true` for buckets that are overhead relative to an ideal machine
    /// (everything except task work and idle).
    pub fn is_overhead(self) -> bool {
        !matches!(self, Bucket::TaskWork | Bucket::Idle)
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A conservation violation: processor `proc`'s buckets sum to `actual`
/// cycles instead of the `expected` horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerImbalance {
    /// The out-of-balance processor.
    pub proc: usize,
    /// The simulated horizon the buckets must sum to.
    pub expected: u64,
    /// What they actually sum to.
    pub actual: u64,
}

impl fmt::Display for LedgerImbalance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle ledger out of balance on P{}: buckets sum to {} cycles, horizon is {} \
             (delta {:+})",
            self.proc,
            self.actual,
            self.expected,
            self.actual as i128 - self.expected as i128,
        )
    }
}

impl std::error::Error for LedgerImbalance {}

/// Per-processor cycle accounts, one `u64` cell per (processor, bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleLedger {
    cells: Vec<[u64; Bucket::COUNT]>,
}

impl CycleLedger {
    /// An empty ledger for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        CycleLedger {
            cells: vec![[0; Bucket::COUNT]; n_procs],
        }
    }

    /// Number of processors tracked.
    pub fn n_procs(&self) -> usize {
        self.cells.len()
    }

    /// Adds `cycles` to `(proc, bucket)`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    #[inline]
    pub fn charge(&mut self, proc: usize, bucket: Bucket, cycles: u64) {
        self.cells[proc][bucket as usize] += cycles;
    }

    /// Cycles charged to `(proc, bucket)`.
    pub fn get(&self, proc: usize, bucket: Bucket) -> u64 {
        self.cells[proc][bucket as usize]
    }

    /// Total cycles charged on `proc` across all buckets.
    pub fn proc_total(&self, proc: usize) -> u64 {
        self.cells[proc].iter().sum()
    }

    /// Total cycles charged to `bucket` across all processors.
    pub fn bucket_total(&self, bucket: Bucket) -> u64 {
        self.cells.iter().map(|row| row[bucket as usize]).sum()
    }

    /// Total cycles charged anywhere.
    pub fn grand_total(&self) -> u64 {
        self.cells.iter().flatten().sum()
    }

    /// Total overhead cycles (all buckets except task work and idle).
    pub fn overhead_total(&self) -> u64 {
        BUCKETS
            .iter()
            .filter(|b| b.is_overhead())
            .map(|&b| self.bucket_total(b))
            .sum()
    }

    /// The conservation invariant: every processor's buckets must sum to
    /// exactly `horizon` cycles (and hence the grand total to
    /// `horizon × n_procs`). Returns the first out-of-balance processor.
    pub fn check_conservation(&self, horizon: Cycles) -> Result<(), LedgerImbalance> {
        let expected = horizon.as_u64();
        for (proc, row) in self.cells.iter().enumerate() {
            let actual: u64 = row.iter().sum();
            if actual != expected {
                return Err(LedgerImbalance {
                    proc,
                    expected,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// Merges another ledger cell-wise (used to aggregate sweep cells).
    ///
    /// # Panics
    ///
    /// Panics if the processor counts differ.
    pub fn merge(&mut self, other: &CycleLedger) {
        assert_eq!(
            self.cells.len(),
            other.cells.len(),
            "cannot merge ledgers with different processor counts"
        );
        for (mine, theirs) in self.cells.iter_mut().zip(&other.cells) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }
}

/// Splits wall intervals into integer (work, stall) cycle pairs that are
/// **exactly** conserving.
///
/// The prototype's analytic contention model makes a running processor
/// retire `dt × speed` cycles of work over a wall interval of `dt` cycles,
/// with `speed ∈ (0, 1]` — a fractional quantity. Rounding each interval
/// independently would let ±0.5-cycle errors accumulate into a ledger
/// imbalance over millions of intervals. `WorkSplitter` instead tracks the
/// *cumulative* fractional work per processor and charges the integer
/// difference, so every split satisfies `work + stall == dt` exactly and
/// the total integer work never drifts more than one cycle from the true
/// fractional total.
#[derive(Debug, Clone, Default)]
pub struct WorkSplitter {
    cumulative_work: f64,
    charged_work: u64,
}

impl WorkSplitter {
    /// A fresh splitter with zero accumulated work.
    pub fn new() -> Self {
        WorkSplitter::default()
    }

    /// Splits a wall interval of `dt` cycles during which `executed`
    /// (fractional, `0 ≤ executed ≤ dt`) cycles of work retired into
    /// integer `(work, stall)` with `work + stall == dt`.
    pub fn split(&mut self, dt: u64, executed: f64) -> (u64, u64) {
        self.cumulative_work += executed.clamp(0.0, dt as f64);
        // The fractional residual is < 1, and executed ≤ dt, so the floor of
        // the cumulative total grows by at most dt — `work` never exceeds
        // the interval being split.
        let target = self.cumulative_work.floor() as u64;
        let work = target.saturating_sub(self.charged_work).min(dt);
        self.charged_work += work;
        (work, dt - work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_accepts_balanced_books() {
        let mut l = CycleLedger::new(2);
        l.charge(0, Bucket::TaskWork, 600);
        l.charge(0, Bucket::BusStall, 150);
        l.charge(0, Bucket::Sched, 250);
        l.charge(1, Bucket::Idle, 1000);
        assert!(l.check_conservation(Cycles::new(1000)).is_ok());
        assert_eq!(l.grand_total(), 2000);
        assert_eq!(l.bucket_total(Bucket::TaskWork), 600);
        assert_eq!(l.proc_total(1), 1000);
        assert_eq!(l.overhead_total(), 400);
    }

    #[test]
    fn conservation_reports_the_offending_processor() {
        let mut l = CycleLedger::new(3);
        l.charge(0, Bucket::Idle, 10);
        l.charge(1, Bucket::Idle, 9); // one cycle dropped
        l.charge(2, Bucket::Idle, 10);
        let err = l.check_conservation(Cycles::new(10)).unwrap_err();
        assert_eq!(err.proc, 1);
        assert_eq!(err.expected, 10);
        assert_eq!(err.actual, 9);
        assert!(err.to_string().contains("P1"));
    }

    #[test]
    fn merge_is_cellwise() {
        let mut a = CycleLedger::new(1);
        a.charge(0, Bucket::TaskWork, 5);
        let mut b = CycleLedger::new(1);
        b.charge(0, Bucket::TaskWork, 7);
        b.charge(0, Bucket::Isr, 1);
        a.merge(&b);
        assert_eq!(a.get(0, Bucket::TaskWork), 12);
        assert_eq!(a.get(0, Bucket::Isr), 1);
    }

    #[test]
    fn splitter_conserves_each_interval_exactly() {
        let mut s = WorkSplitter::new();
        let mut total_work = 0u64;
        let mut total_wall = 0u64;
        // Awkward fractional speed: every interval retires 1/3 of its wall.
        for _ in 0..10_000 {
            let (w, st) = s.split(10, 10.0 / 3.0);
            assert_eq!(w + st, 10);
            total_work += w;
            total_wall += 10;
        }
        assert_eq!(total_wall, 100_000);
        // Integer work tracks the fractional total to within one cycle.
        let true_work = total_wall as f64 / 3.0;
        assert!((total_work as f64 - true_work).abs() <= 1.0);
    }

    #[test]
    fn splitter_handles_full_speed_and_zero() {
        let mut s = WorkSplitter::new();
        assert_eq!(s.split(100, 100.0), (100, 0));
        assert_eq!(s.split(50, 0.0), (0, 50));
        assert_eq!(s.split(0, 0.0), (0, 0));
    }

    #[test]
    fn bucket_names_and_order() {
        assert_eq!(BUCKETS.len(), Bucket::COUNT);
        assert_eq!(Bucket::TaskWork.name(), "task_work");
        assert_eq!(Bucket::Idle.name(), "idle");
        assert!(Bucket::Contention.is_overhead());
        assert!(!Bucket::Idle.is_overhead());
        assert_eq!(format!("{}", Bucket::BusStall), "bus_stall");
    }
}

//! Cycle-stamped scheduler and hardware events.
//!
//! Events are deliberately *flat*: ids are raw `u32` indexes rather than the
//! core newtypes so that a recorded trace has no lifetime or dependency ties
//! back into the simulator that produced it, and so the Chrome exporter can
//! format them without conversions.

use mpdp_core::time::Cycles;

/// Which interrupt line an ISR entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqKind {
    /// The periodic system timer (drives the scheduling pass).
    Timer,
    /// A peripheral line — aperiodic arrival (CAN frame, camera, ...).
    Peripheral,
    /// An inter-processor interrupt raised by a scheduling pass.
    Ipi,
}

impl IrqKind {
    /// Short lowercase name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            IrqKind::Timer => "timer",
            IrqKind::Peripheral => "peripheral",
            IrqKind::Ipi => "ipi",
        }
    }
}

/// The payload of an instant event.
///
/// Every variant corresponds to a probe site in the simulator stacks; the
/// table in the crate docs maps them to the paper's overhead narrative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A job entered the ready state (periodic release or accepted
    /// aperiodic arrival).
    JobRelease {
        /// Job index.
        job: u32,
        /// Owning task index.
        task: u32,
        /// `true` for middle-band aperiodic jobs.
        aperiodic: bool,
    },
    /// A periodic job's promotion instant fired: it moved from the low band
    /// to its high-band priority.
    Promotion {
        /// Job index.
        job: u32,
        /// Owning task index.
        task: u32,
    },
    /// A running job was preempted (its context is being saved).
    Preemption {
        /// The displaced job.
        job: u32,
    },
    /// A job resumed on a different processor than it last ran on; its
    /// context travelled through the shared-memory context vector.
    Migration {
        /// The migrating job.
        job: u32,
        /// Processor it last ran on.
        from: u32,
        /// Processor it resumes on.
        to: u32,
    },
    /// A scheduling pass raised an inter-processor interrupt.
    IpiSend {
        /// Destination processor.
        to: u32,
    },
    /// An inter-processor interrupt was acknowledged by its destination.
    IpiDeliver,
    /// Interrupt service routine entry (the processor vectored).
    IsrEnter {
        /// Which line fired.
        irq: IrqKind,
    },
    /// Interrupt service routine exit (end-of-interrupt written).
    IsrExit,
    /// A kernel entry found the global scheduler/controller lock held and
    /// spun for `wait` cycles before acquiring it.
    LockContention {
        /// Cycles spent waiting on the lock.
        wait: Cycles,
    },
    /// A kernel burst (scheduling pass, context transfer, ISR body) paid
    /// `excess` cycles *beyond* its uncontended cost to bus/memory
    /// queueing.
    BusStall {
        /// Contention excess of the burst, in cycles.
        excess: Cycles,
    },
    /// A processor fail-stopped (fault injection).
    FailStop {
        /// The processor that died.
        proc: u32,
    },
    /// The survivors finished re-admission after a fail-stop.
    Recovery,
    /// A job completed.
    JobComplete {
        /// Job index.
        job: u32,
        /// Owning task index.
        task: u32,
        /// `true` if it met its deadline (or had none).
        met: bool,
    },
}

impl EventKind {
    /// Short stable name used in trace exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JobRelease {
                aperiodic: false, ..
            } => "release",
            EventKind::JobRelease {
                aperiodic: true, ..
            } => "aperiodic-release",
            EventKind::Promotion { .. } => "promotion",
            EventKind::Preemption { .. } => "preemption",
            EventKind::Migration { .. } => "migration",
            EventKind::IpiSend { .. } => "ipi-send",
            EventKind::IpiDeliver => "ipi-deliver",
            EventKind::IsrEnter { .. } => "isr-enter",
            EventKind::IsrExit => "isr-exit",
            EventKind::LockContention { .. } => "lock-contention",
            EventKind::BusStall { .. } => "bus-stall",
            EventKind::FailStop { .. } => "fail-stop",
            EventKind::Recovery => "recovery",
            EventKind::JobComplete { .. } => "complete",
        }
    }
}

/// One recorded instant: *when*, *where*, *what*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// Cycle stamp.
    pub at: Cycles,
    /// Processor the event is attributed to, `None` for system-wide events.
    pub proc: Option<u32>,
    /// The event payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            EventKind::JobRelease {
                job: 0,
                task: 0,
                aperiodic: false
            }
            .name(),
            "release"
        );
        assert_eq!(
            EventKind::JobRelease {
                job: 0,
                task: 0,
                aperiodic: true
            }
            .name(),
            "aperiodic-release"
        );
        assert_eq!(
            EventKind::Migration {
                job: 1,
                from: 0,
                to: 1
            }
            .name(),
            "migration"
        );
        assert_eq!(IrqKind::Ipi.name(), "ipi");
    }
}

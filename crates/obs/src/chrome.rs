//! Chrome trace-event JSON export, loadable in Perfetto or `chrome://tracing`.
//!
//! The exporter emits the [Trace Event Format]'s JSON-object flavour:
//! `"X"` complete events for execution spans, `"i"` instant events for the
//! cycle-stamped scheduler events, and `"M"` metadata records naming each
//! process (a simulator stack) and thread (a processor). Timestamps are
//! microseconds of simulated platform time (`cycles / 50` at the paper's
//! 50 MHz clock), formatted with fixed precision so the output is
//! byte-deterministic.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Quick start
//!
//! Write the string returned by [`chrome_trace_json`] to a `.json` file and
//! drag it into <https://ui.perfetto.dev> (or open `chrome://tracing` and
//! click Load). Each processor appears as a timeline row; task slices carry
//! the task/job id and scheduler events show up as instant markers.

use std::fmt::Write as _;

use mpdp_core::time::CLOCK_HZ;

use crate::event::{EventKind, ObsEvent};
use crate::json::escape_json as escape;
use crate::recorder::{EventRecorder, Span, SpanKind};

/// Microseconds of platform time per cycle, as an exact ratio at 50 MHz.
const US_PER_CYCLE: f64 = 1_000_000.0 / CLOCK_HZ as f64;

/// Renders one recorder as a complete Chrome trace JSON document.
///
/// `label` names the process track (e.g. `"prototype"`).
pub fn chrome_trace_json(rec: &EventRecorder, label: &str) -> String {
    chrome_trace_json_multi(&[(rec, label)])
}

/// Renders several recorders into one trace, each as its own process track
/// (pid 0, 1, ...) — e.g. the theoretical and prototype stacks of the same
/// cell side by side.
pub fn chrome_trace_json_multi(tracks: &[(&EventRecorder, &str)]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (pid, (rec, label)) in tracks.iter().enumerate() {
        write_metadata(&mut out, &mut first, pid, rec, label);
        for span in rec.spans() {
            write_span(&mut out, &mut first, pid, span);
        }
        for event in rec.events() {
            write_instant(&mut out, &mut first, pid, event);
        }
    }
    out.push_str("]}");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
    out.push('\n');
}

fn write_metadata(
    out: &mut String,
    first: &mut bool,
    pid: usize,
    rec: &EventRecorder,
    label: &str,
) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(label)
    );
    for proc in 0..rec.n_procs() {
        sep(out, first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{proc},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"CPU {proc}\"}}}}"
        );
    }
}

fn write_span(out: &mut String, first: &mut bool, pid: usize, span: &Span) {
    sep(out, first);
    let ts = span.start.as_u64() as f64 * US_PER_CYCLE;
    let dur = span.end.saturating_sub(span.start).as_u64() as f64 * US_PER_CYCLE;
    let (name, cat) = match (span.kind, span.task, span.job) {
        (SpanKind::Task, Some(t), Some(j)) => (format!("T{t} (J{j})"), "task"),
        (SpanKind::Task, _, Some(j)) => (format!("J{j}"), "task"),
        (SpanKind::Task, _, None) => ("task".to_string(), "task"),
        (kind, _, _) => (kind.name().to_string(), "kernel"),
    };
    let _ = write!(
        out,
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\
         \"name\":\"{}\",\"cat\":\"{cat}\"}}",
        span.proc,
        ts,
        dur,
        escape(&name)
    );
}

fn write_instant(out: &mut String, first: &mut bool, pid: usize, event: &ObsEvent) {
    sep(out, first);
    let ts = event.at.as_u64() as f64 * US_PER_CYCLE;
    // "s":"t" scopes the marker to its thread; system-wide events (no
    // processor) render process-scoped on tid 0 instead.
    let (tid, scope) = match event.proc {
        Some(p) => (p, "t"),
        None => (0, "p"),
    };
    let _ = write!(
        out,
        "{{\"ph\":\"i\",\"s\":\"{scope}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts:.3},\
         \"name\":\"{}\",\"cat\":\"sched\",\"args\":{{{}}}}}",
        event.kind.name(),
        event_args(&event.kind)
    );
}

/// Structured `args` payload for an instant event (already JSON-encoded
/// key/value pairs, without the surrounding braces).
fn event_args(kind: &EventKind) -> String {
    match *kind {
        EventKind::JobRelease {
            job,
            task,
            aperiodic,
        } => {
            format!("\"job\":{job},\"task\":{task},\"aperiodic\":{aperiodic}")
        }
        EventKind::Promotion { job, task } => format!("\"job\":{job},\"task\":{task}"),
        EventKind::Preemption { job } => format!("\"job\":{job}"),
        EventKind::Migration { job, from, to } => {
            format!("\"job\":{job},\"from\":{from},\"to\":{to}")
        }
        EventKind::IpiSend { to } => format!("\"to\":{to}"),
        EventKind::IpiDeliver | EventKind::IsrExit | EventKind::Recovery => String::new(),
        EventKind::IsrEnter { irq } => format!("\"irq\":\"{}\"", irq.name()),
        EventKind::LockContention { wait } => format!("\"wait_cycles\":{}", wait.as_u64()),
        EventKind::BusStall { excess } => format!("\"excess_cycles\":{}", excess.as_u64()),
        EventKind::FailStop { proc } => format!("\"proc\":{proc}"),
        EventKind::JobComplete { job, task, met } => {
            format!("\"job\":{job},\"task\":{task},\"met\":{met}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use crate::Probe;
    use mpdp_core::time::Cycles;

    fn sample() -> EventRecorder {
        let mut r = EventRecorder::new(2);
        r.span(Span {
            proc: 0,
            kind: SpanKind::Task,
            job: Some(4),
            task: Some(2),
            start: Cycles::new(100),
            end: Cycles::new(600),
        });
        r.span(Span {
            proc: 1,
            kind: SpanKind::Sched,
            job: None,
            task: None,
            start: Cycles::new(0),
            end: Cycles::new(50),
        });
        r.event(
            Cycles::new(100),
            Some(0),
            EventKind::JobRelease {
                job: 4,
                task: 2,
                aperiodic: true,
            },
        );
        r.event(Cycles::new(200), None, EventKind::Recovery);
        r.event(
            Cycles::new(300),
            Some(1),
            EventKind::LockContention {
                wait: Cycles::new(40),
            },
        );
        r
    }

    #[test]
    fn emits_valid_json_with_expected_records() {
        let rec = sample();
        let json = chrome_trace_json(&rec, "prototype");
        validate_json(&json).expect("exporter must emit well-formed JSON");
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"name\":\"prototype\""));
        assert!(json.contains("\"name\":\"CPU 1\""));
        assert!(json.contains("\"name\":\"T2 (J4)\""));
        assert!(json.contains("\"name\":\"sched-pass\""));
        assert!(json.contains("\"name\":\"aperiodic-release\""));
        assert!(json.contains("\"wait_cycles\":40"));
        // 100 cycles at 50 MHz = 2 µs.
        assert!(json.contains("\"ts\":2.000"));
        // 500-cycle span = 10 µs.
        assert!(json.contains("\"dur\":10.000"));
        // System-wide event is process-scoped.
        assert!(json.contains("\"s\":\"p\""));
    }

    #[test]
    fn multi_track_assigns_distinct_pids() {
        let a = sample();
        let b = EventRecorder::new(1);
        let json = chrome_trace_json_multi(&[(&a, "theoretical"), (&b, "prototype")]);
        validate_json(&json).unwrap();
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"name\":\"theoretical\""));
    }

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&sample(), "x");
        let b = chrome_trace_json(&sample(), "x");
        assert_eq!(a, b);
    }
}
